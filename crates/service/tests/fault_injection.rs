//! Fault-injection suite: boot rapd, inject faults through the `obs::fail`
//! failpoints, and assert the daemon degrades exactly as designed —
//! quarantined pipelines, ring-only spool fallback, deadline-bounded
//! localization behind a circuit breaker, respawned workers, and torn-tail
//! spool recovery. Every scenario re-checks the accounting invariant
//! `processed + dropped + shed == ingested`.
//!
//! Requires `--features fail`; without it this file compiles to nothing.
#![cfg(feature = "fail")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use obs::fail::{self, Action};
use service::json::{parse, Json};
use service::ServiceConfig;

/// Failpoints are process-global, so scenarios must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    fail::reset();
    guard
}

/// One NDJSON client connection with line-by-line request/reply helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }

    fn register(&mut self, tenant: &str) {
        let reply = self.request(&format!(
            r#"{{"type":"schema","tenant":"{tenant}","attributes":[["loc",["L1","L2"]],["svc",["S1","S2"]]]}}"#
        ));
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));
    }

    /// Send one snapshot with total volume `v` spread over the 4 leaves.
    fn observe(&mut self, tenant: &str, v: f64) {
        let leaf = v / 4.0;
        let reply = self.request(&format!(
            r#"{{"type":"observe","tenant":"{tenant}","rows":[[["L1","S1"],{leaf}],[["L1","S2"],{leaf}],[["L2","S1"],{leaf}],[["L2","S2"],{leaf}]]}}"#
        ));
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "{reply:?}"
        );
    }

    fn flush(&mut self) {
        let reply = self.request(r#"{"type":"flush"}"#);
        assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));
    }

    fn stats(&mut self) -> Json {
        self.request(r#"{"type":"stats"}"#)
    }

    fn health(&mut self) -> Json {
        self.request(r#"{"type":"health"}"#)
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

/// First sample value of a metric family in a Prometheus text body.
fn metric_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
}

fn num(doc: &Json, field: &str) -> f64 {
    doc.get(field)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("no numeric {field} in {doc:?}"))
}

/// Every post-warmup frame collapses far below the forecast, and because
/// anomalous frames are excluded from the history the alarms (hence
/// pipeline failures under injection) are consecutive.
fn collapsing_value(i: usize) -> f64 {
    1000.0 * 0.5f64.powi(i as i32)
}

/// Single-shard config tuned so frame 0 is warmup and every later frame
/// alarms; the breaker is off unless a scenario turns it on.
fn touchy_config() -> ServiceConfig {
    ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_capacity: 1024,
        forecast_window: 2,
        breaker_threshold: 0,
        pipeline: pipeline::PipelineConfig {
            history_len: 8,
            warmup: 1,
            alarm_threshold: 0.01,
            leaf_threshold: 0.01,
            k: 1,
            ..pipeline::PipelineConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn assert_invariant(stats: &Json) {
    assert_eq!(
        num(stats, "frames_processed") + num(stats, "frames_dropped") + num(stats, "frames_shed"),
        num(stats, "frames_ingested"),
        "processed + dropped + shed == ingested must hold: {stats:?}"
    );
}

#[test]
fn pipeline_panic_quarantines_tenant_not_shard() {
    let _guard = serialized();
    let server = service::start(touchy_config(), service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("victim");
    client.register("healthy");

    // every alarm-triggering "victim" frame now panics its pipeline
    fail::cfg_tagged("pipeline-panic", Action::Panic, "victim");
    for i in 0..5 {
        let v = collapsing_value(i);
        client.observe("victim", v);
        client.observe("healthy", v);
    }
    client.flush();
    let health = client.health();
    assert!(num(&health, "pipeline_restarts") >= 1.0, "{health:?}");
    let stats = client.stats();
    assert_invariant(&stats);
    // the shard survived: both tenants' frames were all processed
    assert_eq!(num(&stats, "frames_processed"), 10.0, "{stats:?}");
    // the healthy tenant localized its collapse despite its neighbour
    let incidents = client.request(r#"{"type":"incidents","limit":100}"#);
    let list = incidents.get("incidents").and_then(Json::as_arr).unwrap();
    assert!(
        list.iter()
            .any(|i| i.get("tenant").and_then(Json::as_str) == Some("healthy")),
        "healthy tenant incidents must keep flowing"
    );
    assert!(
        list.iter()
            .all(|i| i.get("tenant").and_then(Json::as_str) != Some("victim")),
        "victim incidents never complete while panicking"
    );

    // lift the fault: the quarantined tenant comes back on a fresh pipeline
    fail::remove("pipeline-panic");
    for i in 0..5 {
        client.observe("victim", collapsing_value(i));
    }
    client.flush();
    let incidents = client.request(r#"{"type":"incidents","limit":100}"#);
    let list = incidents.get("incidents").and_then(Json::as_arr).unwrap();
    assert!(
        list.iter()
            .any(|i| i.get("tenant").and_then(Json::as_str) == Some("victim")),
        "recovered tenant must localize again"
    );
    assert_invariant(&client.stats());
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert!(
        metric_value(&metrics, "rapd_pipeline_restarts_total{reason=\"panic\"}") >= 1.0,
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn pipeline_panic_dumps_a_recoverable_blackbox() {
    let _guard = serialized();
    let spool_dir =
        std::env::temp_dir().join(format!("rapd-fault-blackbox-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_dir);
    let config = ServiceConfig {
        spool_dir: Some(spool_dir.clone()),
        ..touchy_config()
    };
    let server = service::start(config, service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("victim");

    fail::cfg_tagged("pipeline-panic", Action::Panic, "victim");
    for i in 0..3 {
        client.observe("victim", collapsing_value(i));
    }
    client.flush();
    fail::remove("pipeline-panic");

    // the flight recorder dumped next to the incident spool, one file per
    // panicking frame, each CRC-framed and fully recoverable
    let dumps = service::blackbox::list_dumps(&spool_dir.join("blackbox")).expect("blackbox dir");
    assert!(!dumps.is_empty(), "panics must leave blackbox files");
    for path in &dumps {
        let dump = service::read_dump(path)
            .unwrap_or_else(|e| panic!("dump {} must be recoverable: {e}", path.display()));
        assert_eq!(dump.trigger, "panic");
        assert_eq!(dump.tenant, "victim");
        let frame = dump.frame.expect("dump carries the frame token");
        assert!(
            frame.starts_with("victim-"),
            "token is tenant-scoped: {frame}"
        );
        assert!(
            dump.rings.iter().any(|r| !r.lines.is_empty()),
            "the dump preserves recent span/event lines: {}",
            path.display()
        );
    }

    // the dump counter is visible over /metrics and the debug verb
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert!(
        metric_value(&metrics, "rapd_blackbox_dumps_total{trigger=\"panic\"}")
            >= dumps.len() as f64,
        "{metrics}"
    );
    let debug = client.request(r#"{"type":"debug"}"#);
    let counted = debug
        .get("blackbox_dumps")
        .and_then(|d| d.get("panic"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(counted >= dumps.len() as f64, "{debug:?}");
    assert_invariant(&client.stats());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn spool_write_error_degrades_to_ring_only() {
    let _guard = serialized();
    let spool_dir = std::env::temp_dir().join(format!("rapd-fault-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_dir);
    let config = ServiceConfig {
        spool_dir: Some(spool_dir.clone()),
        ..touchy_config()
    };
    let server = service::start(config, service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("t");

    fail::cfg("spool-write-error", Action::Error);
    for i in 0..5 {
        client.observe("t", collapsing_value(i));
    }
    client.flush();

    // ingestion survived: incidents landed in the ring, not the spool
    let health = client.health();
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{health:?}"
    );
    assert_eq!(
        health.get("spool_degraded").and_then(Json::as_bool),
        Some(true)
    );
    let incidents = client.request(r#"{"type":"incidents","limit":100}"#);
    let ring_len = incidents
        .get("incidents")
        .and_then(Json::as_arr)
        .unwrap()
        .len();
    assert!(ring_len >= 1, "ring must still collect incidents");
    let spool_text =
        std::fs::read_to_string(spool_dir.join("incidents.jsonl")).expect("spool file exists");
    assert!(
        spool_text.is_empty(),
        "no line may reach a failing spool: {spool_text:?}"
    );
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert_eq!(metric_value(&metrics, "rapd_spool_degraded"), 1.0);
    assert!(metric_value(&metrics, "rapd_spool_write_errors_total") >= 1.0);
    assert_invariant(&client.stats());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn deadline_and_breaker_shed_and_recover() {
    let _guard = serialized();
    let spool_dir =
        std::env::temp_dir().join(format!("rapd-fault-deadline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_dir);
    let mut config = touchy_config();
    config.spool_dir = Some(spool_dir.clone());
    config.pipeline.localize_deadline = Some(Duration::from_millis(5));
    config.breaker_threshold = 2;
    config.breaker_cooldown = Duration::from_millis(200);
    let server = service::start(config, service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("t");

    // every BFS layer stalls well past the 5 ms localization budget
    fail::cfg("slow-localize", Action::Sleep(30));
    for i in 0..8 {
        client.observe("t", collapsing_value(i));
        client.flush(); // serialize so failures are consecutive
    }
    let health = client.health();
    assert!(num(&health, "deadline_exceeded") >= 2.0, "{health:?}");
    assert_eq!(num(&health, "open_breakers"), 1.0, "{health:?}");
    let stats = client.stats();
    assert!(num(&stats, "frames_shed") > 0.0, "{stats:?}");
    assert_invariant(&stats);
    // deadline-hit incidents are recorded (partial) and marked
    let incidents = client.request(r#"{"type":"incidents","limit":100}"#);
    assert!(
        incidents
            .get("incidents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .any(|i| i.get("deadline_exceeded").and_then(Json::as_bool) == Some(true)),
        "{incidents:?}"
    );

    // lift the stall and wait out the cooldown: the half-open probe closes
    // the breaker and frames flow again
    fail::remove("slow-localize");
    std::thread::sleep(Duration::from_millis(250));
    let processed_before = num(&client.stats(), "frames_processed");
    for i in 0..4 {
        client.observe("t", collapsing_value(i));
        client.flush();
    }
    let health = client.health();
    assert_eq!(num(&health, "open_breakers"), 0.0, "{health:?}");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("ok"),
        "{health:?}"
    );
    let stats = client.stats();
    assert!(
        num(&stats, "frames_processed") >= processed_before + 4.0,
        "post-recovery frames must be processed, not shed: {stats:?}"
    );
    assert_invariant(&stats);
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert!(metric_value(&metrics, "rapd_deadline_exceeded_total") >= 2.0);
    assert_eq!(metric_value(&metrics, "rapd_breaker_open_tenants"), 0.0);

    // both fault triggers left recoverable blackbox files behind
    let dumps = service::blackbox::list_dumps(&spool_dir.join("blackbox")).expect("blackbox dir");
    let mut triggers: Vec<String> = Vec::new();
    for path in &dumps {
        let dump = service::read_dump(path)
            .unwrap_or_else(|e| panic!("dump {} must be recoverable: {e}", path.display()));
        assert_eq!(dump.tenant, "t");
        assert!(dump.frame.is_some(), "dump carries the frame token");
        triggers.push(dump.trigger);
    }
    assert!(
        triggers.iter().any(|t| t == "deadline"),
        "deadline overruns must dump: {triggers:?}"
    );
    assert!(
        triggers.iter().any(|t| t == "breaker_open"),
        "the breaker opening must dump: {triggers:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn worker_death_respawns_without_losing_accounting() {
    let _guard = serialized();
    let server = service::start(touchy_config(), service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("t");
    client.observe("t", collapsing_value(0));
    client.flush();

    // the worker dies at the top of its next loop iteration — after
    // finishing the frame below, before dequeuing anything else
    fail::cfg_times("shard-worker-panic", Action::Panic, 1);
    client.observe("t", collapsing_value(1));
    client.flush(); // barrier is served by the respawned worker
    client.observe("t", collapsing_value(2));
    client.flush();

    let health = client.health();
    assert!(num(&health, "worker_restarts") >= 1.0, "{health:?}");
    let stats = client.stats();
    assert_eq!(
        num(&stats, "frames_processed"),
        3.0,
        "no frame may be lost across the respawn: {stats:?}"
    );
    assert_invariant(&stats);
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert!(metric_value(&metrics, "rapd_worker_restarts_total") >= 1.0);
    server.shutdown();
}

#[test]
fn torn_spool_recovers_on_restart() {
    let _guard = serialized();
    let spool_dir = std::env::temp_dir().join(format!("rapd-fault-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_dir);
    let config = ServiceConfig {
        spool_dir: Some(spool_dir.clone()),
        ..touchy_config()
    };

    // first life: spool a few incidents, then stop cleanly
    let server = service::start(config.clone(), service::default_factory()).expect("boot");
    let mut client = Client::connect(server.ingest_addr());
    client.register("t");
    for i in 0..4 {
        client.observe("t", collapsing_value(i));
    }
    client.flush();
    server.shutdown();
    let spool_path = spool_dir.join("incidents.jsonl");
    let intact = std::fs::read_to_string(&spool_path).expect("spool exists");
    let intact_lines = intact.lines().count();
    assert!(intact_lines >= 1, "first life must spool incidents");

    // simulate a crash mid-write: a torn, CRC-less partial record
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&spool_path)
            .unwrap();
        write!(f, "{{\"tenant\":\"t\",\"raps\":[[\"loc").unwrap();
    }

    // second life on the same spool: the torn tail is truncated, every
    // intact incident survives byte-for-byte, and appends continue
    let server = service::start(config, service::default_factory()).expect("reboot");
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert_eq!(
        metric_value(&metrics, "rapd_spool_recovered_lines"),
        intact_lines as f64
    );
    assert!(metric_value(&metrics, "rapd_spool_truncated_bytes") > 0.0);
    let repaired = std::fs::read_to_string(&spool_path).unwrap();
    assert_eq!(repaired, intact, "intact incidents survive, torn tail gone");
    let mut client = Client::connect(server.ingest_addr());
    client.register("t");
    for i in 0..4 {
        client.observe("t", collapsing_value(i));
    }
    client.flush();
    let after = std::fs::read_to_string(&spool_path).unwrap();
    assert!(
        after.lines().count() > intact_lines,
        "appends must continue on the repaired spool"
    );
    assert!(
        after.starts_with(&intact),
        "repair must not rewrite history"
    );
    let health = client.health();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}
