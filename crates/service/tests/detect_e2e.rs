//! Detect-mode end-to-end: rapd in `--detect` mode consumes a **raw,
//! unlabelled** cdnsim anomaly stream over TCP — timestamped frames, no
//! anomaly flags, no external alarm — and must
//!
//! * self-trigger a localization inside every injection window
//!   (recall ≥ 0.9 with at most one false trigger),
//! * attach severity and per-leaf detection σ-scores to each incident,
//! * count each detection in `rapd_detections_total{severity}`, and
//! * keep the frame accounting invariant intact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use cdnsim::{named_rows, AnomalyStream, AnomalyStreamConfig};
use eval::evaluate_detection;
use service::json::{parse, Json};
use service::ServiceConfig;

/// One NDJSON client connection with line-by-line request/reply helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

/// A raw `observe` line: named rows straight off the simulator, an event
/// timestamp, and **no labels or forecasts** — exactly what a telemetry
/// agent would ship.
fn observe_line(tenant: &str, ts: u64, rows: &[(Vec<String>, f64)]) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str(tenant)),
        ("ts".to_string(), Json::Num(ts as f64)),
        (
            "rows".to_string(),
            Json::Arr(
                rows.iter()
                    .map(|(names, v)| {
                        Json::Arr(vec![
                            Json::Arr(names.iter().map(|n| Json::str(n.clone())).collect()),
                            Json::Num(*v),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[test]
fn rapd_detect_mode_self_triggers_on_a_raw_stream() {
    let stream_config = AnomalyStreamConfig::default();
    let stream = AnomalyStream::new(stream_config, 7);
    let schema = stream.model().topology().schema().clone();

    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        // Roomy queue: recall is judged on every frame reaching the
        // detector, so overload drops are not part of this test.
        queue_capacity: 4096,
        detect: true,
        detect_threshold: 4.0,
        seasonal_period: 0,
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());

    // Register the simulator's full 4-attribute schema.
    let attributes = Json::Arr(
        schema
            .attr_ids()
            .map(|a| {
                let attr = schema.attribute(a);
                Json::Arr(vec![
                    Json::str(attr.name()),
                    Json::Arr(
                        attr.element_ids()
                            .map(|e| Json::str(attr.element_name(e)))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    );
    let reply = client.request(
        &Json::Obj(vec![
            ("type".to_string(), Json::str("schema")),
            ("tenant".to_string(), Json::str("edge")),
            ("attributes".to_string(), attributes),
        ])
        .render(),
    );
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("ok"),
        "{reply}"
    );

    // Replay the whole stream: one timestamped raw frame per minute.
    for step in 0..stream.steps() {
        let frame = stream.frame(step);
        let line = observe_line("edge", step as u64 * 60_000, &named_rows(&frame));
        let reply = client.request(&line);
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "step {step}: {reply}"
        );
    }
    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(
        reply.get("flushed").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    let m = server.metrics();
    let sink = server.sink();
    server.shutdown();

    // --- accounting: every frame lands in exactly one bucket ---
    use std::sync::atomic::Ordering;
    let ingested = m.frames_ingested.load(Ordering::Relaxed);
    assert_eq!(ingested, stream.steps() as u64);
    assert_eq!(
        m.total_processed() + m.total_dropped() + m.total_shed() + m.frames_quarantined.total(),
        ingested,
        "accounting must balance"
    );

    // --- recall / false triggers against the stream's ground truth ---
    // FrameDetection.step is the 0-based observation index; with a
    // monotonic timestamped stream and no drops it equals the stream step.
    let incidents = sink.recent(100);
    let triggers: Vec<usize> = incidents.iter().map(|i| i.step).collect();
    let windows: Vec<(usize, usize)> = stream
        .injections()
        .iter()
        .map(|inj| (inj.step, inj.duration))
        .collect();
    let outcome = evaluate_detection(&windows, &triggers);
    assert!(
        outcome.recall() >= 0.9,
        "recall {:.3} < 0.9 (triggers {triggers:?}, windows {windows:?})",
        outcome.recall()
    );
    assert!(
        outcome.false_triggers.len() <= 1,
        "too many false triggers: {:?}",
        outcome.false_triggers
    );

    // --- every incident carries severity and detection evidence ---
    assert!(!incidents.is_empty());
    for incident in &incidents {
        let severity = incident.severity.as_deref().expect("severity attached");
        assert!(
            ["warn", "high", "critical"].contains(&severity),
            "unknown severity {severity}"
        );
        let detection = incident.detection.as_ref().expect("detection evidence");
        assert!(
            detection.score >= 4.0,
            "trigger score {:.2} below the 4σ threshold",
            detection.score
        );
        assert!(!detection.leaf_scores.is_empty());
        assert!(incident.timings.detector_seconds >= 0.0);
    }

    // --- detection counters mirror the incidents, by severity ---
    assert_eq!(m.detections.total(), incidents.len() as u64);
    assert_eq!(m.alarms.load(Ordering::Relaxed), incidents.len() as u64);
    // The detector stage histogram ticks once per processed frame.
    assert_eq!(m.stages.detector.count(), m.total_processed());
}

#[test]
fn detect_metrics_render_severity_labels_end_to_end() {
    let stream = AnomalyStream::new(
        AnomalyStreamConfig {
            steps: 120,
            warmup: 40,
            injections: 1,
            ..AnomalyStreamConfig::default()
        },
        7,
    );
    let schema = stream.model().topology().schema().clone();
    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_capacity: 1024,
        detect: true,
        detect_threshold: 4.0,
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());
    let attributes = Json::Arr(
        schema
            .attr_ids()
            .map(|a| {
                let attr = schema.attribute(a);
                Json::Arr(vec![
                    Json::str(attr.name()),
                    Json::Arr(
                        attr.element_ids()
                            .map(|e| Json::str(attr.element_name(e)))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    );
    client.request(
        &Json::Obj(vec![
            ("type".to_string(), Json::str("schema")),
            ("tenant".to_string(), Json::str("edge")),
            ("attributes".to_string(), attributes),
        ])
        .render(),
    );
    // Untimestamped raw frames: arrival order, no reorder buffer.
    for step in 0..stream.steps() {
        let frame = stream.frame(step);
        let rows = named_rows(&frame);
        let line = Json::Obj(vec![
            ("type".to_string(), Json::str("observe")),
            ("tenant".to_string(), Json::str("edge")),
            (
                "rows".to_string(),
                Json::Arr(
                    rows.iter()
                        .map(|(names, v)| {
                            Json::Arr(vec![
                                Json::Arr(names.iter().map(|n| Json::str(n.clone())).collect()),
                                Json::Num(*v),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render();
        client.request(&line);
    }
    client.request(r#"{"type":"flush"}"#);

    // The stats verb exposes the per-severity detection counters …
    let stats = client.request(r#"{"type":"stats"}"#);
    let detections = stats.get("detections").expect("stats carry detections");
    let total: u64 = ["warn", "high", "critical"]
        .iter()
        .filter_map(|s| detections.get(s).and_then(Json::as_u64))
        .sum();
    assert!(total >= 1, "{stats}");

    // … and /metrics renders them with the fixed label set only.
    let metrics = http_get(server.metrics_addr(), "/metrics");
    for severity in ["warn", "high", "critical"] {
        assert!(
            metrics.contains(&format!("rapd_detections_total{{severity=\"{severity}\"}}")),
            "{metrics}"
        );
    }
    assert!(
        metrics.contains("rapd_stage_seconds_count{stage=\"detector\"}"),
        "{metrics}"
    );
    server.shutdown();
}
