//! Introspection end-to-end: boot rapd over TCP and assert that
//!
//! * one `FrameId` token — returned in the `observe` reply — reappears on
//!   the frame's span (`trace` verb), its incident (`incidents` verb),
//!   and, for a corrupted twin, its quarantine record (`quarantine`
//!   verb), so a single grep reconstructs the frame's whole life,
//! * the `debug` control verb returns schema-valid live internals
//!   (queue depths, per-tenant detector/breaker/reorder state, flight
//!   recorders, memo and pool counters, e2e latency, blackbox dumps),
//! * `/metrics` passes the exposition-format lint and exports
//!   `rapd_build_info` and the `rapd_e2e_seconds` latency histogram.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use service::json::{parse, Json};
use service::ServiceConfig;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

fn observe_line(rows: &[(&str, &str, f64)]) -> String {
    let rows = rows
        .iter()
        .map(|(l, s, v)| {
            Json::Arr(vec![
                Json::Arr(vec![Json::str(*l), Json::str(*s)]),
                Json::Num(*v),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str("edge")),
        ("rows".to_string(), Json::Arr(rows)),
    ])
    .render()
}

/// The `observe` reply's minted correlation token.
fn frame_token(reply: &Json) -> String {
    reply
        .get("frame")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("observe reply carries a frame token: {reply}"))
        .to_string()
}

/// Assert `doc[key]` is a finite number and return it.
fn num(doc: &Json, key: &str) -> f64 {
    let v = doc
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("`{key}` must be a number: {doc}"));
    assert!(v.is_finite(), "`{key}` must be finite: {doc}");
    v
}

#[test]
fn one_frame_token_reconstructs_the_whole_lifecycle() {
    obs::set_enabled(true);
    obs::clear_spans();

    let spool = std::env::temp_dir().join(format!("rapd_introspection_{}", std::process::id()));
    std::fs::create_dir_all(&spool).expect("create spool dir");

    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        spool_dir: Some(spool.clone()),
        forecast_window: 5,
        pipeline: pipeline::PipelineConfig {
            history_len: 32,
            warmup: 5,
            alarm_threshold: 0.2,
            leaf_threshold: 0.3,
            k: 3,
            ..pipeline::PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());

    let reply = client.request(
        r#"{"type":"schema","tenant":"edge","attributes":[["location",["L1","L2"]],["site",["S1","S2"]]]}"#,
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));

    // healthy warmup: every admitted frame is acknowledged with a token
    let steady = [
        ("L1", "S1", 100.0),
        ("L1", "S2", 100.0),
        ("L2", "S1", 100.0),
        ("L2", "S2", 100.0),
    ];
    for _ in 0..12 {
        let reply = client.request(&observe_line(&steady));
        assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(true));
        assert!(!frame_token(&reply).is_empty());
    }

    // the outage frame: remember its token, then follow it everywhere
    let outage = [
        ("L1", "S1", 5.0),
        ("L1", "S2", 5.0),
        ("L2", "S1", 100.0),
        ("L2", "S2", 100.0),
    ];
    let reply = client.request(&observe_line(&outage));
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(true));
    let token = frame_token(&reply);
    assert!(
        token.starts_with("edge-"),
        "token is tenant-scoped: {token}"
    );

    // the corrupted twin: every row references unknown attribute values,
    // so admission quarantines it under a second, distinct token
    let twin = [("XX", "YY", 5.0)];
    let reply = client.request(&observe_line(&twin));
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("quarantined").and_then(Json::as_bool), Some(true));
    let twin_token = frame_token(&reply);
    assert_ne!(twin_token, token, "each frame gets its own token");

    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));

    // --- the incident carries the outage frame's token ---
    let incidents = client.request(r#"{"type":"incidents","limit":10}"#);
    let list = incidents.get("incidents").and_then(Json::as_arr).unwrap();
    assert_eq!(list.len(), 1, "the collapse must alarm exactly once");
    assert_eq!(
        list[0].get("frame").and_then(Json::as_str),
        Some(token.as_str()),
        "incident must carry the frame token: {}",
        list[0]
    );

    // --- the span ring carries the same token on the frame's spans ---
    let reply = client.request(r#"{"type":"trace","limit":500}"#);
    let spans = reply.get("spans").and_then(Json::as_arr).unwrap();
    let stamped: Vec<&Json> = spans
        .iter()
        .filter(|s| s.get("frame").and_then(Json::as_str) == Some(token.as_str()))
        .collect();
    assert!(
        !stamped.is_empty(),
        "at least one span is stamped with {token}: {spans:?}"
    );
    let names: Vec<&str> = stamped
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert!(
        names.contains(&"rapd.frame"),
        "the shard's frame span carries the token, got {names:?}"
    );

    // --- the quarantine record carries the twin's token ---
    let reply = client.request(r#"{"type":"quarantine","limit":10}"#);
    let records = reply.get("records").and_then(Json::as_arr).unwrap();
    assert_eq!(records.len(), 1, "exactly the twin is quarantined");
    assert_eq!(
        records[0].get("frame").and_then(Json::as_str),
        Some(twin_token.as_str()),
        "quarantine record must carry the twin's token: {}",
        records[0]
    );

    // --- the debug verb returns schema-valid live internals ---
    let debug = client.request(r#"{"type":"debug"}"#);
    assert_eq!(debug.get("type").and_then(Json::as_str), Some("debug"));
    assert!(num(&debug, "uptime_seconds") >= 0.0);
    assert_eq!(
        debug.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "version mirrors the build: {debug}"
    );
    let depths = debug.get("queue_depths").and_then(Json::as_arr).unwrap();
    assert_eq!(depths.len(), 1, "one shard, one queue depth: {debug}");
    assert!(depths[0].as_u64().is_some());

    let tenants = debug.get("tenants").and_then(Json::as_arr).unwrap();
    assert_eq!(tenants.len(), 1, "one tenant registered: {debug}");
    let edge = &tenants[0];
    assert_eq!(edge.get("tenant").and_then(Json::as_str), Some("edge"));
    assert_eq!(edge.get("shard").and_then(Json::as_u64), Some(0));
    assert_eq!(edge.get("engine").and_then(Json::as_str), Some("classic"));
    assert_eq!(
        edge.get("detector_phase"),
        Some(&Json::Null),
        "classic engines have no detector: {edge}"
    );
    assert_eq!(edge.get("breaker").and_then(Json::as_str), Some("closed"));
    let reorder = edge.get("reorder").expect("reorder block");
    assert_eq!(reorder.get("buffered").and_then(Json::as_u64), Some(0));
    assert_eq!(reorder.get("lag").and_then(Json::as_u64), Some(0));
    let last = edge.get("last_frame").and_then(Json::as_str).unwrap();
    assert!(last.starts_with("edge-"), "last_frame is a token: {edge}");

    let recorders = debug
        .get("flight_recorders")
        .and_then(Json::as_arr)
        .unwrap();
    let shard_rec = recorders
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("shard-0"))
        .unwrap_or_else(|| panic!("shard-0 registered a flight recorder: {debug}"));
    assert!(
        num(shard_rec, "recorded") >= 1.0,
        "the recorder captured lines: {shard_rec}"
    );
    assert!(num(shard_rec, "lines") <= 256.0, "ring stays bounded");
    assert!(num(shard_rec, "dropped") >= 0.0);

    let memo = debug.get("memo").expect("memo block");
    let hit_rate = num(memo, "hit_rate");
    assert!((0.0..=1.0).contains(&hit_rate), "hit rate is a fraction");
    num(memo, "served");
    num(memo, "scratch");

    let pool = debug.get("pool").expect("pool block");
    for key in ["maps", "parallel_maps", "items", "steals"] {
        num(pool, key);
    }
    let fraction = num(pool, "parallel_fraction");
    assert!((0.0..=1.0).contains(&fraction));

    let e2e = debug.get("e2e").expect("e2e block");
    assert!(
        num(e2e, "count") >= 1.0,
        "the incident observed an e2e latency: {debug}"
    );
    assert!(num(e2e, "sum_seconds") >= 0.0);

    let dumps = debug.get("blackbox_dumps").expect("blackbox block");
    for trigger in ["panic", "deadline", "breaker_open"] {
        assert_eq!(
            num(dumps, trigger),
            0.0,
            "no faults injected, no dumps: {debug}"
        );
    }
    let dir = debug.get("blackbox_dir").and_then(Json::as_str).unwrap();
    assert!(
        dir.contains("blackbox"),
        "spooled daemons expose their blackbox dir: {debug}"
    );

    // --- tenant filtering: scoped and unknown ---
    let scoped = client.request(r#"{"type":"debug","tenant":"edge"}"#);
    let tenants = scoped.get("tenants").and_then(Json::as_arr).unwrap();
    assert_eq!(tenants.len(), 1);
    let none = client.request(r#"{"type":"debug","tenant":"nope"}"#);
    let tenants = none.get("tenants").and_then(Json::as_arr).unwrap();
    assert!(tenants.is_empty(), "unknown tenant filters to empty");

    // --- /metrics passes the lint and exports build info and e2e ---
    let metrics = http_get(server.metrics_addr(), "/metrics");
    service::metrics::lint::validate_exposition(&metrics)
        .unwrap_or_else(|e| panic!("exposition lint failed: {e}"));
    let build_line = metrics
        .lines()
        .find(|l| l.starts_with("rapd_build_info{"))
        .expect("rapd_build_info gauge is exported");
    assert!(
        build_line.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))),
        "build info carries the crate version: {build_line}"
    );
    assert!(
        build_line.contains("commit=\""),
        "and a commit: {build_line}"
    );
    let e2e_count = metrics
        .lines()
        .find(|l| l.starts_with("rapd_e2e_seconds_count"))
        .expect("e2e histogram is exported")
        .rsplit_once(' ')
        .unwrap()
        .1
        .parse::<u64>()
        .unwrap();
    assert!(e2e_count >= 1, "the incident observed e2e latency");
    assert!(
        metrics.contains("rapd_blackbox_dumps_total{trigger=\"panic\"} 0"),
        "dump counters are exported even at zero"
    );

    // the stats verb mirrors uptime and version for quick `rapminer`-side
    // triage without parsing the full debug document
    let stats = client.request(r#"{"type":"stats"}"#);
    assert!(num(&stats, "uptime_seconds") >= 0.0);
    assert_eq!(
        stats.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );

    server.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}
