//! Observability end-to-end: boot rapd with `--log-json` semantics
//! (`log_json: true` plus a pre-installed capture sink standing in for
//! stderr), drive an injected outage over the wire, and assert that
//!
//! * the event stream emits valid JSON log lines carrying span ids,
//! * the incident's localization trace is attached, internally consistent
//!   (deleted attributes and per-layer counts match its SearchStats), and
//!   queryable over the control socket,
//! * `/metrics` exports per-stage (`cp`, `search`, `detect`) timing
//!   histograms whose counts agree with `rapd_alarms_total`,
//! * the `trace` control verb returns the completed span ring.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

use service::json::{parse, Json};
use service::ServiceConfig;

/// A `Write` sink that appends to a shared buffer — the test's stand-in
/// for the stderr sink `log_json` installs in production.
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

fn observe_line(rows: &[(&str, &str, f64)]) -> String {
    let rows = rows
        .iter()
        .map(|(l, s, v)| {
            Json::Arr(vec![
                Json::Arr(vec![Json::str(*l), Json::str(*s)]),
                Json::Num(*v),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str("edge")),
        ("rows".to_string(), Json::Arr(rows)),
    ])
    .render()
}

fn metric_value(metrics: &str, line_prefix: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no metric line starts with {line_prefix}"))
        .rsplit_once(' ')
        .unwrap()
        .1
        .parse()
        .unwrap_or_else(|e| panic!("unparseable value for {line_prefix}: {e}"))
}

#[test]
fn rapd_emits_logs_traces_and_stage_metrics_for_an_injected_outage() {
    // stand-in stderr: install before boot; `log_json` must not replace it
    let captured = Arc::new(Mutex::new(Vec::new()));
    obs::install_sink(Box::new(Capture(Arc::clone(&captured))));
    obs::set_enabled(true);
    obs::clear_spans();

    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        log_json: true,
        forecast_window: 5,
        pipeline: pipeline::PipelineConfig {
            history_len: 32,
            warmup: 5,
            alarm_threshold: 0.2,
            leaf_threshold: 0.3,
            k: 3,
            ..pipeline::PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());

    let reply = client.request(
        r#"{"type":"schema","tenant":"edge","attributes":[["location",["L1","L2"]],["site",["S1","S2"]]]}"#,
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));

    // a protocol error must surface as a warn event in the log stream
    let reply = client.request("definitely not json");
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("error"));

    // healthy warmup, then the L1 outage
    let steady = [
        ("L1", "S1", 100.0),
        ("L1", "S2", 100.0),
        ("L2", "S1", 100.0),
        ("L2", "S2", 100.0),
    ];
    for _ in 0..12 {
        let reply = client.request(&observe_line(&steady));
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));
    }
    let outage = [
        ("L1", "S1", 5.0),
        ("L1", "S2", 5.0),
        ("L2", "S1", 100.0),
        ("L2", "S2", 100.0),
    ];
    let reply = client.request(&observe_line(&outage));
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));
    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));

    let stats = client.request(r#"{"type":"stats"}"#);
    let alarms = stats.get("alarms").and_then(Json::as_u64).unwrap();
    assert_eq!(alarms, 1, "the collapse must alarm exactly once: {stats}");

    // --- (a) the log stream is valid JSON lines with span correlation ---
    let log_text = String::from_utf8(captured.lock().unwrap().clone()).expect("utf-8 logs");
    let mut incident_lines = 0;
    let mut protocol_error_lines = 0;
    let mut lines_with_span = 0;
    for line in log_text.lines() {
        let doc = parse(line).unwrap_or_else(|e| panic!("invalid log line {line:?}: {e}"));
        assert!(
            doc.get("ts_micros").and_then(Json::as_u64).is_some(),
            "{line}"
        );
        let level = doc.get("level").and_then(Json::as_str).unwrap();
        assert!(
            ["debug", "info", "warn", "error"].contains(&level),
            "{line}"
        );
        assert!(doc.get("target").and_then(Json::as_str).is_some(), "{line}");
        let msg = doc.get("msg").and_then(Json::as_str).unwrap();
        if doc.get("span").and_then(Json::as_u64).is_some() {
            lines_with_span += 1;
            assert!(
                doc.get("trace").and_then(Json::as_u64).is_some(),
                "a span id implies a trace id: {line}"
            );
        }
        if msg == "incident" {
            incident_lines += 1;
            assert_eq!(doc.get("target").and_then(Json::as_str), Some("rapd.shard"));
            let fields = doc.get("fields").expect("incident event has fields");
            assert_eq!(fields.get("tenant").and_then(Json::as_str), Some("edge"));
            assert!(
                doc.get("span").and_then(Json::as_u64).is_some(),
                "the incident event must carry the emitting span id: {line}"
            );
        }
        if msg == "protocol_error" {
            protocol_error_lines += 1;
        }
    }
    assert_eq!(incident_lines, 1, "one incident event:\n{log_text}");
    assert!(protocol_error_lines >= 1, "warn event for the bad line");
    assert!(lines_with_span >= 1, "span-correlated lines exist");

    // --- (b) the incident carries a consistent localization trace ---
    let incidents = client.request(r#"{"type":"incidents","limit":10}"#);
    let list = incidents.get("incidents").and_then(Json::as_arr).unwrap();
    assert_eq!(list.len(), 1);
    let incident = &list[0];
    let top = incident.get("raps").and_then(Json::as_arr).unwrap()[0]
        .as_arr()
        .unwrap()[0]
        .as_str()
        .unwrap();
    assert!(top.contains("L1"), "must localize the L1 outage, got {top}");
    let trace = incident.get("trace").expect("incident carries a trace");
    assert_ne!(*trace, Json::Null, "rapminer must attach its trace");
    let stats_doc = trace.get("stats").unwrap();
    let attrs = trace.get("attrs").unwrap().as_arr().unwrap();
    let deleted: Vec<&str> = attrs
        .iter()
        .filter(|a| a.get("deleted").and_then(Json::as_bool) == Some(true))
        .map(|a| a.get("attribute").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        deleted.len() as u64,
        stats_doc
            .get("attrs_deleted")
            .and_then(Json::as_u64)
            .unwrap(),
        "deleted-attribute set must match SearchStats: {trace}"
    );
    let layers = trace.get("layers").unwrap().as_arr().unwrap();
    assert!(!layers.is_empty(), "the search visited at least one layer");
    let (mut cuboids, mut combos, mut candidates) = (0, 0, 0);
    for layer in layers {
        cuboids += layer.get("cuboids").and_then(Json::as_u64).unwrap();
        combos += layer.get("combos").and_then(Json::as_u64).unwrap();
        candidates += layer.get("candidates").and_then(Json::as_u64).unwrap();
    }
    for (total, key) in [
        (cuboids, "cuboids_visited"),
        (combos, "combos_visited"),
        (candidates, "candidates_found"),
    ] {
        assert_eq!(
            total,
            stats_doc.get(key).and_then(Json::as_u64).unwrap(),
            "per-layer counts must sum to SearchStats.{key}: {trace}"
        );
    }
    let timings = incident.get("timings").expect("incident carries timings");
    let localize = timings
        .get("localize_seconds")
        .and_then(Json::as_f64)
        .unwrap();
    let cp = timings.get("cp_seconds").and_then(Json::as_f64).unwrap();
    let search = timings
        .get("search_seconds")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        localize >= cp + search,
        "stage timings must nest: localize {localize} >= cp {cp} + search {search}"
    );

    // --- (c) /metrics exports consistent per-stage histograms ---
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert_eq!(metric_value(&metrics, "rapd_alarms_total"), alarms);
    for stage in ["cp", "search", "detect"] {
        let count = metric_value(
            &metrics,
            &format!("rapd_stage_seconds_count{{stage=\"{stage}\"}}"),
        );
        assert_eq!(
            count, alarms,
            "stage {stage} observes once per incident:\n{metrics}"
        );
        let inf = metric_value(
            &metrics,
            &format!("rapd_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}}"),
        );
        assert_eq!(inf, count, "+Inf bucket equals the count for {stage}");
    }

    // --- the trace control verb serves the completed span ring ---
    let reply = client.request(r#"{"type":"trace","limit":500}"#);
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("trace"));
    let spans = reply.get("spans").and_then(Json::as_arr).unwrap();
    assert!(!spans.is_empty(), "the span ring must not be empty");
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).unwrap())
        .collect();
    for expected in [
        "rapd.frame",
        "pipeline.observe",
        "pipeline.detect",
        "pipeline.localize",
        "rapminer.search",
    ] {
        assert!(
            names.contains(&expected),
            "span ring must contain {expected}, got {names:?}"
        );
    }
    // spans are well-formed: ids, trace ids, and elapsed times present
    for span in spans {
        assert!(span.get("id").and_then(Json::as_u64).is_some());
        assert!(span.get("trace").and_then(Json::as_u64).is_some());
        assert!(span.get("elapsed_micros").and_then(Json::as_u64).is_some());
    }
    // the localize span nests under the frame span of the same trace
    let frame_span = spans
        .iter()
        .find(|s| {
            s.get("name").and_then(Json::as_str) == Some("rapd.frame")
                && s.get("fields").and_then(|f| f.get("alarm")).is_some()
        })
        .expect("the alarming frame's span is in the ring");
    let frame_trace = frame_span.get("trace").and_then(Json::as_u64).unwrap();
    let localize_span = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("pipeline.localize"))
        .unwrap();
    assert_eq!(
        localize_span.get("trace").and_then(Json::as_u64),
        Some(frame_trace),
        "pipeline.localize must share the alarming frame's trace id"
    );

    server.shutdown();
}
