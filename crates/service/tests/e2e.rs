//! End-to-end daemon test: boot rapd on a loopback socket, register a
//! schema over the wire, stream a cdnsim-generated anomaly at it faster
//! than a deliberately slowed localizer can drain, and assert that
//!
//! * the injected root pattern shows up in the incident spool and ring,
//! * `/metrics` reports the alarm and exact frame accounting,
//! * backpressure drops frames without deadlock or lost accounting,
//! * protocol errors get error replies without killing the connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use baselines::{Localizer, RapMinerLocalizer, ScoredCombination};
use cdnsim::{CdnTopology, FailureInjector, TrafficConfig, TrafficModel};
use mdkpi::{AttrId, LeafFrame};
use service::json::{parse, Json};
use service::{ServiceConfig, StartError};

/// RAPMiner slowed enough that blasting anomalous frames outruns it.
struct SlowLocalizer(RapMinerLocalizer);

impl Localizer for SlowLocalizer {
    fn name(&self) -> &'static str {
        "slow-rapminer"
    }
    fn localize(&self, frame: &LeafFrame, k: usize) -> baselines::Result<Vec<ScoredCombination>> {
        std::thread::sleep(Duration::from_millis(3));
        self.0.localize(frame, k)
    }
}

/// One NDJSON client connection with line-by-line request/reply helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write request");
    }

    fn read_reply(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn request(&mut self, line: &str) -> Json {
        self.send_line(line);
        self.read_reply()
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

/// Project a 4-attribute cdnsim snapshot down to (location, website) wire
/// rows, summing leaves that collapse together.
fn wire_rows(frame: &LeafFrame) -> Json {
    let schema = frame.schema();
    let loc = AttrId(0);
    let web = AttrId(3);
    let mut sums: Vec<((String, String), f64)> = Vec::new();
    for i in 0..frame.num_rows() {
        let elements = frame.row_elements(i);
        let key = (
            schema.attribute(loc).element_name(elements[0]).to_string(),
            schema.attribute(web).element_name(elements[3]).to_string(),
        );
        match sums.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += frame.v(i),
            None => sums.push((key, frame.v(i))),
        }
    }
    Json::Arr(
        sums.into_iter()
            .map(|((l, w), v)| {
                Json::Arr(vec![
                    Json::Arr(vec![Json::str(l), Json::str(w)]),
                    Json::Num(v),
                ])
            })
            .collect(),
    )
}

fn observe_line(tenant: &str, rows: Json) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str(tenant)),
        ("rows".to_string(), rows),
    ])
    .render()
}

#[test]
fn rapd_localizes_a_streamed_cdn_failure_under_backpressure() {
    let seed = 20220607;
    let spool_dir = std::env::temp_dir().join(format!("rapd-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_dir);

    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 2,
        queue_capacity: 4, // tiny on purpose: overload must drop, not grow
        spool_dir: Some(spool_dir.clone()),
        ring_capacity: 64,
        forecast_window: 10,
        pipeline: pipeline::PipelineConfig {
            history_len: 60,
            warmup: 15,
            alarm_threshold: 0.08,
            leaf_threshold: 0.3,
            k: 3,
            ..pipeline::PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let server = service::start(
        config,
        Arc::new(|_| Box::new(SlowLocalizer(RapMinerLocalizer::default())) as Box<dyn Localizer>),
    )
    .unwrap_or_else(|e: StartError| panic!("daemon failed to boot: {e}"));

    // --- the traffic source: cdnsim with an L4 outage injected ---
    let topology = CdnTopology::small(seed);
    let sim_schema = topology.schema().clone();
    let truth = sim_schema
        .parse_combination("location=L4")
        .expect("L4 exists");
    let model = TrafficModel::new(topology, TrafficConfig::default(), seed);
    let injector = FailureInjector::new(0.5, 0.9);

    let mut client = Client::connect(server.ingest_addr());

    // register the 2-attribute projection of the simulator schema
    let attributes = Json::Arr(
        [AttrId(0), AttrId(3)]
            .into_iter()
            .map(|a| {
                let attr = sim_schema.attribute(a);
                Json::Arr(vec![
                    Json::str(attr.name()),
                    Json::Arr(
                        attr.element_ids()
                            .map(|e| Json::str(attr.element_name(e)))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    );
    let reply = client.request(
        &Json::Obj(vec![
            ("type".to_string(), Json::str("schema")),
            ("tenant".to_string(), Json::str("edge")),
            ("attributes".to_string(), attributes),
        ])
        .render(),
    );
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("ok"),
        "{reply}"
    );

    // a protocol error mid-session must answer, not kill the connection
    let reply = client.request("this is not json");
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("error"),
        "{reply}"
    );

    // --- phase 1: healthy warmup traffic, no alarms expected ---
    let base_minute = 2 * 24 * 60;
    let warmup_frames = 25usize;
    for step in 0..warmup_frames {
        let snapshot = model.snapshot(base_minute + step);
        let reply = client.request(&observe_line("edge", wire_rows(&snapshot)));
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "{reply}"
        );
    }
    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(
        reply.get("flushed").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    let stats = client.request(r#"{"type":"stats"}"#);
    assert_eq!(
        stats.get("alarms").and_then(Json::as_u64),
        Some(0),
        "{stats}"
    );
    assert_eq!(
        stats.get("frames_dropped").and_then(Json::as_u64),
        Some(0),
        "{stats}"
    );

    // --- phase 2: inject the L4 outage and blast frames faster than the
    // slowed localizer drains them (write all, then read all acks) ---
    let anomalous_frames = 150usize;
    for step in 0..anomalous_frames {
        let minute = base_minute + warmup_frames + step;
        let mut snapshot = model.snapshot(minute);
        injector.inject(&mut snapshot, std::slice::from_ref(&truth), minute as u64);
        client.send_line(&observe_line("edge", wire_rows(&snapshot)));
    }
    for _ in 0..anomalous_frames {
        let reply = client.read_reply();
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "{reply}"
        );
    }

    // flush barriers are never dropped: this must complete despite overload
    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(
        reply.get("flushed").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );

    // --- accounting: nothing lost, overload visibly dropped frames ---
    let stats = client.request(r#"{"type":"stats"}"#);
    let ingested = stats.get("frames_ingested").and_then(Json::as_u64).unwrap();
    let processed = stats
        .get("frames_processed")
        .and_then(Json::as_u64)
        .unwrap();
    let dropped = stats.get("frames_dropped").and_then(Json::as_u64).unwrap();
    let alarms = stats.get("alarms").and_then(Json::as_u64).unwrap();
    assert_eq!(
        ingested,
        (warmup_frames + anomalous_frames) as u64,
        "{stats}"
    );
    assert_eq!(
        processed + dropped,
        ingested,
        "accounting must balance: {stats}"
    );
    assert!(
        dropped > 0,
        "a 4-deep queue must overflow under blast: {stats}"
    );
    assert!(alarms >= 1, "the outage must alarm at least once: {stats}");
    assert_eq!(
        stats.get("protocol_errors").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );

    // --- the incident names the injected root pattern ---
    let incidents = client.request(r#"{"type":"incidents","limit":100}"#);
    let list = incidents.get("incidents").and_then(Json::as_arr).unwrap();
    assert_eq!(list.len() as u64, alarms, "ring must hold every alarm");
    let top_raps: Vec<&str> = list
        .iter()
        .map(|i| {
            assert_eq!(i.get("tenant").and_then(Json::as_str), Some("edge"));
            i.get("raps").and_then(Json::as_arr).unwrap()[0]
                .as_arr()
                .unwrap()[0]
                .as_str()
                .unwrap()
        })
        .collect();
    assert!(
        top_raps.iter().any(|r| r.contains("L4")),
        "some incident must localize to the injected L4 outage, got {top_raps:?}"
    );

    // --- the spool holds the same incidents as CRC-framed JSON lines ---
    let spool_text =
        std::fs::read_to_string(spool_dir.join("incidents.jsonl")).expect("spool file exists");
    let spool_lines: Vec<&str> = spool_text
        .lines()
        .map(|line| {
            // every line carries a `\t<crc32 hex>` integrity suffix
            let (json, crc) = line.rsplit_once('\t').expect("CRC-framed spool line");
            assert_eq!(crc.len(), 8, "8 hex digits of CRC32: {line}");
            json
        })
        .collect();
    assert_eq!(spool_lines.len() as u64, alarms, "one spool line per alarm");
    let spooled_l4 = spool_lines.iter().any(|line| {
        let doc = parse(line).expect("spool lines are valid JSON");
        doc.get("raps").and_then(Json::as_arr).unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_str()
            .unwrap()
            .contains("L4")
    });
    assert!(spooled_l4, "the L4 incident must be spooled");

    // --- /metrics agrees with the control socket ---
    let metrics = http_get(server.metrics_addr(), "/metrics");
    assert!(
        metrics.contains(&format!("rapd_frames_ingested_total {ingested}")),
        "{metrics}"
    );
    assert!(
        metrics.contains(&format!("rapd_alarms_total {alarms}")),
        "{metrics}"
    );
    assert!(
        metrics.contains("rapd_protocol_errors_total 1"),
        "{metrics}"
    );
    let dropped_from_metrics: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("rapd_frames_dropped_total{"))
        .map(|l| l.split_whitespace().last().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(
        dropped_from_metrics, dropped,
        "metrics and stats must agree"
    );
    assert!(
        metrics.contains(&format!("rapd_localization_seconds_count {alarms}")),
        "{metrics}"
    );

    // shutdown drains and joins everything — must not deadlock
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn oversized_and_malformed_lines_never_kill_the_daemon() {
    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        max_frame_bytes: 256,
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).unwrap();
    let mut client = Client::connect(server.ingest_addr());

    // an oversized line gets an error reply and the rest is discarded
    let huge = format!(
        r#"{{"type":"observe","tenant":"t","rows":[{}0]}}"#,
        "1,".repeat(400)
    );
    let reply = client.request(&huge);
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("error"),
        "{reply}"
    );
    assert!(
        reply
            .get("reason")
            .and_then(Json::as_str)
            .unwrap()
            .contains("cap"),
        "{reply}"
    );

    // the same connection still serves normal requests afterwards
    let reply = client.request(r#"{"type":"stats"}"#);
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("stats"),
        "{reply}"
    );
    assert_eq!(
        reply.get("protocol_errors").and_then(Json::as_u64),
        Some(1),
        "{reply}"
    );

    // observe without a schema is a typed error, not a crash
    let reply = client.request(r#"{"type":"observe","tenant":"ghost","rows":[]}"#);
    assert!(
        reply
            .get("reason")
            .and_then(Json::as_str)
            .unwrap()
            .contains("ghost"),
        "{reply}"
    );

    server.shutdown();
}
