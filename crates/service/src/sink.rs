//! The incident sink: a crash-safe JSONL spool on disk plus an in-memory
//! ring.
//!
//! Shard workers hand every [`pipeline::IncidentReport`] here. The sink
//! appends one line per incident to `incidents.jsonl` in the spool
//! directory (when configured) and keeps the most recent incidents in a
//! bounded ring so the control socket can answer `incidents` queries
//! without touching disk.
//!
//! # Spool framing and recovery
//!
//! Each spool line is `{json}\t{crc32:08x}` — the IEEE CRC-32 of the JSON
//! bytes, hex-encoded after a tab. On startup [`IncidentSink::open`] scans
//! any existing spool: lines whose checksum verifies are kept, pre-CRC
//! lines that still parse as JSON are kept read-only (legacy), and
//! torn/corrupt bytes — typically the tail left by a crash mid-write — are
//! truncated, with every outcome counted in [`crate::Metrics`]. The repair
//! rewrites through a temp file and renames it into place, so a crash
//! during recovery itself never loses the original spool.
//!
//! # Degraded mode
//!
//! [`IncidentSink::record`] is infallible from the worker's perspective:
//! if a spool write fails (disk full, volume gone), the sink latches into
//! ring-only mode — one warning event, `rapd_spool_degraded` set to 1 —
//! and keeps serving from memory instead of failing frames.

use std::collections::{HashSet, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pipeline::{IncidentReport, StageTimings};
use rapminer::LocalizationTrace;

use crate::json::Json;
use crate::metrics::Metrics;
use crate::sync::lock_recover;

/// One incident, flattened to the interchange form the spool and the
/// control socket share.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRecord {
    /// The tenant whose pipeline alarmed.
    pub tenant: String,
    /// Correlation token of the frame that triggered this incident; the
    /// same token appears on the frame's spans, quarantine records, and
    /// blackbox dumps, so one grep reconstructs its whole life. `None` for
    /// incidents produced outside the observe path.
    pub frame_id: Option<String>,
    /// The tenant-local observation step that alarmed.
    pub step: usize,
    /// Relative deviation of the overall KPI (Eq. 4 over the totals).
    pub total_deviation: f64,
    /// Leaves flagged anomalous by per-leaf detection.
    pub anomalous_leaves: usize,
    /// Total leaves in the triggering snapshot.
    pub total_leaves: usize,
    /// Ranked root anomaly patterns as `(pattern, score)`, best first.
    pub raps: Vec<(String, f64)>,
    /// Wall-clock seconds spent in each pipeline stage.
    pub timings: StageTimings,
    /// The full localization trace (per-attribute CP, per-layer search
    /// counts, candidate confidences), when the localizer produced one.
    pub trace: Option<LocalizationTrace>,
    /// Whether the localization deadline expired; `raps` is then the
    /// partial answer from the layers completed in budget.
    pub deadline_exceeded: bool,
    /// Whether any forecast feeding this incident came from the pipeline's
    /// degradation fallback (primary forecaster returned a non-finite
    /// value).
    pub degraded_forecast: bool,
    /// σ-tier of the detection that triggered this incident
    /// (`"warn"`/`"high"`/`"critical"`); `None` in classic mode.
    pub severity: Option<String>,
    /// Detection evidence from the streaming detector; `None` in classic
    /// mode.
    pub detection: Option<DetectionRecord>,
}

/// Detection evidence attached to an incident in detect mode.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionRecord {
    /// Aggregate σ-score of the triggering frame.
    pub score: f64,
    /// Top per-leaf σ-scores as `(leaf combination, score)`, worst first.
    pub leaf_scores: Vec<(String, f64)>,
}

impl IncidentRecord {
    /// Flatten a pipeline report, stamping the tenant it belongs to.
    pub fn from_report(tenant: &str, report: &IncidentReport) -> Self {
        IncidentRecord {
            tenant: tenant.to_string(),
            frame_id: report.frame_id.clone(),
            step: report.step,
            total_deviation: report.total_deviation,
            anomalous_leaves: report.anomalous_leaves,
            total_leaves: report.total_leaves,
            raps: report
                .raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score))
                .collect(),
            timings: report.timings,
            trace: report.trace.clone(),
            deadline_exceeded: report.deadline_exceeded,
            degraded_forecast: report.degraded_forecast,
            severity: report.severity.map(|s| s.as_str().to_string()),
            detection: report.detection.as_ref().map(|d| DetectionRecord {
                score: d.score,
                leaf_scores: d.leaf_scores.clone(),
            }),
        }
    }

    /// The JSON form used both for spool lines and control-socket replies.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenant".to_string(), Json::str(&self.tenant)),
            (
                "frame".to_string(),
                match &self.frame_id {
                    None => Json::Null,
                    Some(id) => Json::str(id),
                },
            ),
            ("step".to_string(), Json::Num(self.step as f64)),
            (
                "total_deviation".to_string(),
                Json::Num(self.total_deviation),
            ),
            (
                "anomalous_leaves".to_string(),
                Json::Num(self.anomalous_leaves as f64),
            ),
            (
                "total_leaves".to_string(),
                Json::Num(self.total_leaves as f64),
            ),
            (
                "raps".to_string(),
                Json::Arr(
                    self.raps
                        .iter()
                        .map(|(pattern, score)| {
                            Json::Arr(vec![Json::str(pattern), Json::Num(*score)])
                        })
                        .collect(),
                ),
            ),
            ("timings".to_string(), timings_to_json(&self.timings)),
            (
                "trace".to_string(),
                match &self.trace {
                    None => Json::Null,
                    Some(trace) => trace_to_json(trace),
                },
            ),
            (
                "deadline_exceeded".to_string(),
                Json::Bool(self.deadline_exceeded),
            ),
            (
                "degraded_forecast".to_string(),
                Json::Bool(self.degraded_forecast),
            ),
            (
                "severity".to_string(),
                match &self.severity {
                    None => Json::Null,
                    Some(s) => Json::str(s),
                },
            ),
            (
                "detection".to_string(),
                match &self.detection {
                    None => Json::Null,
                    Some(d) => detection_to_json(d),
                },
            ),
        ])
    }
}

fn detection_to_json(d: &DetectionRecord) -> Json {
    Json::Obj(vec![
        ("score".to_string(), Json::Num(d.score)),
        (
            "leaf_scores".to_string(),
            Json::Arr(
                d.leaf_scores
                    .iter()
                    .map(|(leaf, score)| Json::Arr(vec![Json::str(leaf), Json::Num(*score)]))
                    .collect(),
            ),
        ),
    ])
}

fn timings_to_json(t: &StageTimings) -> Json {
    Json::Obj(vec![
        ("detect_seconds".to_string(), Json::Num(t.detect_seconds)),
        (
            "detector_seconds".to_string(),
            Json::Num(t.detector_seconds),
        ),
        ("cp_seconds".to_string(), Json::Num(t.cp_seconds)),
        ("search_seconds".to_string(), Json::Num(t.search_seconds)),
        (
            "localize_seconds".to_string(),
            Json::Num(t.localize_seconds),
        ),
    ])
}

/// Serialize a [`LocalizationTrace`] to the interchange form shared by the
/// spool and the control socket.
fn trace_to_json(trace: &LocalizationTrace) -> Json {
    let attrs = trace
        .attrs
        .iter()
        .map(|a| {
            Json::Obj(vec![
                ("attribute".to_string(), Json::str(&a.attribute)),
                ("cp".to_string(), Json::Num(a.cp)),
                ("deleted".to_string(), Json::Bool(a.deleted)),
            ])
        })
        .collect();
    let layers = trace
        .layers
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("layer".to_string(), Json::Num(l.layer as f64)),
                ("cuboids".to_string(), Json::Num(l.cuboids as f64)),
                ("combos".to_string(), Json::Num(l.combos as f64)),
                ("candidates".to_string(), Json::Num(l.candidates as f64)),
            ])
        })
        .collect();
    let candidates = trace
        .candidates
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("combination".to_string(), Json::str(&c.combination)),
                ("confidence".to_string(), Json::Num(c.confidence)),
                ("layer".to_string(), Json::Num(c.layer as f64)),
                ("score".to_string(), Json::Num(c.score)),
                ("kept".to_string(), Json::Bool(c.kept)),
            ])
        })
        .collect();
    let stats = Json::Obj(vec![
        (
            "attrs_deleted".to_string(),
            Json::Num(trace.stats.attrs_deleted as f64),
        ),
        (
            "cuboids_visited".to_string(),
            Json::Num(trace.stats.cuboids_visited as f64),
        ),
        (
            "combos_visited".to_string(),
            Json::Num(trace.stats.combos_visited as f64),
        ),
        (
            "candidates_found".to_string(),
            Json::Num(trace.stats.candidates_found as f64),
        ),
        (
            "early_stopped".to_string(),
            Json::Bool(trace.stats.early_stopped),
        ),
        ("cancelled".to_string(), Json::Bool(trace.stats.cancelled)),
    ]);
    let detection = match &trace.detection {
        None => Json::Null,
        Some(d) => Json::Obj(vec![
            ("severity".to_string(), Json::str(&d.severity)),
            ("score".to_string(), Json::Num(d.score)),
            (
                "leaf_scores".to_string(),
                Json::Arr(
                    d.leaf_scores
                        .iter()
                        .map(|(leaf, score)| Json::Arr(vec![Json::str(leaf), Json::Num(*score)]))
                        .collect(),
                ),
            ),
        ]),
    };
    Json::Obj(vec![
        ("attrs".to_string(), Json::Arr(attrs)),
        ("layers".to_string(), Json::Arr(layers)),
        ("candidates".to_string(), Json::Arr(candidates)),
        ("stats".to_string(), stats),
        ("cp_seconds".to_string(), Json::Num(trace.cp_seconds)),
        (
            "search_seconds".to_string(),
            Json::Num(trace.search_seconds),
        ),
        ("detection".to_string(), detection),
    ])
}

/// IEEE CRC-32 (polynomial `0xEDB88320`), bitwise — the spool is
/// low-volume (one line per incident) so a lookup table buys nothing.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One spool line's payload with its checksum suffix.
pub(crate) fn frame_spool_line(json: &str) -> String {
    format!("{json}\t{:08x}", crc32(json.as_bytes()))
}

/// What [`IncidentSink::open`] found when scanning an existing spool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolRecovery {
    /// Lines whose CRC-32 suffix verified.
    pub recovered: u64,
    /// Pre-CRC lines accepted read-only because they parse as JSON.
    pub legacy: u64,
    /// Torn or corrupt bytes dropped from the file.
    pub truncated_bytes: u64,
}

/// Verdict on one scanned spool line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineVerdict {
    /// CRC suffix present and correct.
    Verified,
    /// No CRC suffix, but the whole line parses as a JSON object
    /// (a spool written before checksumming existed).
    Legacy,
    /// Torn or corrupt: drop it.
    Corrupt,
}

pub(crate) fn judge_line(line: &str) -> LineVerdict {
    if let Some((json, suffix)) = line.rsplit_once('\t') {
        if suffix.len() == 8
            && suffix.chars().all(|c| c.is_ascii_hexdigit())
            && u32::from_str_radix(suffix, 16) == Ok(crc32(json.as_bytes()))
        {
            return LineVerdict::Verified;
        }
    }
    match crate::json::parse(line) {
        Ok(Json::Obj(_)) => LineVerdict::Legacy,
        _ => LineVerdict::Corrupt,
    }
}

/// Scan an existing spool, keep every intact line, and truncate the rest.
///
/// The repaired content is written to a sibling temp file first and
/// renamed over the original, so a crash mid-repair leaves either the old
/// or the new spool — never a half-written one. A missing file is an empty
/// recovery, not an error. Shared with the WAL and checkpoint stores,
/// which use the same line framing.
pub(crate) fn repair_spool(path: &Path) -> io::Result<SpoolRecovery> {
    let data = match fs::read_to_string(path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SpoolRecovery::default()),
        Err(e) => return Err(e),
    };
    let mut recovery = SpoolRecovery::default();
    let mut kept = String::with_capacity(data.len());
    let mut dropped_any = false;
    // `lines()` also yields a final unterminated fragment; if its checksum
    // verifies the write actually completed and only the newline was lost,
    // so it is kept (re-terminated). Anything else at the tail is torn.
    let unterminated_tail = !data.is_empty() && !data.ends_with('\n');
    for line in data.lines() {
        match judge_line(line) {
            LineVerdict::Verified => recovery.recovered += 1,
            LineVerdict::Legacy => recovery.legacy += 1,
            LineVerdict::Corrupt => {
                dropped_any = true;
                continue;
            }
        }
        kept.push_str(line);
        kept.push('\n');
    }
    recovery.truncated_bytes = (data.len() as u64).saturating_sub(kept.len() as u64);
    if dropped_any || unterminated_tail {
        let tmp = path.with_extension("jsonl.repair");
        fs::write(&tmp, &kept)?;
        fs::rename(&tmp, path)?;
    }
    Ok(recovery)
}

/// Harvest the frame tokens of every intact incident line in `path` into
/// `seen` — the boot-time seed of the replay-dedup set. A missing or
/// unreadable segment contributes nothing (recovery must never refuse to
/// boot over a spool).
fn collect_frame_tokens(path: &Path, seen: &mut HashSet<String>) {
    let Ok(data) = fs::read_to_string(path) else {
        return;
    };
    for line in data.lines() {
        let json = match judge_line(line) {
            LineVerdict::Verified => match line.rsplit_once('\t') {
                Some((json, _)) => json,
                None => continue,
            },
            LineVerdict::Legacy => line,
            LineVerdict::Corrupt => continue,
        };
        if let Ok(doc) = crate::json::parse(json) {
            if let Some(frame) = doc.get("frame").and_then(Json::as_str) {
                seen.insert(frame.to_string());
            }
        }
    }
}

/// Where incidents go: crash-safe JSONL spool (optional) + bounded ring.
#[derive(Debug)]
pub struct IncidentSink {
    spool: Option<Spool>,
    ring: Mutex<VecDeque<IncidentRecord>>,
    ring_capacity: usize,
    /// Frame tokens already present in the spool at open time plus every
    /// token recorded since — the exactly-once guard for WAL replay: a
    /// replayed frame that alarmed before the crash re-produces its
    /// incident, and this set suppresses the duplicate.
    seen_frames: Mutex<HashSet<String>>,
    metrics: Arc<Metrics>,
}

#[derive(Debug)]
struct Spool {
    path: PathBuf,
    file: Mutex<File>,
    /// Current spool size in bytes, maintained by appends; seeds the
    /// size-based rotation check.
    bytes: AtomicU64,
    /// Rotate when the spool exceeds this many bytes; `0` disables.
    max_bytes: u64,
    /// Latched on the first write error; the sink then serves ring-only.
    degraded: AtomicBool,
}

impl IncidentSink {
    /// Open the sink. When `spool_dir` is given the directory is created,
    /// any existing `incidents.jsonl` is scanned and repaired (see the
    /// module docs), and the file is opened for append. Recovery tallies
    /// land in `metrics` (`rapd_spool_recovered_lines`,
    /// `rapd_spool_legacy_lines`, `rapd_spool_truncated_bytes`). Frame
    /// tokens found in the spool (and its rotated `.jsonl.1` segment)
    /// seed the replay-dedup set. `max_bytes > 0` enables size-based
    /// rotation: when the spool exceeds the cap, the current file
    /// becomes `incidents.jsonl.1`, evicting the previous segment.
    ///
    /// # Errors
    ///
    /// Fails when the spool directory or file cannot be created, or an
    /// existing spool cannot be read for repair.
    pub fn open(
        spool_dir: Option<&Path>,
        ring_capacity: usize,
        max_bytes: u64,
        metrics: Arc<Metrics>,
    ) -> io::Result<Self> {
        let mut seen_frames = HashSet::new();
        let spool = match spool_dir {
            None => None,
            Some(dir) => {
                fs::create_dir_all(dir)?;
                let path = dir.join("incidents.jsonl");
                let recovery = repair_spool(&path)?;
                for segment in [path.with_extension("jsonl.1"), path.clone()] {
                    collect_frame_tokens(&segment, &mut seen_frames);
                }
                metrics
                    .spool_recovered_lines
                    .store(recovery.recovered, Ordering::Relaxed);
                metrics
                    .spool_legacy_lines
                    .store(recovery.legacy, Ordering::Relaxed);
                metrics
                    .spool_truncated_bytes
                    .store(recovery.truncated_bytes, Ordering::Relaxed);
                if recovery != SpoolRecovery::default() {
                    obs::info(
                        "sink",
                        "spool_recovered",
                        &[
                            ("recovered", obs::Value::from(recovery.recovered)),
                            ("legacy", obs::Value::from(recovery.legacy)),
                            (
                                "truncated_bytes",
                                obs::Value::from(recovery.truncated_bytes),
                            ),
                        ],
                    );
                }
                let file = OpenOptions::new().create(true).append(true).open(&path)?;
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                Some(Spool {
                    path,
                    file: Mutex::new(file),
                    bytes: AtomicU64::new(bytes),
                    max_bytes,
                    degraded: AtomicBool::new(false),
                })
            }
        };
        Ok(IncidentSink {
            spool,
            ring: Mutex::new(VecDeque::new()),
            ring_capacity: ring_capacity.max(1),
            seen_frames: Mutex::new(seen_frames),
            metrics,
        })
    }

    /// The spool file path, when spooling is enabled.
    pub fn spool_path(&self) -> Option<&Path> {
        self.spool.as_ref().map(|s| s.path.as_path())
    }

    /// Whether a spool write error has degraded the sink to ring-only.
    pub fn is_degraded(&self) -> bool {
        self.spool
            .as_ref()
            .is_some_and(|s| s.degraded.load(Ordering::Relaxed))
    }

    /// Record one incident: push to the ring (evicting the oldest entry
    /// when full) and append the checksummed spool line, flushed
    /// immediately — incidents are rare and must survive a crash.
    ///
    /// Exactly-once across restarts: a record whose frame token is
    /// already in the spool (a WAL-replayed frame that alarmed before
    /// the crash) is suppressed and counted in
    /// `rapd_incidents_deduped_total` instead of appearing twice.
    ///
    /// Infallible from the caller's perspective: a spool write failure
    /// degrades the sink to ring-only mode (one warning event,
    /// `rapd_spool_degraded` gauge set) instead of surfacing an error the
    /// worker could do nothing useful with.
    pub fn record(&self, record: IncidentRecord) {
        if let Some(frame) = &record.frame_id {
            let mut seen = lock_recover(&self.seen_frames);
            if !seen.insert(frame.clone()) {
                self.metrics
                    .incidents_deduped
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let line = frame_spool_line(&record.to_json().render());
        {
            let mut ring = lock_recover(&self.ring);
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        let Some(spool) = &self.spool else { return };
        if spool.degraded.load(Ordering::Relaxed) {
            return;
        }
        let result = {
            let mut file = lock_recover(&spool.file);
            if obs::fail::should_error("spool-write-error") {
                Err(io::Error::other("injected spool write error"))
            } else {
                writeln!(file, "{line}")
                    .and_then(|()| file.flush())
                    .and_then(|()| {
                        let bytes = spool
                            .bytes
                            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed)
                            + line.len() as u64
                            + 1;
                        if spool.max_bytes > 0 && bytes > spool.max_bytes {
                            self.rotate(spool, &mut file)?;
                        }
                        Ok(())
                    })
            }
        };
        if let Err(e) = result {
            self.metrics
                .spool_write_errors
                .fetch_add(1, Ordering::Relaxed);
            if !spool.degraded.swap(true, Ordering::Relaxed) {
                self.metrics.spool_degraded.store(1, Ordering::Relaxed);
                obs::warn(
                    "sink",
                    "spool_degraded",
                    &[
                        ("error", obs::Value::from(e.to_string())),
                        ("path", obs::Value::from(spool.path.display().to_string())),
                    ],
                );
            }
        }
    }

    /// Rotate the spool: the current file becomes `incidents.jsonl.1`
    /// (evicting the previous segment) and appends continue into a fresh
    /// file. Called with the spool file lock held.
    fn rotate(&self, spool: &Spool, file: &mut File) -> io::Result<()> {
        file.sync_all()?;
        let old = spool.path.with_extension("jsonl.1");
        match fs::remove_file(&old) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::rename(&spool.path, &old)?;
        *file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&spool.path)?;
        spool.bytes.store(0, Ordering::Relaxed);
        self.metrics
            .spool_rotations
            .incidents
            .fetch_add(1, Ordering::Relaxed);
        obs::info(
            "sink",
            "spool_rotated",
            &[("path", obs::Value::from(spool.path.display().to_string()))],
        );
        Ok(())
    }

    /// The most recent incidents, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<IncidentRecord> {
        let ring = lock_recover(&self.ring);
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Incidents currently held in the ring.
    pub fn ring_len(&self) -> usize {
        lock_recover(&self.ring).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new(1))
    }

    fn record(tenant: &str, step: usize) -> IncidentRecord {
        IncidentRecord {
            tenant: tenant.to_string(),
            frame_id: None,
            step,
            total_deviation: -0.4,
            anomalous_leaves: 2,
            total_leaves: 8,
            raps: vec![("(L1, *)".to_string(), 0.93)],
            timings: StageTimings {
                detect_seconds: 0.001,
                detector_seconds: 0.0005,
                cp_seconds: 0.002,
                search_seconds: 0.003,
                localize_seconds: 0.006,
            },
            trace: None,
            deadline_exceeded: false,
            degraded_forecast: false,
            severity: None,
            detection: None,
        }
    }

    /// A scratch directory unique to the calling test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapd-sink-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_keeps_newest_and_bounds_memory() {
        let sink = IncidentSink::open(None, 3, 0, metrics()).unwrap();
        for step in 0..10 {
            sink.record(record("t", step));
        }
        assert_eq!(sink.ring_len(), 3);
        let recent = sink.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].step, 9);
        assert_eq!(recent[1].step, 8);
    }

    #[test]
    fn spool_appends_checksummed_json_lines() {
        let dir = scratch("append");
        let sink = IncidentSink::open(Some(&dir), 8, 0, metrics()).unwrap();
        sink.record(record("edge", 5));
        sink.record(record("edge", 6));
        let text = fs::read_to_string(sink.spool_path().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(
                matches!(judge_line(line), LineVerdict::Verified),
                "bad frame: {line}"
            );
        }
        let (json, _crc) = lines[1].rsplit_once('\t').unwrap();
        let doc = crate::json::parse(json).unwrap();
        assert_eq!(doc.get("tenant").unwrap().as_str(), Some("edge"));
        assert_eq!(doc.get("step").unwrap().as_u64(), Some(6));
        assert_eq!(doc.get("deadline_exceeded").unwrap().as_bool(), Some(false));
        let raps = doc.get("raps").unwrap().as_arr().unwrap();
        assert_eq!(raps[0].as_arr().unwrap()[0].as_str(), Some("(L1, *)"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard IEEE CRC-32 check values
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_spool_recovers_to_nothing() {
        let dir = scratch("empty");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incidents.jsonl");
        fs::write(&path, "").unwrap();
        assert_eq!(repair_spool(&path).unwrap(), SpoolRecovery::default());
        // missing file behaves the same
        assert_eq!(
            repair_spool(&dir.join("absent.jsonl")).unwrap(),
            SpoolRecovery::default()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_appends_continue() {
        let dir = scratch("torn");
        let m = metrics();
        {
            let sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m)).unwrap();
            sink.record(record("t", 1));
            sink.record(record("t", 2));
        }
        let path = dir.join("incidents.jsonl");
        let intact = fs::read_to_string(&path).unwrap();
        // simulate a crash mid-write: half a JSON line, no newline
        let torn = r#"{"tenant":"t","step":3,"total_dev"#;
        fs::write(&path, format!("{intact}{torn}")).unwrap();

        let m2 = metrics();
        let sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m2)).unwrap();
        assert_eq!(m2.spool_recovered_lines.load(Ordering::Relaxed), 2);
        assert_eq!(m2.spool_legacy_lines.load(Ordering::Relaxed), 0);
        assert_eq!(
            m2.spool_truncated_bytes.load(Ordering::Relaxed),
            torn.len() as u64
        );
        let repaired = fs::read_to_string(&path).unwrap();
        assert_eq!(repaired, intact, "intact prefix must survive untouched");
        // and the repaired spool accepts new incidents
        sink.record(record("t", 4));
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text
            .lines()
            .all(|l| matches!(judge_line(l), LineVerdict::Verified)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corrupt_crc_is_dropped_and_counted() {
        let dir = scratch("corrupt");
        let m = metrics();
        {
            let sink = IncidentSink::open(Some(&dir), 8, 0, m).unwrap();
            for step in 1..=3 {
                sink.record(record("t", step));
            }
        }
        let path = dir.join("incidents.jsonl");
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // flip a payload byte of the middle line; its CRC no longer matches
        lines[1] = lines[1].replacen("\"step\":2", "\"step\":9", 1);
        let corrupted_len = lines[1].len() as u64 + 1; // + newline
        fs::write(&path, lines.join("\n") + "\n").unwrap();

        let m2 = metrics();
        let _sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m2)).unwrap();
        assert_eq!(m2.spool_recovered_lines.load(Ordering::Relaxed), 2);
        assert_eq!(
            m2.spool_truncated_bytes.load(Ordering::Relaxed),
            corrupted_len
        );
        let repaired = fs::read_to_string(&path).unwrap();
        assert_eq!(repaired.lines().count(), 2);
        assert!(!repaired.contains("\"step\":9"), "tampered line must go");
        assert!(repaired.contains("\"step\":1") && repaired.contains("\"step\":3"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_pre_crc_lines_are_accepted_read_only() {
        let dir = scratch("legacy");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incidents.jsonl");
        // a spool written before checksumming: bare JSON lines
        let legacy1 = record("old", 1).to_json().render();
        let legacy2 = record("old", 2).to_json().render();
        fs::write(&path, format!("{legacy1}\n{legacy2}\n")).unwrap();

        let m = metrics();
        let sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m)).unwrap();
        assert_eq!(m.spool_recovered_lines.load(Ordering::Relaxed), 0);
        assert_eq!(m.spool_legacy_lines.load(Ordering::Relaxed), 2);
        assert_eq!(m.spool_truncated_bytes.load(Ordering::Relaxed), 0);
        // legacy lines stay byte-identical; new lines get checksums
        sink.record(record("new", 3));
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], legacy1);
        assert!(matches!(judge_line(lines[0]), LineVerdict::Legacy));
        assert!(matches!(judge_line(lines[2]), LineVerdict::Verified));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unterminated_but_intact_final_line_is_kept() {
        let dir = scratch("unterminated");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incidents.jsonl");
        // the write completed but the trailing newline was lost
        let framed = frame_spool_line(&record("t", 7).to_json().render());
        fs::write(&path, &framed).unwrap();
        let m = metrics();
        let _sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m)).unwrap();
        assert_eq!(m.spool_recovered_lines.load(Ordering::Relaxed), 1);
        assert_eq!(m.spool_truncated_bytes.load(Ordering::Relaxed), 0);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{framed}\n"), "re-terminated in place");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ring_only_sink_never_degrades() {
        let sink = IncidentSink::open(None, 4, 0, metrics()).unwrap();
        sink.record(record("t", 1));
        assert!(!sink.is_degraded());
        assert!(sink.spool_path().is_none());
    }

    #[test]
    fn duplicate_frame_tokens_are_suppressed_within_a_run() {
        let m = metrics();
        let sink = IncidentSink::open(None, 8, 0, Arc::clone(&m)).unwrap();
        let mut rec = record("t", 1);
        rec.frame_id = Some("t-00000001-1700000000000".to_string());
        sink.record(rec.clone());
        sink.record(rec); // a replayed twin
        assert_eq!(sink.ring_len(), 1);
        assert_eq!(m.incidents_deduped.load(Ordering::Relaxed), 1);
        // tokenless records (outside the observe path) never dedup
        sink.record(record("t", 2));
        sink.record(record("t", 2));
        assert_eq!(sink.ring_len(), 3);
        assert_eq!(m.incidents_deduped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spooled_frame_tokens_dedup_across_reopen() {
        let dir = scratch("dedup");
        let m = metrics();
        let mut rec = record("t", 1);
        rec.frame_id = Some("t-0000002a-1700000000000".to_string());
        {
            let sink = IncidentSink::open(Some(&dir), 8, 0, metrics()).unwrap();
            sink.record(rec.clone());
        }
        // a fresh process (post-crash restart) replays the same frame
        let sink = IncidentSink::open(Some(&dir), 8, 0, Arc::clone(&m)).unwrap();
        sink.record(rec);
        assert_eq!(m.incidents_deduped.load(Ordering::Relaxed), 1);
        assert_eq!(sink.ring_len(), 0, "the duplicate never reaches the ring");
        let text = fs::read_to_string(sink.spool_path().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 1, "spooled exactly once");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_spool_rotates_and_evicts_the_oldest_segment() {
        let dir = scratch("rotate");
        let m = metrics();
        // a cap small enough that every record overflows it
        let sink = IncidentSink::open(Some(&dir), 8, 64, Arc::clone(&m)).unwrap();
        sink.record(record("t", 1));
        let rotated = dir.join("incidents.jsonl.1");
        assert!(rotated.is_file(), "first overflow rotates");
        assert!(fs::read_to_string(&rotated).unwrap().contains("\"step\":1"));
        assert_eq!(m.spool_rotations.incidents.load(Ordering::Relaxed), 1);
        sink.record(record("t", 2));
        // step 1's segment is evicted; step 2 now holds the .1 slot
        assert!(fs::read_to_string(&rotated).unwrap().contains("\"step\":2"));
        assert!(!fs::read_to_string(&rotated).unwrap().contains("\"step\":1"));
        assert_eq!(m.spool_rotations.incidents.load(Ordering::Relaxed), 2);
        // the live spool is empty again and still accepts appends
        assert_eq!(fs::read_to_string(sink.spool_path().unwrap()).unwrap(), "");
        assert!(!sink.is_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotated_segment_still_seeds_the_dedup_set() {
        let dir = scratch("rotate-dedup");
        let mut rec = record("t", 1);
        rec.frame_id = Some("t-00000007-1700000000000".to_string());
        {
            let sink = IncidentSink::open(Some(&dir), 8, 64, metrics()).unwrap();
            sink.record(rec.clone()); // rotates into .jsonl.1
        }
        let m = metrics();
        let sink = IncidentSink::open(Some(&dir), 8, 64, Arc::clone(&m)).unwrap();
        sink.record(rec);
        assert_eq!(
            m.incidents_deduped.load(Ordering::Relaxed),
            1,
            "tokens in the rotated segment must still suppress replays"
        );
        assert_eq!(sink.ring_len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut rec = record("t", 3);
        let doc = rec.to_json();
        assert_eq!(doc.get("frame"), Some(&Json::Null));
        rec.frame_id = Some("t-0000002a-1700000000000".to_string());
        let doc = rec.to_json();
        assert_eq!(
            doc.get("frame").unwrap().as_str(),
            Some("t-0000002a-1700000000000")
        );
        assert_eq!(doc.get("total_deviation").unwrap().as_f64(), Some(-0.4));
        assert_eq!(doc.get("total_leaves").unwrap().as_u64(), Some(8));
        let timings = doc.get("timings").unwrap();
        assert_eq!(timings.get("cp_seconds").unwrap().as_f64(), Some(0.002));
        assert_eq!(doc.get("trace"), Some(&Json::Null));
        assert_eq!(doc.get("degraded_forecast").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn judge_line_distinguishes_every_verdict() {
        // checksummed line → Verified
        let framed = frame_spool_line(r#"{"tenant":"t"}"#);
        assert_eq!(judge_line(&framed), LineVerdict::Verified);
        // bare JSON object (pre-CRC spool) → Legacy
        assert_eq!(judge_line(r#"{"tenant":"t"}"#), LineVerdict::Legacy);
        // legacy JSON containing a literal tab in a string still judges
        // correctly: the suffix after the tab is not an 8-hex CRC
        assert_eq!(judge_line("{\"note\":\"a\tb\"}"), LineVerdict::Legacy);
        // wrong checksum → Corrupt (not legacy: the tab suffix breaks parse)
        let mut tampered = framed.clone();
        tampered.replace_range(..1, " ");
        assert_eq!(judge_line(&tampered), LineVerdict::Corrupt);
        // torn fragments and non-object JSON → Corrupt
        assert_eq!(judge_line(r#"{"tenant":"t"#), LineVerdict::Corrupt);
        assert_eq!(judge_line("[1,2,3]"), LineVerdict::Corrupt);
        assert_eq!(judge_line(""), LineVerdict::Corrupt);
        // an 8-hex suffix guarding different bytes → Corrupt
        let (json, crc) = framed.rsplit_once('\t').unwrap();
        let mismatched = format!("{json} \t{crc}");
        assert_eq!(judge_line(&mismatched), LineVerdict::Corrupt);
    }

    #[test]
    fn localization_trace_serializes_fully() {
        use rapminer::{AttrPower, CandidateTrace, LayerTrace, SearchStats};
        let mut rec = record("t", 1);
        rec.trace = Some(LocalizationTrace {
            attrs: vec![
                AttrPower {
                    attribute: "isp".to_string(),
                    cp: 0.9,
                    deleted: false,
                },
                AttrPower {
                    attribute: "province".to_string(),
                    cp: 0.1,
                    deleted: true,
                },
            ],
            layers: vec![LayerTrace {
                layer: 1,
                cuboids: 1,
                combos: 2,
                candidates: 1,
            }],
            candidates: vec![CandidateTrace {
                combination: "(I1)".to_string(),
                confidence: 0.95,
                layer: 1,
                score: 0.95,
                kept: true,
            }],
            stats: SearchStats {
                attrs_deleted: 1,
                cuboids_visited: 1,
                combos_visited: 2,
                candidates_found: 1,
                early_stopped: true,
                cancelled: false,
            },
            cp_seconds: 0.004,
            search_seconds: 0.005,
            detection: Some(rapminer::TraceDetection {
                severity: "high".to_string(),
                score: 4.4,
                leaf_scores: vec![("(I1)".to_string(), 4.4)],
            }),
        });
        // the spool line (and hence the control-socket reply) must carry
        // the whole trace and survive a parse round-trip
        let line = rec.to_json().render();
        let doc = crate::json::parse(&line).unwrap();
        let trace = doc.get("trace").unwrap();
        let attrs = trace.get("attrs").unwrap().as_arr().unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[1].get("deleted").unwrap().as_bool(), Some(true));
        assert_eq!(
            attrs[1].get("attribute").unwrap().as_str(),
            Some("province")
        );
        let layers = trace.get("layers").unwrap().as_arr().unwrap();
        assert_eq!(layers[0].get("combos").unwrap().as_u64(), Some(2));
        let stats = trace.get("stats").unwrap();
        assert_eq!(stats.get("early_stopped").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("cancelled").unwrap().as_bool(), Some(false));
        assert_eq!(stats.get("attrs_deleted").unwrap().as_u64(), Some(1));
        let cands = trace.get("candidates").unwrap().as_arr().unwrap();
        assert_eq!(cands[0].get("combination").unwrap().as_str(), Some("(I1)"));
        assert_eq!(cands[0].get("kept").unwrap().as_bool(), Some(true));
        let detection = trace.get("detection").unwrap();
        assert_eq!(detection.get("severity").unwrap().as_str(), Some("high"));
        assert_eq!(detection.get("score").unwrap().as_f64(), Some(4.4));
    }

    #[test]
    fn severity_and_detection_serialize_when_present() {
        let mut rec = record("t", 2);
        // classic mode: both fields render as null
        let doc = rec.to_json();
        assert_eq!(doc.get("severity"), Some(&Json::Null));
        assert_eq!(doc.get("detection"), Some(&Json::Null));
        // detect mode: evidence round-trips through the spool line
        rec.severity = Some("critical".to_string());
        rec.detection = Some(DetectionRecord {
            score: 7.25,
            leaf_scores: vec![("(L1, *)".to_string(), 6.5), ("(L2, *)".to_string(), 3.1)],
        });
        let line = rec.to_json().render();
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("severity").unwrap().as_str(), Some("critical"));
        let detection = doc.get("detection").unwrap();
        assert_eq!(detection.get("score").unwrap().as_f64(), Some(7.25));
        let leaves = detection.get("leaf_scores").unwrap().as_arr().unwrap();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].as_arr().unwrap()[0].as_str(), Some("(L1, *)"));
        assert_eq!(leaves[0].as_arr().unwrap()[1].as_f64(), Some(6.5));
        // the new timing lands in the timings object too
        let timings = doc.get("timings").unwrap();
        assert_eq!(
            timings.get("detector_seconds").unwrap().as_f64(),
            Some(0.0005)
        );
    }
}
