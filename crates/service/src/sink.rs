//! The incident sink: a JSONL spool on disk plus an in-memory ring.
//!
//! Shard workers hand every [`pipeline::IncidentReport`] here. The sink
//! appends one JSON line per incident to `incidents.jsonl` in the spool
//! directory (when configured) and keeps the most recent incidents in a
//! bounded ring so the control socket can answer `incidents` queries
//! without touching disk.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pipeline::{IncidentReport, StageTimings};
use rapminer::LocalizationTrace;

use crate::json::Json;

/// One incident, flattened to the interchange form the spool and the
/// control socket share.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRecord {
    /// The tenant whose pipeline alarmed.
    pub tenant: String,
    /// The tenant-local observation step that alarmed.
    pub step: usize,
    /// Relative deviation of the overall KPI (Eq. 4 over the totals).
    pub total_deviation: f64,
    /// Leaves flagged anomalous by per-leaf detection.
    pub anomalous_leaves: usize,
    /// Total leaves in the triggering snapshot.
    pub total_leaves: usize,
    /// Ranked root anomaly patterns as `(pattern, score)`, best first.
    pub raps: Vec<(String, f64)>,
    /// Wall-clock seconds spent in each pipeline stage.
    pub timings: StageTimings,
    /// The full localization trace (per-attribute CP, per-layer search
    /// counts, candidate confidences), when the localizer produced one.
    pub trace: Option<LocalizationTrace>,
}

impl IncidentRecord {
    /// Flatten a pipeline report, stamping the tenant it belongs to.
    pub fn from_report(tenant: &str, report: &IncidentReport) -> Self {
        IncidentRecord {
            tenant: tenant.to_string(),
            step: report.step,
            total_deviation: report.total_deviation,
            anomalous_leaves: report.anomalous_leaves,
            total_leaves: report.total_leaves,
            raps: report
                .raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score))
                .collect(),
            timings: report.timings,
            trace: report.trace.clone(),
        }
    }

    /// The JSON form used both for spool lines and control-socket replies.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenant".to_string(), Json::str(&self.tenant)),
            ("step".to_string(), Json::Num(self.step as f64)),
            (
                "total_deviation".to_string(),
                Json::Num(self.total_deviation),
            ),
            (
                "anomalous_leaves".to_string(),
                Json::Num(self.anomalous_leaves as f64),
            ),
            (
                "total_leaves".to_string(),
                Json::Num(self.total_leaves as f64),
            ),
            (
                "raps".to_string(),
                Json::Arr(
                    self.raps
                        .iter()
                        .map(|(pattern, score)| {
                            Json::Arr(vec![Json::str(pattern), Json::Num(*score)])
                        })
                        .collect(),
                ),
            ),
            ("timings".to_string(), timings_to_json(&self.timings)),
            (
                "trace".to_string(),
                match &self.trace {
                    None => Json::Null,
                    Some(trace) => trace_to_json(trace),
                },
            ),
        ])
    }
}

fn timings_to_json(t: &StageTimings) -> Json {
    Json::Obj(vec![
        ("detect_seconds".to_string(), Json::Num(t.detect_seconds)),
        ("cp_seconds".to_string(), Json::Num(t.cp_seconds)),
        ("search_seconds".to_string(), Json::Num(t.search_seconds)),
        (
            "localize_seconds".to_string(),
            Json::Num(t.localize_seconds),
        ),
    ])
}

/// Serialize a [`LocalizationTrace`] to the interchange form shared by the
/// spool and the control socket.
fn trace_to_json(trace: &LocalizationTrace) -> Json {
    let attrs = trace
        .attrs
        .iter()
        .map(|a| {
            Json::Obj(vec![
                ("attribute".to_string(), Json::str(&a.attribute)),
                ("cp".to_string(), Json::Num(a.cp)),
                ("deleted".to_string(), Json::Bool(a.deleted)),
            ])
        })
        .collect();
    let layers = trace
        .layers
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("layer".to_string(), Json::Num(l.layer as f64)),
                ("cuboids".to_string(), Json::Num(l.cuboids as f64)),
                ("combos".to_string(), Json::Num(l.combos as f64)),
                ("candidates".to_string(), Json::Num(l.candidates as f64)),
            ])
        })
        .collect();
    let candidates = trace
        .candidates
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("combination".to_string(), Json::str(&c.combination)),
                ("confidence".to_string(), Json::Num(c.confidence)),
                ("layer".to_string(), Json::Num(c.layer as f64)),
                ("score".to_string(), Json::Num(c.score)),
                ("kept".to_string(), Json::Bool(c.kept)),
            ])
        })
        .collect();
    let stats = Json::Obj(vec![
        (
            "attrs_deleted".to_string(),
            Json::Num(trace.stats.attrs_deleted as f64),
        ),
        (
            "cuboids_visited".to_string(),
            Json::Num(trace.stats.cuboids_visited as f64),
        ),
        (
            "combos_visited".to_string(),
            Json::Num(trace.stats.combos_visited as f64),
        ),
        (
            "candidates_found".to_string(),
            Json::Num(trace.stats.candidates_found as f64),
        ),
        (
            "early_stopped".to_string(),
            Json::Bool(trace.stats.early_stopped),
        ),
    ]);
    Json::Obj(vec![
        ("attrs".to_string(), Json::Arr(attrs)),
        ("layers".to_string(), Json::Arr(layers)),
        ("candidates".to_string(), Json::Arr(candidates)),
        ("stats".to_string(), stats),
        ("cp_seconds".to_string(), Json::Num(trace.cp_seconds)),
        (
            "search_seconds".to_string(),
            Json::Num(trace.search_seconds),
        ),
    ])
}

/// Where incidents go: JSONL spool file (optional) + bounded ring.
#[derive(Debug)]
pub struct IncidentSink {
    spool: Option<Spool>,
    ring: Mutex<VecDeque<IncidentRecord>>,
    ring_capacity: usize,
}

#[derive(Debug)]
struct Spool {
    path: PathBuf,
    file: Mutex<File>,
}

impl IncidentSink {
    /// Create the sink. When `spool_dir` is given the directory is created
    /// and `incidents.jsonl` inside it is opened for append.
    ///
    /// # Errors
    ///
    /// Fails when the spool directory or file cannot be created.
    pub fn new(spool_dir: Option<&Path>, ring_capacity: usize) -> io::Result<Self> {
        let spool = match spool_dir {
            None => None,
            Some(dir) => {
                fs::create_dir_all(dir)?;
                let path = dir.join("incidents.jsonl");
                let file = OpenOptions::new().create(true).append(true).open(&path)?;
                Some(Spool {
                    path,
                    file: Mutex::new(file),
                })
            }
        };
        Ok(IncidentSink {
            spool,
            ring: Mutex::new(VecDeque::new()),
            ring_capacity: ring_capacity.max(1),
        })
    }

    /// The spool file path, when spooling is enabled.
    pub fn spool_path(&self) -> Option<&Path> {
        self.spool.as_ref().map(|s| s.path.as_path())
    }

    /// Record one incident: append the JSON line (flushed immediately —
    /// incidents are rare and must survive a crash) and push to the ring,
    /// evicting the oldest entry when full.
    ///
    /// # Errors
    ///
    /// Fails when the spool write fails; the ring is updated regardless.
    pub fn record(&self, record: IncidentRecord) -> io::Result<()> {
        let line = record.to_json().render();
        {
            let mut ring = self.ring.lock().expect("sink ring poisoned");
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        if let Some(spool) = &self.spool {
            let mut file = spool.file.lock().expect("spool file poisoned");
            writeln!(file, "{line}")?;
            file.flush()?;
        }
        Ok(())
    }

    /// The most recent incidents, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<IncidentRecord> {
        let ring = self.ring.lock().expect("sink ring poisoned");
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Incidents currently held in the ring.
    pub fn ring_len(&self) -> usize {
        self.ring.lock().expect("sink ring poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tenant: &str, step: usize) -> IncidentRecord {
        IncidentRecord {
            tenant: tenant.to_string(),
            step,
            total_deviation: -0.4,
            anomalous_leaves: 2,
            total_leaves: 8,
            raps: vec![("(L1, *)".to_string(), 0.93)],
            timings: StageTimings {
                detect_seconds: 0.001,
                cp_seconds: 0.002,
                search_seconds: 0.003,
                localize_seconds: 0.006,
            },
            trace: None,
        }
    }

    #[test]
    fn ring_keeps_newest_and_bounds_memory() {
        let sink = IncidentSink::new(None, 3).unwrap();
        for step in 0..10 {
            sink.record(record("t", step)).unwrap();
        }
        assert_eq!(sink.ring_len(), 3);
        let recent = sink.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].step, 9);
        assert_eq!(recent[1].step, 8);
    }

    #[test]
    fn spool_appends_valid_json_lines() {
        let dir = std::env::temp_dir().join(format!("rapd-sink-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = IncidentSink::new(Some(&dir), 8).unwrap();
        sink.record(record("edge", 5)).unwrap();
        sink.record(record("edge", 6)).unwrap();
        let text = fs::read_to_string(sink.spool_path().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let doc = crate::json::parse(lines[1]).unwrap();
        assert_eq!(doc.get("tenant").unwrap().as_str(), Some("edge"));
        assert_eq!(doc.get("step").unwrap().as_u64(), Some(6));
        let raps = doc.get("raps").unwrap().as_arr().unwrap();
        assert_eq!(raps[0].as_arr().unwrap()[0].as_str(), Some("(L1, *)"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_roundtrips_through_json() {
        let rec = record("t", 3);
        let doc = rec.to_json();
        assert_eq!(doc.get("total_deviation").unwrap().as_f64(), Some(-0.4));
        assert_eq!(doc.get("total_leaves").unwrap().as_u64(), Some(8));
        let timings = doc.get("timings").unwrap();
        assert_eq!(timings.get("cp_seconds").unwrap().as_f64(), Some(0.002));
        assert_eq!(doc.get("trace"), Some(&Json::Null));
    }

    #[test]
    fn localization_trace_serializes_fully() {
        use rapminer::{AttrPower, CandidateTrace, LayerTrace, SearchStats};
        let mut rec = record("t", 1);
        rec.trace = Some(LocalizationTrace {
            attrs: vec![
                AttrPower {
                    attribute: "isp".to_string(),
                    cp: 0.9,
                    deleted: false,
                },
                AttrPower {
                    attribute: "province".to_string(),
                    cp: 0.1,
                    deleted: true,
                },
            ],
            layers: vec![LayerTrace {
                layer: 1,
                cuboids: 1,
                combos: 2,
                candidates: 1,
            }],
            candidates: vec![CandidateTrace {
                combination: "(I1)".to_string(),
                confidence: 0.95,
                layer: 1,
                score: 0.95,
                kept: true,
            }],
            stats: SearchStats {
                attrs_deleted: 1,
                cuboids_visited: 1,
                combos_visited: 2,
                candidates_found: 1,
                early_stopped: true,
            },
            cp_seconds: 0.004,
            search_seconds: 0.005,
        });
        // the spool line (and hence the control-socket reply) must carry
        // the whole trace and survive a parse round-trip
        let line = rec.to_json().render();
        let doc = crate::json::parse(&line).unwrap();
        let trace = doc.get("trace").unwrap();
        let attrs = trace.get("attrs").unwrap().as_arr().unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[1].get("deleted").unwrap().as_bool(), Some(true));
        assert_eq!(
            attrs[1].get("attribute").unwrap().as_str(),
            Some("province")
        );
        let layers = trace.get("layers").unwrap().as_arr().unwrap();
        assert_eq!(layers[0].get("combos").unwrap().as_u64(), Some(2));
        let stats = trace.get("stats").unwrap();
        assert_eq!(stats.get("early_stopped").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("attrs_deleted").unwrap().as_u64(), Some(1));
        let cands = trace.get("candidates").unwrap().as_arr().unwrap();
        assert_eq!(cands[0].get("combination").unwrap().as_str(), Some("(I1)"));
        assert_eq!(cands[0].get("kept").unwrap().as_bool(), Some(true));
    }
}
