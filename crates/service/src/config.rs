//! Daemon configuration and its validation.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use pipeline::{ConfigError, PipelineConfig};

/// Everything `rapd` needs to come up: listeners, shard/queue sizing,
/// incident spooling, and the per-tenant pipeline tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Ingest/control NDJSON listener address (`host:port`; port 0 picks a
    /// free port — the bound address is reported by the server handle).
    pub listen: String,
    /// Prometheus `/metrics` HTTP listener address.
    pub metrics_listen: String,
    /// Number of shard worker threads; tenants hash onto shards.
    pub shards: usize,
    /// Bounded per-shard queue capacity (frames). When a queue is full the
    /// *oldest queued frame* is dropped and accounted, never the newest —
    /// under overload the pipeline keeps seeing fresh data.
    pub queue_capacity: usize,
    /// Directory for the JSONL incident spool (`incidents.jsonl`); `None`
    /// keeps incidents only in the in-memory ring.
    pub spool_dir: Option<PathBuf>,
    /// Incidents retained in memory for `incidents` control queries.
    pub ring_capacity: usize,
    /// Hard cap on one NDJSON line; longer lines are protocol errors.
    pub max_frame_bytes: usize,
    /// Moving-average window of the per-tenant forecaster.
    pub forecast_window: usize,
    /// Emit structured JSON log lines (the `obs` event stream) on stderr.
    /// When a process-wide event sink is already installed — e.g. by an
    /// embedding test harness — the existing sink is left in place.
    pub log_json: bool,
    /// Consecutive per-tenant pipeline failures (errors, panics, or
    /// localization deadline overruns) that open the tenant's circuit
    /// breaker; further frames are shed until a cooldown probe succeeds.
    /// `0` disables the breaker entirely.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds a tenant's frames before letting one
    /// probe frame through (half-open). Must be positive when the breaker
    /// is enabled.
    pub breaker_cooldown: Duration,
    /// Distinct unknown attribute values each tenant may accumulate before
    /// further drifted frames are quarantined whole instead of repaired by
    /// stripping the drifted rows. `0` quarantines on the first unknown
    /// value.
    pub schema_drift_limit: usize,
    /// Timestamped frames buffered per tenant for watermark reordering.
    /// When the buffer overflows, the oldest frame is emitted regardless
    /// of the watermark. Frames without a timestamp bypass the buffer.
    pub reorder_window: usize,
    /// How far behind the newest seen timestamp the watermark trails.
    /// Frames older than `max(ts) − max_lateness` are quarantined as late.
    pub max_lateness: Duration,
    /// Run the streaming detector in front of localization: tenants ingest
    /// *raw* (unlabelled) frames and rapd self-triggers localization when
    /// the aggregate anomaly score crosses `detect_threshold`. When off,
    /// frames are expected pre-labelled (the classic mode).
    pub detect: bool,
    /// Aggregate σ-score a frame must reach to trigger localization in
    /// detect mode. Must be positive and finite.
    pub detect_threshold: f64,
    /// Seasonal period (in frames) of the detector's Holt-Winters
    /// forecaster; `0` selects the EWMA-only forecaster.
    pub seasonal_period: usize,
    /// Span/event lines each shard worker's flight recorder retains for
    /// post-mortem blackbox dumps (panic, deadline overrun, breaker open).
    /// `0` disables the recorder entirely — legal, not a misconfiguration.
    pub flight_recorder_capacity: usize,
    /// Journal admitted frames to a per-tenant write-ahead log under
    /// `<spool_dir>/wal/` before they enter the shard queues, so a crash
    /// loses nothing past admission. Only effective with a `spool_dir`.
    pub wal: bool,
    /// `fsync` every WAL append before the wire acknowledgment. Off, an
    /// acknowledged frame survives any process death (`kill -9`, OOM)
    /// but sits in the page cache until writeback — power loss or a
    /// kernel panic can still lose it. On, the guarantee extends to
    /// machine crashes, at a per-frame fsync cost.
    pub wal_fsync: bool,
    /// How often each tenant's detector state is checkpointed to
    /// `<spool_dir>/checkpoints/`. `Duration::ZERO` disables periodic
    /// checkpoints (graceful `shutdown` still writes one) — legal, not a
    /// misconfiguration. Only effective with a `spool_dir`.
    pub checkpoint_interval: Duration,
    /// Size at which the incident and per-tenant quarantine spools rotate
    /// (current file renamed to `.jsonl.1`, evicting the previous oldest
    /// segment). `0` disables rotation — legal, spools then grow
    /// unbounded.
    pub spool_max_bytes: u64,
    /// Streaming-pipeline tunables applied to every tenant.
    pub pipeline: PipelineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            listen: "127.0.0.1:4817".to_string(),
            metrics_listen: "127.0.0.1:9187".to_string(),
            shards: 4,
            queue_capacity: 1024,
            spool_dir: None,
            ring_capacity: 256,
            max_frame_bytes: 1 << 20,
            forecast_window: 10,
            log_json: false,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(10),
            schema_drift_limit: 8,
            reorder_window: 32,
            max_lateness: Duration::from_secs(2),
            detect: false,
            detect_threshold: 4.0,
            seasonal_period: 0,
            flight_recorder_capacity: obs::recorder::DEFAULT_FLIGHT_CAPACITY,
            wal: true,
            wal_fsync: false,
            checkpoint_interval: Duration::from_secs(30),
            spool_max_bytes: 64 << 20,
            pipeline: PipelineConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Check every invariant the daemon relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: a zero sizing knob or an
    /// invalid embedded [`PipelineConfig`].
    pub fn validate(&self) -> Result<(), ServiceConfigError> {
        for (field, v) in [
            ("shards", self.shards),
            ("queue_capacity", self.queue_capacity),
            ("ring_capacity", self.ring_capacity),
            ("max_frame_bytes", self.max_frame_bytes),
            ("forecast_window", self.forecast_window),
            // schema_drift_limit = 0 is legal (zero tolerance); the reorder
            // window must hold at least one frame to be a buffer at all.
            ("reorder_window", self.reorder_window),
        ] {
            if v == 0 {
                return Err(ServiceConfigError::ZeroField { field });
            }
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown.is_zero() {
            // A zero cooldown would make the breaker open and immediately
            // half-open — all bookkeeping, no shedding.
            return Err(ServiceConfigError::ZeroField {
                field: "breaker_cooldown",
            });
        }
        if self.detect && !(self.detect_threshold.is_finite() && self.detect_threshold > 0.0) {
            return Err(ServiceConfigError::ZeroField {
                field: "detect_threshold",
            });
        }
        self.pipeline
            .validate()
            .map_err(ServiceConfigError::Pipeline)
    }
}

/// A [`ServiceConfig`] the daemon refuses to boot with.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ServiceConfigError {
    /// A sizing knob that must be positive was zero.
    ZeroField {
        /// The offending field name.
        field: &'static str,
    },
    /// The embedded pipeline config is invalid.
    Pipeline(ConfigError),
}

impl fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceConfigError::ZeroField { field } => write!(f, "{field} must be positive"),
            ServiceConfigError::Pipeline(e) => write!(f, "pipeline config: {e}"),
        }
    }
}

impl std::error::Error for ServiceConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServiceConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for field in [
            "shards",
            "queue_capacity",
            "ring_capacity",
            "max_frame_bytes",
            "forecast_window",
            "reorder_window",
        ] {
            let mut cfg = ServiceConfig::default();
            match field {
                "shards" => cfg.shards = 0,
                "queue_capacity" => cfg.queue_capacity = 0,
                "ring_capacity" => cfg.ring_capacity = 0,
                "max_frame_bytes" => cfg.max_frame_bytes = 0,
                "reorder_window" => cfg.reorder_window = 0,
                _ => cfg.forecast_window = 0,
            }
            let err = cfg.validate().expect_err(field);
            assert!(err.to_string().contains(field));
        }
    }

    #[test]
    fn zero_drift_limit_and_zero_lateness_are_legal() {
        // zero tolerance is a policy, not a misconfiguration
        let cfg = ServiceConfig {
            schema_drift_limit: 0,
            max_lateness: Duration::ZERO,
            ..ServiceConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn zero_flight_recorder_capacity_is_legal() {
        // 0 = flight recorder off, a deliberate operator choice
        let cfg = ServiceConfig {
            flight_recorder_capacity: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn durability_knobs_accept_their_off_positions() {
        // checkpoint_interval 0 = periodic checkpoints off,
        // spool_max_bytes 0 = rotation off, wal false = journaling off —
        // all deliberate operator choices, none a misconfiguration.
        let cfg = ServiceConfig {
            wal: false,
            checkpoint_interval: Duration::ZERO,
            spool_max_bytes: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn zero_cooldown_rejected_only_when_breaker_enabled() {
        let mut cfg = ServiceConfig {
            breaker_cooldown: Duration::ZERO,
            ..ServiceConfig::default()
        };
        let err = cfg.validate().expect_err("enabled breaker, zero cooldown");
        assert!(err.to_string().contains("breaker_cooldown"));
        // threshold 0 disables the breaker; the cooldown then never applies
        cfg.breaker_threshold = 0;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn detect_threshold_checked_only_in_detect_mode() {
        let mut cfg = ServiceConfig {
            detect: true,
            detect_threshold: 0.0,
            ..ServiceConfig::default()
        };
        let err = cfg.validate().expect_err("zero threshold in detect mode");
        assert!(err.to_string().contains("detect_threshold"));
        cfg.detect_threshold = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.detect_threshold = 3.5;
        assert_eq!(cfg.validate(), Ok(()));
        // classic mode never reads the threshold
        cfg.detect = false;
        cfg.detect_threshold = -1.0;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn bad_pipeline_config_propagates() {
        let cfg = ServiceConfig {
            pipeline: PipelineConfig {
                k: 0,
                ..PipelineConfig::default()
            },
            ..ServiceConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ServiceConfigError::Pipeline(ConfigError::ZeroField {
                field: "k"
            }))
        ));
    }
}
