//! The quarantine spool: where rejected telemetry goes to be examined,
//! not lost.
//!
//! Frames the admission layer or the watermark reorder buffer refuses are
//! written as checksummed JSONL to a per-tenant file under
//! `<spool_dir>/quarantine/` (same `{json}\t{crc32:08x}` framing as the
//! incident spool) and retained in a bounded in-memory ring that the
//! `quarantine` control verb serves. Recording is infallible from the
//! caller's perspective: a write failure latches the sink into ring-only
//! mode (`rapd_quarantine_degraded` gauge,
//! `rapd_quarantine_write_errors_total` counter) instead of failing the
//! ingest path.
//!
//! Quarantine records produced by the reorder buffer (`late`, `replay`)
//! carry no rows: by that point the frame has been resolved to internal
//! element ids, so the record preserves provenance (tenant, timestamp,
//! reason) rather than payload.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::sink::frame_spool_line;
use crate::sync::lock_recover;

/// One quarantined frame, as served by the `quarantine` control verb and
/// spooled to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The tenant whose frame was refused.
    pub tenant: String,
    /// Correlation token minted for the frame at the observe verb; the
    /// same token appears on the frame's spans and (for admitted twins) on
    /// incident records, so one grep reconstructs its whole life. `None`
    /// for records produced outside the observe path.
    pub frame_id: Option<String>,
    /// The frame's event timestamp (milliseconds), when it carried one.
    pub ts: Option<u64>,
    /// Why it was refused (a `rapd_frames_quarantined_total` reason:
    /// `non_finite`, `schema_drift`, `late`, or `replay`).
    pub reason: &'static str,
    /// Human-oriented explanation.
    pub detail: String,
    /// The offending wire rows; empty for reorder-buffer rejects (`late`,
    /// `replay`), whose payload is already resolved to internal ids.
    pub rows: Vec<(Vec<String>, f64)>,
}

impl QuarantineRecord {
    /// The JSON form shared by spool lines and control-socket replies.
    /// NaN row values render as JSON `null`, mirroring the wire encoding.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|(names, value)| {
                Json::Arr(vec![
                    Json::Arr(names.iter().map(Json::str).collect()),
                    Json::Num(*value),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("tenant".to_string(), Json::str(&self.tenant)),
            (
                "frame".to_string(),
                match &self.frame_id {
                    None => Json::Null,
                    Some(id) => Json::str(id),
                },
            ),
            (
                "ts".to_string(),
                match self.ts {
                    None => Json::Null,
                    Some(t) => Json::Num(t as f64),
                },
            ),
            ("reason".to_string(), Json::str(self.reason)),
            ("detail".to_string(), Json::str(&self.detail)),
            ("rows".to_string(), Json::Arr(rows)),
        ])
    }
}

/// Map a tenant id onto a safe, collision-free file stem: anything
/// outside `[A-Za-z0-9_-]` becomes `_`, so a hostile tenant string
/// cannot escape the quarantine directory, and any name that needed
/// replacement carries a CRC32 suffix of its raw bytes so two distinct
/// tenants (`a.b`, `a:b`) can never collapse onto one stem — the WAL
/// and checkpoint store key files by stem, so a shared stem would
/// cross-corrupt their journals and snapshots. Already-safe names keep
/// their exact stem (and their existing on-disk files); sanitizing is
/// idempotent either way, since a hashed stem is itself all safe
/// characters.
pub(crate) fn sanitize_tenant(tenant: &str) -> String {
    let mut lossy = tenant.is_empty();
    let stem: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                lossy = true;
                '_'
            }
        })
        .collect();
    if !lossy {
        return stem;
    }
    let stem = if stem.is_empty() {
        "_".to_string()
    } else {
        stem
    };
    format!("{stem}-{:08x}", crate::sink::crc32(tenant.as_bytes()))
}

/// Where refused frames go: per-tenant checksummed JSONL spools plus a
/// bounded in-memory ring.
#[derive(Debug)]
pub(crate) struct QuarantineSink {
    /// `<spool_dir>/quarantine`; `None` keeps records ring-only.
    dir: Option<PathBuf>,
    /// Lazily opened per-tenant append handles with their current byte
    /// counts, keyed by sanitized stem.
    files: Mutex<HashMap<String, (File, u64)>>,
    ring: Mutex<VecDeque<QuarantineRecord>>,
    ring_capacity: usize,
    /// Rotate a tenant's spool when it exceeds this many bytes (current
    /// file renamed to `.jsonl.1`, evicting the previous segment); `0`
    /// disables rotation.
    max_bytes: u64,
    metrics: Arc<Metrics>,
    /// Latched on the first write error; the sink then serves ring-only.
    degraded: AtomicBool,
}

impl QuarantineSink {
    /// Open the sink. When `spool_dir` is given, `<spool_dir>/quarantine`
    /// is created; per-tenant files open lazily on first use.
    ///
    /// # Errors
    ///
    /// Fails when the quarantine directory cannot be created.
    pub fn open(
        spool_dir: Option<&std::path::Path>,
        ring_capacity: usize,
        max_bytes: u64,
        metrics: Arc<Metrics>,
    ) -> io::Result<Self> {
        let dir = match spool_dir {
            None => None,
            Some(base) => {
                let dir = base.join("quarantine");
                fs::create_dir_all(&dir)?;
                Some(dir)
            }
        };
        Ok(QuarantineSink {
            dir,
            files: Mutex::new(HashMap::new()),
            ring: Mutex::new(VecDeque::new()),
            ring_capacity: ring_capacity.max(1),
            max_bytes,
            metrics,
            degraded: AtomicBool::new(false),
        })
    }

    /// Whether a write error has degraded the sink to ring-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Record one refused frame: bump the reason's
    /// `rapd_frames_quarantined_total` counter, push to the ring
    /// (evicting the oldest when full), and append the checksummed spool
    /// line. Infallible: a write failure degrades the sink to ring-only.
    pub fn record(&self, record: QuarantineRecord) {
        for (label, counter) in self.metrics.frames_quarantined.named() {
            if label == record.reason {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        obs::warn(
            "rapd.quarantine",
            "frame_quarantined",
            &[
                ("tenant", obs::Value::Str(record.tenant.clone())),
                ("reason", obs::Value::Str(record.reason.to_string())),
                ("detail", obs::Value::Str(record.detail.clone())),
            ],
        );
        let line = frame_spool_line(&record.to_json().render());
        let stem = sanitize_tenant(&record.tenant);
        {
            let mut ring = lock_recover(&self.ring);
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        let Some(dir) = &self.dir else { return };
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let result = (|| {
            let mut files = lock_recover(&self.files);
            let path = dir.join(format!("{stem}.jsonl"));
            let (file, bytes) = match files.entry(stem) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let file = OpenOptions::new().create(true).append(true).open(&path)?;
                    let len = file.metadata().map(|m| m.len()).unwrap_or(0);
                    e.insert((file, len))
                }
            };
            if obs::fail::should_error("quarantine-write-error") {
                return Err(io::Error::other("injected quarantine write error"));
            }
            writeln!(file, "{line}").and_then(|()| file.flush())?;
            *bytes += line.len() as u64 + 1;
            if self.max_bytes > 0 && *bytes > self.max_bytes {
                // rotate this tenant's segment: current → `.jsonl.1`
                // (evicting the previous one), fresh file for appends
                let old = path.with_extension("jsonl.1");
                match fs::remove_file(&old) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                fs::rename(&path, &old)?;
                *file = OpenOptions::new().create(true).append(true).open(&path)?;
                *bytes = 0;
                self.metrics
                    .spool_rotations
                    .quarantine
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.metrics
                .quarantine_write_errors
                .fetch_add(1, Ordering::Relaxed);
            if !self.degraded.swap(true, Ordering::Relaxed) {
                self.metrics.quarantine_degraded.store(1, Ordering::Relaxed);
                obs::warn(
                    "rapd.quarantine",
                    "quarantine_degraded",
                    &[
                        ("error", obs::Value::Str(e.to_string())),
                        ("dir", obs::Value::Str(dir.display().to_string())),
                    ],
                );
            }
        }
    }

    /// The most recent records, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<QuarantineRecord> {
        let ring = lock_recover(&self.ring);
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Records currently held in the ring.
    #[cfg(test)]
    pub fn ring_len(&self) -> usize {
        lock_recover(&self.ring).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{judge_line, LineVerdict};

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new(1))
    }

    fn record(tenant: &str, reason: &'static str, ts: Option<u64>) -> QuarantineRecord {
        QuarantineRecord {
            tenant: tenant.to_string(),
            frame_id: None,
            ts,
            reason,
            detail: format!("test {reason}"),
            rows: vec![(vec!["L1".to_string(), "I1".to_string()], f64::NAN)],
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapd-quar-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_only_sink_counts_and_bounds() {
        let m = metrics();
        let sink = QuarantineSink::open(None, 3, 0, Arc::clone(&m)).unwrap();
        for i in 0..5 {
            sink.record(record("t", "non_finite", Some(i)));
        }
        sink.record(record("t", "late", None));
        assert_eq!(sink.ring_len(), 3);
        let recent = sink.recent(2);
        assert_eq!(recent[0].reason, "late");
        assert_eq!(recent[1].ts, Some(4));
        assert_eq!(
            m.frames_quarantined.non_finite.load(Ordering::Relaxed),
            5,
            "record() itself owns the counters"
        );
        assert_eq!(m.frames_quarantined.late.load(Ordering::Relaxed), 1);
        assert!(!sink.is_degraded(), "no spool, nothing to degrade");
    }

    #[test]
    fn spooled_records_are_checksummed_per_tenant() {
        let dir = scratch("spool");
        let sink = QuarantineSink::open(Some(&dir), 8, 0, metrics()).unwrap();
        sink.record(record("edge-1", "non_finite", Some(7)));
        sink.record(record("edge-1", "schema_drift", None));
        sink.record(record("other", "replay", Some(9)));
        let a = fs::read_to_string(dir.join("quarantine/edge-1.jsonl")).unwrap();
        assert_eq!(a.lines().count(), 2);
        for line in a.lines() {
            assert!(matches!(judge_line(line), LineVerdict::Verified));
        }
        // NaN row values render as JSON null, like the wire encoding
        let (json, _) = a.lines().next().unwrap().rsplit_once('\t').unwrap();
        let doc = crate::json::parse(json).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("non_finite"));
        assert_eq!(doc.get("ts").unwrap().as_u64(), Some(7));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1], Json::Null);
        let b = fs::read_to_string(dir.join("quarantine/other.jsonl")).unwrap();
        assert_eq!(b.lines().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_tenant_names_cannot_escape_the_directory() {
        assert_eq!(
            sanitize_tenant("../../etc/passwd"),
            "______etc_passwd-df406b03"
        );
        assert_eq!(sanitize_tenant("ok-Tenant_9"), "ok-Tenant_9");
        assert_eq!(sanitize_tenant(""), "_-00000000");
        let dir = scratch("hostile");
        let sink = QuarantineSink::open(Some(&dir), 8, 0, metrics()).unwrap();
        sink.record(record("../escape", "late", None));
        assert!(dir.join("quarantine/___escape-ed1965a3.jsonl").is_file());
        assert!(!dir.parent().unwrap().join("escape.jsonl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_lossy_tenant_names_get_distinct_stems() {
        // Without the hash suffix both would collapse to "a_b" — one WAL
        // segment and one checkpoint path shared by two tenants.
        let a = sanitize_tenant("a.b");
        let b = sanitize_tenant("a:b");
        assert_ne!(a, b);
        assert!(a.starts_with("a_b-") && b.starts_with("a_b-"));
        // a lossy stem never shadows the identical already-safe name
        assert_ne!(a, sanitize_tenant("a_b"));
        // idempotent: feeding a stem back through is the identity
        for stem in [a, b, sanitize_tenant(""), sanitize_tenant("safe")] {
            assert_eq!(sanitize_tenant(&stem), stem);
        }
    }

    #[test]
    fn oversized_tenant_spool_rotates_per_tenant() {
        let dir = scratch("rotate");
        let m = metrics();
        // a cap small enough that every record overflows it
        let sink = QuarantineSink::open(Some(&dir), 8, 64, Arc::clone(&m)).unwrap();
        sink.record(record("noisy", "non_finite", Some(1)));
        let rotated = dir.join("quarantine/noisy.jsonl.1");
        assert!(rotated.is_file(), "first overflow rotates");
        assert_eq!(m.spool_rotations.quarantine.load(Ordering::Relaxed), 1);
        sink.record(record("noisy", "non_finite", Some(2)));
        // ts 1's segment is evicted; ts 2 now holds the .1 slot
        let kept = fs::read_to_string(&rotated).unwrap();
        assert!(kept.contains("\"ts\":2") && !kept.contains("\"ts\":1"));
        assert_eq!(m.spool_rotations.quarantine.load(Ordering::Relaxed), 2);
        // rotation is per tenant: noisy's churn never moves quiet's spool
        sink.record(record("quiet", "late", None));
        let quiet = fs::read_to_string(dir.join("quarantine/quiet.jsonl.1"))
            .or_else(|_| fs::read_to_string(dir.join("quarantine/quiet.jsonl")))
            .unwrap();
        assert!(quiet.contains("\"late\""));
        assert!(!kept.contains("quiet"), "segments never mix tenants");
        assert!(!sink.is_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_failure_degrades_to_ring_only() {
        let dir = scratch("degraded");
        let m = metrics();
        let sink = QuarantineSink::open(Some(&dir), 8, 0, Arc::clone(&m)).unwrap();
        // occupy the tenant's spool path with a *directory* so the lazy
        // open fails — a stand-in for a full or vanished volume
        fs::create_dir_all(dir.join("quarantine/t.jsonl")).unwrap();
        sink.record(record("t", "non_finite", None));
        assert!(sink.is_degraded());
        assert_eq!(m.quarantine_write_errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.quarantine_degraded.load(Ordering::Relaxed), 1);
        // later records still land in the ring and keep counting
        sink.record(record("t", "late", None));
        assert_eq!(sink.ring_len(), 2);
        assert_eq!(m.frames_quarantined.late.load(Ordering::Relaxed), 1);
        assert_eq!(
            m.quarantine_write_errors.load(Ordering::Relaxed),
            1,
            "degraded sink stops touching the disk"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
