//! The rapd daemon: NDJSON ingest/control listener, shard pool, incident
//! sink, and metrics HTTP listener, wired together.
//!
//! Thread model (see DESIGN.md for the full diagram):
//!
//! ```text
//! clients ──TCP──▶ accept loop ──▶ reader thread per connection
//!                                     │  parse NDJSON, resolve schema
//!                                     ▼
//!                        bounded shard queues (drop-oldest)
//!                                     │
//!                                     ▼
//!                  shard workers (per-tenant pipelines) ──▶ incident sink
//!                                     │                       (spool+ring)
//!                                     ▼
//!                         atomic metrics ◀── /metrics HTTP listener
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use mdkpi::Schema;

use crate::admission::{AdmissionControl, Verdict};
use crate::blackbox::BlackboxWriter;
use crate::checkpoint::CheckpointStore;
use crate::config::{ServiceConfig, ServiceConfigError};
use crate::http::MetricsServer;
use crate::json::Json;
use crate::metrics::{build_version, Metrics};
use crate::proto::{build_frame, parse_request, ProtoError, Request};
use crate::quarantine::{QuarantineRecord, QuarantineSink};
use crate::shard::{LocalizerFactory, ShardPool, TenantDebug};
use crate::sink::IncidentSink;
use crate::sync::{lock_recover, wait_recover};
use crate::wal::{FrameWal, WalEntry};

/// How long a `flush` request waits for the shards before giving up.
const FLUSH_TIMEOUT: Duration = Duration::from_secs(60);

/// Reader-thread poll interval for the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Why the daemon failed to boot.
#[derive(Debug)]
#[non_exhaustive]
pub enum StartError {
    /// The configuration is invalid.
    Config(ServiceConfigError),
    /// A listener or the spool could not be set up.
    Io(io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "invalid service config: {e}"),
            StartError::Io(e) => write!(f, "daemon startup failed: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

struct Shared {
    config: ServiceConfig,
    metrics: Arc<Metrics>,
    sink: Arc<IncidentSink>,
    quarantine: Arc<QuarantineSink>,
    blackbox: Arc<BlackboxWriter>,
    admission: AdmissionControl,
    pool: ShardPool,
    schemas: Mutex<HashMap<String, Schema>>,
    /// The frame write-ahead log: admitted frames are journaled here
    /// before they reach the shard queues, and replayed from it at boot.
    /// `None` when the WAL is disabled or there is no spool directory.
    wal: Option<Arc<FrameWal>>,
    /// The per-tenant checkpoint store; `None` without a spool directory.
    checkpoints: Option<Arc<CheckpointStore>>,
    /// Signalled by the `shutdown` control verb once the drain completed;
    /// [`ServerHandle::wait_for_drain`] blocks on it.
    drain: DrainGate,
    /// Boot instant, for the uptime reported by `stats` and `debug`.
    started: Instant,
    shutdown: AtomicBool,
}

/// A one-shot latch the serve loop parks on until a `shutdown` control
/// verb drains the daemon.
#[derive(Default)]
struct DrainGate {
    drained: Mutex<bool>,
    cv: Condvar,
}

impl DrainGate {
    fn signal(&self) {
        *lock_recover(&self.drained) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut drained = lock_recover(&self.drained);
        while !*drained {
            drained = wait_recover(&self.cv, drained);
        }
    }
}

/// A running rapd daemon. Dropping (or calling [`ServerHandle::shutdown`])
/// stops the listeners, drains the shards, and joins every thread.
pub struct ServerHandle {
    ingest_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics_server: Option<MetricsServer>,
}

impl ServerHandle {
    /// The bound NDJSON ingest/control address (useful with port 0).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound Prometheus `/metrics` address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_server
            .as_ref()
            .expect("metrics server runs until shutdown")
            .addr()
    }

    /// The daemon's counters (shared with the workers).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The incident sink (ring + spool).
    pub fn sink(&self) -> Arc<IncidentSink> {
        Arc::clone(&self.shared.sink)
    }

    /// The most recent quarantined frames, newest first, at most `limit`.
    pub fn quarantined(&self, limit: usize) -> Vec<QuarantineRecord> {
        self.shared.quarantine.recent(limit)
    }

    /// Stop listeners, drain shard queues, and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until a `shutdown` control verb has flushed and checkpointed
    /// the daemon — the serve loop's park point. A SIGTERM wrapper sends
    /// the verb (e.g. `rapminer shutdown`); the daemon itself installs no
    /// signal handlers.
    pub fn wait_for_drain(&self) {
        self.shared.drain.wait();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock accept() with one throwaway connection
        let _ = TcpStream::connect(self.ingest_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_recover(&self.readers));
        for reader in readers {
            let _ = reader.join();
        }
        // Graceful exits checkpoint after the last frame: the jobs queue
        // behind anything still in flight, so the snapshots cover it.
        if self.shared.checkpoints.is_some() {
            self.shared.pool.checkpoint_all(FLUSH_TIMEOUT);
        }
        self.shared.pool.shutdown();
        if let Some(metrics_server) = self.metrics_server.take() {
            metrics_server.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

/// Boot the daemon: validate the config, open the spool, start the shard
/// workers and both listeners.
///
/// # Errors
///
/// [`StartError::Config`] for an invalid [`ServiceConfig`],
/// [`StartError::Io`] when a listener or the spool cannot be created.
pub fn start(config: ServiceConfig, factory: LocalizerFactory) -> Result<ServerHandle, StartError> {
    config.validate().map_err(StartError::Config)?;
    if config.log_json && !obs::sink_installed() {
        // an embedding harness may have installed its own sink first; never
        // replace it
        obs::install_sink(Box::new(io::stderr()));
    }
    let metrics = Arc::new(Metrics::new(config.shards));
    let sink = Arc::new(IncidentSink::open(
        config.spool_dir.as_deref(),
        config.ring_capacity,
        config.spool_max_bytes,
        Arc::clone(&metrics),
    )?);
    let quarantine = Arc::new(QuarantineSink::open(
        config.spool_dir.as_deref(),
        config.ring_capacity,
        config.spool_max_bytes,
        Arc::clone(&metrics),
    )?);
    let blackbox = Arc::new(BlackboxWriter::open(
        config.spool_dir.as_deref(),
        Arc::clone(&metrics),
    )?);
    let wal = match &config.spool_dir {
        Some(dir) if config.wal => Some(Arc::new(FrameWal::open(
            dir,
            Arc::clone(&metrics),
            config.wal_fsync,
        )?)),
        _ => None,
    };
    let checkpoints = match &config.spool_dir {
        Some(dir) => Some(Arc::new(CheckpointStore::open(dir, Arc::clone(&metrics))?)),
        None => None,
    };
    let pool = ShardPool::start(
        &config,
        Arc::clone(&metrics),
        Arc::clone(&sink),
        Arc::clone(&quarantine),
        Arc::clone(&blackbox),
        factory,
        wal.clone(),
        checkpoints.clone(),
    );
    let schemas = recover_state(&metrics, &pool, wal.as_deref(), checkpoints.as_deref());
    let metrics_server = MetricsServer::start(&config.metrics_listen, Arc::clone(&metrics))?;

    let listener = TcpListener::bind(&config.listen)?;
    let ingest_addr = listener.local_addr()?;
    let admission = AdmissionControl::new(config.schema_drift_limit);
    let shared = Arc::new(Shared {
        config,
        metrics,
        sink,
        quarantine,
        blackbox,
        admission,
        pool,
        schemas: Mutex::new(schemas),
        wal,
        checkpoints,
        drain: DrainGate::default(),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
    });
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_readers = Arc::clone(&readers);
    let accept = std::thread::Builder::new()
        .name("rapd-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let reader = std::thread::Builder::new()
                    .name("rapd-reader".to_string())
                    .spawn(move || handle_connection(stream, &conn_shared));
                if let Ok(handle) = reader {
                    lock_recover(&accept_readers).push(handle);
                }
            }
        })?;

    Ok(ServerHandle {
        ingest_addr,
        shared,
        accept: Some(accept),
        readers,
        metrics_server: Some(metrics_server),
    })
}

/// Boot-time crash recovery: reload journaled schemas, advance the frame
/// sequence past everything any prior run minted, and replay the WAL
/// suffix past each tenant's checkpoint acknowledgment into the shard
/// pool. Replayed frames re-adopt their original correlation tokens, so
/// the incident sink's frame-token dedup keeps incidents exactly-once
/// while ingestion stays at-least-once. Returns the recovered schema map.
fn recover_state(
    metrics: &Arc<Metrics>,
    pool: &ShardPool,
    wal: Option<&FrameWal>,
    checkpoints: Option<&CheckpointStore>,
) -> HashMap<String, Schema> {
    let mut schemas: HashMap<String, Schema> = HashMap::new();
    let mut acks: HashMap<String, u64> = HashMap::new();
    let mut max_seq = 0u64;
    if let Some(store) = checkpoints {
        for checkpoint in store.load_all() {
            max_seq = max_seq.max(checkpoint.frame_seq);
            acks.insert(checkpoint.tenant, checkpoint.wal_ack);
        }
    }
    let Some(wal) = wal else {
        obs::FrameId::advance_past(max_seq);
        return schemas;
    };
    for (tenant, parts) in wal.recover_schemas() {
        match Schema::from_parts(parts) {
            Ok(schema) => {
                schemas.insert(tenant, schema);
            }
            Err(e) => obs::warn(
                "rapd.server",
                "schema_journal_invalid",
                &[
                    ("tenant", obs::Value::Str(tenant)),
                    ("error", obs::Value::Str(e.to_string())),
                ],
            ),
        }
    }
    let entries = wal.recover();
    for entry in &entries {
        max_seq = max_seq.max(entry.seq);
    }
    // New tokens must never collide with replayed (or checkpointed) ones.
    obs::FrameId::advance_past(max_seq);
    let mut replayed = 0u64;
    for entry in entries {
        if entry.seq <= acks.get(&entry.tenant).copied().unwrap_or(0) {
            continue;
        }
        let Some(schema) = schemas.get(&entry.tenant) else {
            obs::warn(
                "rapd.server",
                "replay_missing_schema",
                &[
                    ("tenant", obs::Value::Str(entry.tenant.clone())),
                    ("frame", obs::Value::Str(entry.frame.clone())),
                ],
            );
            continue;
        };
        // journaled rows were already admitted once; a frame the current
        // schema can no longer resolve is skipped, never fatal
        let Ok(frame) = build_frame(schema, &entry.rows) else {
            obs::warn(
                "rapd.server",
                "replay_frame_unresolvable",
                &[
                    ("tenant", obs::Value::Str(entry.tenant.clone())),
                    ("frame", obs::Value::Str(entry.frame.clone())),
                ],
            );
            continue;
        };
        metrics.frames_ingested.fetch_add(1, Ordering::Relaxed);
        metrics.wal_replayed_frames.fetch_add(1, Ordering::Relaxed);
        let id = obs::FrameId::adopt(&entry.frame, entry.seq);
        pool.ingest(id, &entry.tenant, frame, entry.ts);
        replayed += 1;
    }
    if replayed > 0 {
        obs::info(
            "rapd.server",
            "wal_replayed",
            &[("frames", obs::Value::U64(replayed))],
        );
    }
    schemas
}

enum LineRead {
    /// Connection closed (any final unterminated partial line is in `line`).
    Eof,
    /// One complete line is in `line`.
    Line,
    /// The line exceeded `max` bytes; the rest of it was discarded.
    Oversized(usize),
}

/// Read one `\n`-terminated line with a hard size cap, tolerating read
/// timeouts (the caller polls the shutdown flag between attempts).
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    max: usize,
) -> io::Result<LineRead> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(LineRead::Eof);
        }
        if let Some(pos) = buf.iter().position(|b| *b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if line.len() > max {
                return Ok(LineRead::Oversized(line.len()));
            }
            return Ok(LineRead::Line);
        }
        let n = buf.len();
        line.extend_from_slice(buf);
        reader.consume(n);
        if line.len() > max {
            let total = discard_to_newline(reader, line.len())?;
            return Ok(LineRead::Oversized(total));
        }
    }
}

/// Discard bytes until (and including) the next newline; returns the total
/// size of the oversized line.
fn discard_to_newline(reader: &mut BufReader<TcpStream>, mut seen: usize) -> io::Result<usize> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(seen);
        }
        if let Some(pos) = buf.iter().position(|b| *b == b'\n') {
            seen += pos;
            reader.consume(pos + 1);
            return Ok(seen);
        }
        seen += buf.len();
        let n = buf.len();
        reader.consume(n);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let max = shared.config.max_frame_bytes;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_line_limited(&mut reader, &mut line, max) {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // poll tick: partial data stays in `line`, keep reading
                continue;
            }
            Err(_) => return,
            Ok(LineRead::Eof) => {
                // process a final unterminated line, then close
                if !line.is_empty() {
                    let _ = respond(&mut writer, &line, shared);
                }
                return;
            }
            Ok(LineRead::Oversized(len)) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let reply = ProtoError::Oversized { len, max }.to_reply();
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                line.clear();
            }
            Ok(LineRead::Line) => {
                if respond(&mut writer, &line, shared).is_err() {
                    return;
                }
                line.clear();
            }
        }
    }
}

/// Dispatch one request line and write the one-line reply.
fn respond(writer: &mut TcpStream, raw: &[u8], shared: &Shared) -> io::Result<()> {
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.is_empty() {
        return Ok(());
    }
    let reply = match dispatch(text, shared) {
        Ok(reply) => reply,
        Err(e) => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            obs::warn(
                "rapd.server",
                "protocol_error",
                &[("reason", obs::Value::Str(e.to_string()))],
            );
            e.to_reply()
        }
    };
    writeln!(writer, "{reply}")
}

fn dispatch(line: &str, shared: &Shared) -> Result<String, ProtoError> {
    match parse_request(line, shared.config.max_frame_bytes)? {
        Request::Schema { tenant, attributes } => {
            let schema = Schema::from_parts(attributes.clone())
                .map_err(|e| ProtoError::BadSchema(e.to_string()))?;
            let mut schemas = lock_recover(&shared.schemas);
            match schemas.get(&tenant) {
                Some(existing) if *existing != schema => {
                    return Err(ProtoError::SchemaConflict { tenant });
                }
                _ => {
                    // journal before acknowledging: replay after a crash
                    // must be able to re-resolve this tenant's frames
                    if let Some(wal) = &shared.wal {
                        wal.append_schema(&tenant, &attributes);
                    }
                    schemas.insert(tenant.clone(), schema);
                }
            }
            Ok(ok_reply(vec![("tenant".to_string(), Json::str(tenant))]))
        }
        Request::Observe { tenant, rows, ts } => {
            let schema = {
                let schemas = lock_recover(&shared.schemas);
                schemas
                    .get(&tenant)
                    .cloned()
                    .ok_or_else(|| ProtoError::NoSchema {
                        tenant: tenant.clone(),
                    })?
            };
            // The correlation id is minted before admission so a rejected
            // frame's quarantine record carries the same token the client
            // sees in its reply; the scope stamps admission events too.
            let id = obs::FrameId::mint(&tenant);
            let _frame = obs::frame::frame_scope(&id);
            // Admission judges the frame *after* protocol-level checks
            // (arity is an error and does not count as ingested) but
            // *before* the ingested counter, so `processed + dropped +
            // shed + quarantined == ingested` holds at every fence.
            let verdict = shared.admission.admit(&tenant, &schema, &rows)?;
            shared
                .metrics
                .frames_ingested
                .fetch_add(1, Ordering::Relaxed);
            match verdict {
                Verdict::Quarantine { reason, detail } => {
                    shared.quarantine.record(QuarantineRecord {
                        tenant,
                        frame_id: Some(id.as_str().to_string()),
                        ts,
                        reason,
                        detail: detail.clone(),
                        rows,
                    });
                    Ok(ok_reply(vec![
                        ("queued".to_string(), Json::Bool(false)),
                        ("frame".to_string(), Json::str(id.as_str())),
                        ("quarantined".to_string(), Json::Bool(true)),
                        ("reason".to_string(), Json::str(reason)),
                        ("detail".to_string(), Json::str(detail)),
                    ]))
                }
                Verdict::Admit(admitted) => {
                    let m = &shared.metrics.leaves_repaired;
                    m.duplicate
                        .fetch_add(admitted.repaired_duplicate, Ordering::Relaxed);
                    m.negative
                        .fetch_add(admitted.repaired_negative, Ordering::Relaxed);
                    m.schema_drift
                        .fetch_add(admitted.repaired_drift, Ordering::Relaxed);
                    // admission already resolved every element, so this
                    // cannot fail on data; it stays fallible for safety
                    let frame = build_frame(&schema, &admitted.rows)?;
                    let repaired = admitted.repaired();
                    let token = id.as_str().to_string();
                    // journal before queueing: once the reply acknowledges
                    // the frame, a kill -9 must not be able to lose it
                    if let Some(wal) = &shared.wal {
                        wal.append(&WalEntry {
                            tenant: tenant.clone(),
                            frame: token.clone(),
                            seq: id.seq(),
                            ts,
                            rows: admitted.rows.clone(),
                        });
                    }
                    shared.pool.ingest(id, &tenant, frame, ts);
                    Ok(ok_reply(vec![
                        ("queued".to_string(), Json::Bool(true)),
                        ("frame".to_string(), Json::str(token)),
                        ("repaired".to_string(), Json::Bool(repaired)),
                    ]))
                }
            }
        }
        Request::Flush => {
            let flushed = shared.pool.flush(FLUSH_TIMEOUT);
            Ok(ok_reply(vec![("flushed".to_string(), Json::Bool(flushed))]))
        }
        Request::Stats => Ok(stats_reply(shared)),
        Request::Incidents { limit } => {
            let incidents = shared
                .sink
                .recent(limit)
                .iter()
                .map(|r| r.to_json())
                .collect();
            Ok(Json::Obj(vec![
                ("type".to_string(), Json::str("incidents")),
                ("incidents".to_string(), Json::Arr(incidents)),
            ])
            .render())
        }
        Request::Trace { limit } => {
            let spans = obs::recent_spans(limit).iter().map(span_to_json).collect();
            Ok(Json::Obj(vec![
                ("type".to_string(), Json::str("trace")),
                ("spans".to_string(), Json::Arr(spans)),
            ])
            .render())
        }
        Request::Quarantine { limit } => {
            let records = shared
                .quarantine
                .recent(limit)
                .iter()
                .map(QuarantineRecord::to_json)
                .collect();
            Ok(Json::Obj(vec![
                ("type".to_string(), Json::str("quarantine")),
                ("records".to_string(), Json::Arr(records)),
            ])
            .render())
        }
        Request::Health => Ok(health_reply(shared)),
        Request::Debug { tenant } => Ok(debug_reply(shared, tenant.as_deref())),
        Request::Shutdown => {
            obs::info("rapd.server", "drain_requested", &[]);
            // Drain order matters: the flush barrier empties the reorder
            // buffers through the pipelines, then the checkpoint snapshots
            // the post-drain state (fsynced by the store), so a restart
            // resumes exactly where this run stopped.
            let flushed = shared.pool.flush(FLUSH_TIMEOUT);
            let checkpointed = shared.pool.checkpoint_all(FLUSH_TIMEOUT);
            shared.drain.signal();
            Ok(ok_reply(vec![
                ("draining".to_string(), Json::Bool(true)),
                ("flushed".to_string(), Json::Bool(flushed)),
                ("checkpointed".to_string(), Json::Bool(checkpointed)),
            ]))
        }
    }
}

/// Checkpoint staleness in seconds, from the newest snapshot write across
/// all tenants; `None` before the first checkpoint.
fn checkpoint_age_seconds(metrics: &Metrics) -> Option<f64> {
    let last = metrics.checkpoint_last_unix_ms.load(Ordering::Relaxed);
    if last == 0 {
        return None;
    }
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    Some(now.saturating_sub(last) as f64 / 1000.0)
}

/// Live internals for the `debug` control verb: daemon-wide state plus a
/// per-tenant breakdown, optionally filtered to one tenant.
fn debug_reply(shared: &Shared, tenant: Option<&str>) -> String {
    let m = &shared.metrics;
    let depths: Vec<Json> = shared
        .pool
        .queue_depths()
        .into_iter()
        .map(|d| Json::Num(d as f64))
        .collect();
    let tenants: Vec<Json> = shared
        .pool
        .tenant_debug()
        .into_iter()
        .filter(|(name, _)| tenant.is_none_or(|t| t == name))
        .map(|(name, d)| tenant_debug_json(&name, &d))
        .collect();
    let recorders: Vec<Json> = obs::recorder::stats()
        .into_iter()
        .map(|(name, lines, recorded, dropped)| {
            Json::Obj(vec![
                ("name".to_string(), Json::str(name)),
                ("lines".to_string(), Json::Num(lines as f64)),
                ("recorded".to_string(), Json::Num(recorded as f64)),
                ("dropped".to_string(), Json::Num(dropped as f64)),
            ])
        })
        .collect();
    let memo = rapminer::memo_stats();
    let pool = par::pool_stats();
    Json::Obj(vec![
        ("type".to_string(), Json::str("debug")),
        (
            "uptime_seconds".to_string(),
            Json::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("version".to_string(), Json::str(build_version())),
        ("queue_depths".to_string(), Json::Arr(depths)),
        ("tenants".to_string(), Json::Arr(tenants)),
        ("flight_recorders".to_string(), Json::Arr(recorders)),
        (
            "memo".to_string(),
            Json::Obj(vec![
                ("served".to_string(), Json::Num(memo.served as f64)),
                ("scratch".to_string(), Json::Num(memo.scratch as f64)),
                ("hit_rate".to_string(), Json::Num(memo.hit_rate())),
            ]),
        ),
        (
            "pool".to_string(),
            Json::Obj(vec![
                ("maps".to_string(), Json::Num(pool.maps as f64)),
                (
                    "parallel_maps".to_string(),
                    Json::Num(pool.parallel_maps as f64),
                ),
                ("items".to_string(), Json::Num(pool.items as f64)),
                ("steals".to_string(), Json::Num(pool.steals as f64)),
                (
                    "parallel_fraction".to_string(),
                    Json::Num(pool.parallel_fraction()),
                ),
            ]),
        ),
        (
            "e2e".to_string(),
            Json::Obj(vec![
                ("count".to_string(), Json::Num(m.e2e.count() as f64)),
                ("sum_seconds".to_string(), Json::Num(m.e2e.sum_seconds())),
            ]),
        ),
        (
            "blackbox_dumps".to_string(),
            Json::Obj(
                m.blackbox_dumps
                    .named()
                    .into_iter()
                    .map(|(trigger, c)| {
                        (
                            trigger.to_string(),
                            Json::Num(c.load(Ordering::Relaxed) as f64),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "blackbox_dir".to_string(),
            match shared.blackbox.dir() {
                None => Json::Null,
                Some(p) => Json::str(p.display().to_string()),
            },
        ),
        (
            "durability".to_string(),
            Json::Obj(vec![
                ("wal_enabled".to_string(), Json::Bool(shared.wal.is_some())),
                (
                    "wal_degraded".to_string(),
                    Json::Bool(shared.wal.as_ref().is_some_and(|w| w.is_degraded())),
                ),
                (
                    "wal_depth".to_string(),
                    Json::Num(m.wal_depth.load(Ordering::Relaxed) as f64),
                ),
                (
                    "replayed_frames".to_string(),
                    Json::Num(m.wal_replayed_frames.load(Ordering::Relaxed) as f64),
                ),
                (
                    "checkpoints_enabled".to_string(),
                    Json::Bool(shared.checkpoints.is_some()),
                ),
                (
                    "checkpoint_writes".to_string(),
                    Json::Num(m.checkpoint_writes.load(Ordering::Relaxed) as f64),
                ),
                (
                    "checkpoint_restores".to_string(),
                    Json::Num(m.checkpoint_restores.load(Ordering::Relaxed) as f64),
                ),
                (
                    "checkpoint_age_seconds".to_string(),
                    checkpoint_age_seconds(m).map_or(Json::Null, Json::Num),
                ),
                (
                    "detector_rewarms".to_string(),
                    Json::Num(m.detector_rewarms.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
    ])
    .render()
}

/// One tenant's live internals in the `debug` reply.
fn tenant_debug_json(name: &str, d: &TenantDebug) -> Json {
    Json::Obj(vec![
        ("tenant".to_string(), Json::str(name)),
        ("shard".to_string(), Json::Num(d.shard as f64)),
        ("engine".to_string(), Json::str(d.engine)),
        (
            "detector_phase".to_string(),
            match d.detector_phase {
                None => Json::Null,
                Some(p) => Json::str(p),
            },
        ),
        ("breaker".to_string(), Json::str(d.breaker)),
        (
            "reorder".to_string(),
            Json::Obj(vec![
                ("buffered".to_string(), Json::Num(d.reorder_buffered as f64)),
                (
                    "last_emitted".to_string(),
                    match d.reorder_last_emitted {
                        None => Json::Null,
                        Some(t) => Json::Num(t as f64),
                    },
                ),
                ("max_seen".to_string(), Json::Num(d.reorder_max_seen as f64)),
                ("lag".to_string(), Json::Num(d.reorder_lag as f64)),
            ]),
        ),
        ("last_frame".to_string(), Json::str(d.last_frame.as_str())),
        (
            "last_checkpoint_ts".to_string(),
            match d.last_checkpoint_unix_ms {
                None => Json::Null,
                Some(ms) => Json::Num(ms as f64),
            },
        ),
    ])
}

/// Fault-tolerance health summary: `"degraded"` whenever the incident or
/// quarantine spool fell back to ring-only mode or any tenant breaker is
/// currently open.
fn health_reply(shared: &Shared) -> String {
    let m = &shared.metrics;
    let spool_degraded = shared.sink.is_degraded();
    let quarantine_degraded = shared.quarantine.is_degraded();
    let wal_degraded = shared.wal.as_ref().is_some_and(|w| w.is_degraded());
    let open_breakers = m.total_breaker_open();
    let status = if spool_degraded || quarantine_degraded || wal_degraded || open_breakers > 0 {
        "degraded"
    } else {
        "ok"
    };
    Json::Obj(vec![
        ("type".to_string(), Json::str("health")),
        ("status".to_string(), Json::str(status)),
        ("spool_degraded".to_string(), Json::Bool(spool_degraded)),
        (
            "quarantine_degraded".to_string(),
            Json::Bool(quarantine_degraded),
        ),
        ("wal_degraded".to_string(), Json::Bool(wal_degraded)),
        ("open_breakers".to_string(), Json::Num(open_breakers as f64)),
        (
            "worker_restarts".to_string(),
            Json::Num(m.worker_restarts.load(Ordering::Relaxed) as f64),
        ),
        (
            "pipeline_restarts".to_string(),
            Json::Num(m.pipeline_restarts_panic.load(Ordering::Relaxed) as f64),
        ),
        (
            "deadline_exceeded".to_string(),
            Json::Num(m.deadline_exceeded.load(Ordering::Relaxed) as f64),
        ),
    ])
    .render()
}

/// One completed span in the `trace` reply.
fn span_to_json(span: &obs::SpanRecord) -> Json {
    let fields = span
        .fields
        .iter()
        .map(|(k, v)| {
            let value = match v {
                obs::Value::Bool(b) => Json::Bool(*b),
                obs::Value::U64(n) => Json::Num(*n as f64),
                obs::Value::F64(x) if x.is_finite() => Json::Num(*x),
                obs::Value::F64(_) => Json::Null,
                obs::Value::Str(s) => Json::str(s.as_str()),
            };
            ((*k).to_string(), value)
        })
        .collect();
    Json::Obj(vec![
        ("id".to_string(), Json::Num(span.id as f64)),
        (
            "parent".to_string(),
            match span.parent {
                None => Json::Null,
                Some(p) => Json::Num(p as f64),
            },
        ),
        ("trace".to_string(), Json::Num(span.trace as f64)),
        ("name".to_string(), Json::str(span.name)),
        (
            "frame".to_string(),
            match &span.frame {
                None => Json::Null,
                Some(token) => Json::str(token.as_ref()),
            },
        ),
        (
            "start_micros".to_string(),
            Json::Num(span.start_micros as f64),
        ),
        (
            "elapsed_micros".to_string(),
            Json::Num(span.elapsed_micros as f64),
        ),
        ("fields".to_string(), Json::Obj(fields)),
    ])
}

fn ok_reply(mut extra: Vec<(String, Json)>) -> String {
    let mut pairs = vec![("type".to_string(), Json::str("ok"))];
    pairs.append(&mut extra);
    Json::Obj(pairs).render()
}

fn stats_reply(shared: &Shared) -> String {
    let m = &shared.metrics;
    let shards: Vec<Json> = (0..m.num_shards())
        .map(|i| {
            let s = m.shard(i);
            Json::Obj(vec![
                (
                    "dropped".to_string(),
                    Json::Num(s.dropped.load(Ordering::Relaxed) as f64),
                ),
                (
                    "processed".to_string(),
                    Json::Num(s.processed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "depth".to_string(),
                    Json::Num(s.depth.load(Ordering::Relaxed) as f64),
                ),
                (
                    "shed".to_string(),
                    Json::Num(s.shed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "breaker_open".to_string(),
                    Json::Num(s.breaker_open.load(Ordering::Relaxed) as f64),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("type".to_string(), Json::str("stats")),
        (
            "uptime_seconds".to_string(),
            Json::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("version".to_string(), Json::str(build_version())),
        (
            "frames_ingested".to_string(),
            Json::Num(m.frames_ingested.load(Ordering::Relaxed) as f64),
        ),
        (
            "frames_processed".to_string(),
            Json::Num(m.total_processed() as f64),
        ),
        (
            "frames_dropped".to_string(),
            Json::Num(m.total_dropped() as f64),
        ),
        ("frames_shed".to_string(), Json::Num(m.total_shed() as f64)),
        (
            "frames_quarantined".to_string(),
            Json::Num(m.total_quarantined() as f64),
        ),
        (
            "leaves_repaired".to_string(),
            Json::Num(m.leaves_repaired.total() as f64),
        ),
        (
            "deadline_exceeded".to_string(),
            Json::Num(m.deadline_exceeded.load(Ordering::Relaxed) as f64),
        ),
        (
            "alarms".to_string(),
            Json::Num(m.alarms.load(Ordering::Relaxed) as f64),
        ),
        (
            "detections".to_string(),
            Json::Obj(
                m.detections
                    .named()
                    .into_iter()
                    .map(|(severity, c)| {
                        (
                            severity.to_string(),
                            Json::Num(c.load(Ordering::Relaxed) as f64),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "protocol_errors".to_string(),
            Json::Num(m.protocol_errors.load(Ordering::Relaxed) as f64),
        ),
        (
            "incidents_in_ring".to_string(),
            Json::Num(shared.sink.ring_len() as f64),
        ),
        (
            "wal_depth".to_string(),
            Json::Num(m.wal_depth.load(Ordering::Relaxed) as f64),
        ),
        (
            "replayed_frames".to_string(),
            Json::Num(m.wal_replayed_frames.load(Ordering::Relaxed) as f64),
        ),
        (
            "checkpoint_age_seconds".to_string(),
            checkpoint_age_seconds(m).map_or(Json::Null, Json::Num),
        ),
        ("shards".to_string(), Json::Arr(shards)),
    ])
    .render()
}
