//! Lock-free daemon counters and their Prometheus text rendering.
//!
//! Everything here is atomics so the hot ingest path never takes a lock to
//! account for a frame. Rendering follows the Prometheus text exposition
//! format 0.0.4 (the format every Prometheus scraper accepts).

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds for localization latency, in seconds.
const LATENCY_BOUNDS: [f64; 9] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// Per-shard counters.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Frames dropped by the drop-oldest backpressure policy.
    pub dropped: AtomicU64,
    /// Frames fully processed by the shard worker.
    pub processed: AtomicU64,
    /// Current queue depth (gauge, maintained by push/pop).
    pub depth: AtomicU64,
}

/// A fixed-bucket latency histogram (seconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in microseconds so an atomic integer suffices.
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..LATENCY_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, seconds: f64) {
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            if seconds <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((seconds * 1e6).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// All counters the daemon exports.
#[derive(Debug)]
pub struct Metrics {
    /// Frames accepted off the wire (before queueing).
    pub frames_ingested: AtomicU64,
    /// Alarms fired (incidents produced) across all tenants.
    pub alarms: AtomicU64,
    /// Request lines rejected by the protocol parser.
    pub protocol_errors: AtomicU64,
    /// Pipeline-level failures inside shard workers (localizer errors…).
    pub pipeline_errors: AtomicU64,
    /// Latency of observe calls that triggered localization.
    pub localization: Histogram,
    shards: Vec<ShardMetrics>,
}

impl Metrics {
    /// Create the counter set for `shards` shard workers.
    pub fn new(shards: usize) -> Self {
        Metrics {
            frames_ingested: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            pipeline_errors: AtomicU64::new(0),
            localization: Histogram::default(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// The counters of one shard.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total frames dropped across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Total frames processed across all shards.
    pub fn total_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.processed.load(Ordering::Relaxed))
            .sum()
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "rapd_frames_ingested_total",
            "Frames accepted off the wire.",
            self.frames_ingested.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_alarms_total",
            "Anomaly alarms fired (incidents produced).",
            self.alarms.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_protocol_errors_total",
            "Request lines rejected by the protocol parser.",
            self.protocol_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_pipeline_errors_total",
            "Localization failures inside shard workers.",
            self.pipeline_errors.load(Ordering::Relaxed),
        );

        out.push_str(
            "# HELP rapd_frames_dropped_total Frames dropped by backpressure, per shard.\n",
        );
        out.push_str("# TYPE rapd_frames_dropped_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_frames_dropped_total{{shard=\"{i}\"}} {}\n",
                s.dropped.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP rapd_frames_processed_total Frames fully processed, per shard.\n");
        out.push_str("# TYPE rapd_frames_processed_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_frames_processed_total{{shard=\"{i}\"}} {}\n",
                s.processed.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP rapd_queue_depth Frames currently queued, per shard.\n");
        out.push_str("# TYPE rapd_queue_depth gauge\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_queue_depth{{shard=\"{i}\"}} {}\n",
                s.depth.load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP rapd_localization_seconds Latency of observe calls that localized an incident.\n",
        );
        out.push_str("# TYPE rapd_localization_seconds histogram\n");
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            out.push_str(&format!(
                "rapd_localization_seconds_bucket{{le=\"{bound}\"}} {}\n",
                self.localization.buckets[i].load(Ordering::Relaxed)
            ));
        }
        let count = self.localization.count.load(Ordering::Relaxed);
        out.push_str(&format!(
            "rapd_localization_seconds_bucket{{le=\"+Inf\"}} {count}\n"
        ));
        out.push_str(&format!(
            "rapd_localization_seconds_sum {}\n",
            self.localization.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("rapd_localization_seconds_count {count}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(0.0001);
        h.observe(0.01);
        h.observe(10.0); // beyond the last bound: only +Inf
        assert_eq!(h.count(), 3);
        // le="0.0005" sees one, le="0.05" sees two, +Inf (count) sees three
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[4].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn prometheus_rendering_contains_every_family() {
        let m = Metrics::new(2);
        m.frames_ingested.fetch_add(5, Ordering::Relaxed);
        m.shard(1).dropped.fetch_add(3, Ordering::Relaxed);
        m.localization.observe(0.002);
        let text = m.render_prometheus();
        assert!(text.contains("rapd_frames_ingested_total 5"));
        assert!(text.contains("rapd_frames_dropped_total{shard=\"1\"} 3"));
        assert!(text.contains("rapd_frames_dropped_total{shard=\"0\"} 0"));
        assert!(text.contains("rapd_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("rapd_localization_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("rapd_localization_seconds_count 1"));
        // every non-comment line is "name{labels} value"
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn totals_aggregate_across_shards() {
        let m = Metrics::new(3);
        m.shard(0).dropped.fetch_add(1, Ordering::Relaxed);
        m.shard(2).dropped.fetch_add(2, Ordering::Relaxed);
        m.shard(1).processed.fetch_add(7, Ordering::Relaxed);
        assert_eq!(m.total_dropped(), 3);
        assert_eq!(m.total_processed(), 7);
    }
}
