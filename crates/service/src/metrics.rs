//! Lock-free daemon counters and their Prometheus text rendering.
//!
//! Everything here is atomics so the hot ingest path never takes a lock to
//! account for a frame. Rendering follows the Prometheus text exposition
//! format 0.0.4 (the format every Prometheus scraper accepts).

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds for localization latency, in seconds.
const LATENCY_BOUNDS: [f64; 9] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// Per-shard counters.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Frames dropped by the drop-oldest backpressure policy.
    pub dropped: AtomicU64,
    /// Frames fully processed by the shard worker.
    pub processed: AtomicU64,
    /// Current queue depth (gauge, maintained by push/pop).
    pub depth: AtomicU64,
    /// Frames shed by an open per-tenant circuit breaker (skipped without
    /// touching the pipeline; disjoint from `processed` and `dropped`).
    pub shed: AtomicU64,
    /// Tenants currently behind an open breaker on this shard (gauge).
    pub breaker_open: AtomicU64,
}

/// A fixed-bucket latency histogram (seconds).
///
/// Storage is *non-cumulative*: each observation lands in exactly the
/// first bucket whose bound contains it (one `fetch_add`), and the
/// Prometheus-mandated cumulative counts are computed at render time.
/// This keeps `observe` O(1) atomics instead of O(buckets) and removes the
/// torn-read window where a concurrent scrape could see non-monotonic
/// cumulative buckets.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations in `(bound[i-1], bound[i]]`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in microseconds so an atomic integer suffices.
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..LATENCY_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation. NaN, negative, and infinite values are the
    /// caller measuring wrong — they are rejected outright rather than
    /// silently clamped into the sum, so every count in the export is a
    /// real measurement.
    pub fn observe(&self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        if let Some(i) = LATENCY_BOUNDS.iter().position(|bound| seconds <= *bound) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        // beyond the last bound: counted only by `count` (the +Inf bucket)
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Cumulative per-bound counts (`le="bound[i]"` values), computed from
    /// the non-cumulative storage.
    fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// Per-stage localization timing histograms, exported as one
/// `rapd_stage_seconds` family with a `stage` label. The localization
/// stages (`cp`, `search`, `detect`) observe exactly once per incident, so
/// their counts equal `rapd_alarms_total` — a scrape-time consistency
/// invariant dashboards can assert on. The `detector` stage is the
/// *streaming* detector and observes once per frame in detect mode, so its
/// count tracks `rapd_frames_processed_total` instead.
///
/// The label set is fixed at these four values — labels never grow with
/// traffic, tenants, or severity.
#[derive(Debug, Default)]
pub struct StageHistograms {
    /// Algorithm 1: CP computation + redundant attribute deletion.
    pub cp: Histogram,
    /// Algorithm 2: top-down lattice search.
    pub search: Histogram,
    /// Per-leaf forecasting and anomaly labelling (inside localization).
    pub detect: Histogram,
    /// Streaming detector update + scoring, per frame (detect mode only).
    pub detector: Histogram,
}

impl StageHistograms {
    /// `(stage-label, histogram)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("cp", &self.cp),
            ("search", &self.search),
            ("detect", &self.detect),
            ("detector", &self.detector),
        ]
    }
}

/// Self-triggered detections by severity tier — exported as one
/// `rapd_detections_total` family with a fixed `severity` label set
/// (`warn`/`high`/`critical`; cardinality never grows).
#[derive(Debug, Default)]
pub struct DetectionCounters {
    /// Detections in the 3–4σ tier.
    pub warn: AtomicU64,
    /// Detections in the 4–5σ tier.
    pub high: AtomicU64,
    /// Detections beyond 5σ.
    pub critical: AtomicU64,
}

impl DetectionCounters {
    /// `(severity-label, counter)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &AtomicU64); 3] {
        [
            ("warn", &self.warn),
            ("high", &self.high),
            ("critical", &self.critical),
        ]
    }

    /// The counter for one severity label as produced by
    /// `detect::Severity::as_str`; `None` for unknown labels (callers must
    /// not mint new label values).
    pub fn for_label(&self, severity: &str) -> Option<&AtomicU64> {
        self.named()
            .into_iter()
            .find(|(label, _)| *label == severity)
            .map(|(_, c)| c)
    }

    /// Sum across all severities.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Frames diverted to the quarantine spool, by reason — exported as one
/// `rapd_frames_quarantined_total` family with a `reason` label.
#[derive(Debug, Default)]
pub struct QuarantineCounters {
    /// A row value was NaN or ±infinity (the whole frame is quarantined —
    /// partial admission would skew the tenant's history).
    pub non_finite: AtomicU64,
    /// Unknown attribute values exceeded the tenant's drift allowance.
    pub schema_drift: AtomicU64,
    /// The frame's timestamp was behind the reorder watermark.
    pub late: AtomicU64,
    /// A frame with the same (tenant, timestamp) was already accepted.
    pub replay: AtomicU64,
}

impl QuarantineCounters {
    /// `(reason-label, counter)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &AtomicU64); 4] {
        [
            ("non_finite", &self.non_finite),
            ("schema_drift", &self.schema_drift),
            ("late", &self.late),
            ("replay", &self.replay),
        ]
    }

    /// Sum across all reasons.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Flight-recorder blackbox dumps written, by trigger — exported as one
/// `rapd_blackbox_dumps_total` family with a fixed `trigger` label set
/// (`panic`/`deadline`/`breaker_open`; cardinality never grows).
#[derive(Debug, Default)]
pub struct BlackboxCounters {
    /// A tenant pipeline panicked inside a shard worker.
    pub panic: AtomicU64,
    /// A localization hit the configured deadline.
    pub deadline: AtomicU64,
    /// A tenant circuit breaker opened.
    pub breaker_open: AtomicU64,
}

impl BlackboxCounters {
    /// `(trigger-label, counter)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &AtomicU64); 3] {
        [
            ("panic", &self.panic),
            ("deadline", &self.deadline),
            ("breaker_open", &self.breaker_open),
        ]
    }

    /// The counter for one trigger label; `None` for unknown labels
    /// (callers must not mint new label values).
    pub fn for_label(&self, trigger: &str) -> Option<&AtomicU64> {
        self.named()
            .into_iter()
            .find(|(label, _)| *label == trigger)
            .map(|(_, c)| c)
    }

    /// Sum across all triggers.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Leaf rows repaired in place during admission, by reason — exported as
/// one `rapd_leaves_repaired_total` family with a `reason` label.
#[derive(Debug, Default)]
pub struct RepairCounters {
    /// Extra occurrences of a duplicated leaf collapsed keep-last.
    pub duplicate: AtomicU64,
    /// Negative values clamped to zero.
    pub negative: AtomicU64,
    /// Rows with an already-registered drifted attribute value stripped.
    pub schema_drift: AtomicU64,
}

impl RepairCounters {
    /// `(reason-label, counter)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &AtomicU64); 3] {
        [
            ("duplicate", &self.duplicate),
            ("negative", &self.negative),
            ("schema_drift", &self.schema_drift),
        ]
    }

    /// Sum across all reasons.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Spool segments rotated out by the size cap, by spool — exported as one
/// `rapd_spool_rotations_total` family with a fixed `spool` label set
/// (`incidents`/`quarantine`; cardinality never grows).
#[derive(Debug, Default)]
pub struct SpoolRotationCounters {
    /// Incident spool rotations (`incidents.jsonl` → `.jsonl.1`).
    pub incidents: AtomicU64,
    /// Per-tenant quarantine spool rotations.
    pub quarantine: AtomicU64,
}

impl SpoolRotationCounters {
    /// `(spool-label, counter)` pairs in export order.
    pub fn named(&self) -> [(&'static str, &AtomicU64); 2] {
        [
            ("incidents", &self.incidents),
            ("quarantine", &self.quarantine),
        ]
    }

    /// Sum across both spools.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// All counters the daemon exports.
#[derive(Debug)]
pub struct Metrics {
    /// Frames accepted off the wire (before queueing).
    pub frames_ingested: AtomicU64,
    /// Alarms fired (incidents produced) across all tenants.
    pub alarms: AtomicU64,
    /// Request lines rejected by the protocol parser.
    pub protocol_errors: AtomicU64,
    /// Pipeline-level failures inside shard workers (localizer errors…).
    pub pipeline_errors: AtomicU64,
    /// Tenant pipelines quarantined (dropped and rebuilt) after a panic.
    pub pipeline_restarts_panic: AtomicU64,
    /// Shard worker threads respawned by the supervisor after dying.
    pub worker_restarts: AtomicU64,
    /// Incidents whose localization hit the configured deadline.
    pub deadline_exceeded: AtomicU64,
    /// Intact spool lines carried over at startup (CRC verified).
    pub spool_recovered_lines: AtomicU64,
    /// Pre-CRC spool lines accepted read-only at startup.
    pub spool_legacy_lines: AtomicU64,
    /// Torn/corrupt spool bytes truncated at startup.
    pub spool_truncated_bytes: AtomicU64,
    /// 1 while the sink runs ring-only after a spool write error (gauge).
    pub spool_degraded: AtomicU64,
    /// Spool write failures absorbed by degrading to ring-only mode.
    pub spool_write_errors: AtomicU64,
    /// Frames diverted to quarantine, by reason.
    pub frames_quarantined: QuarantineCounters,
    /// Leaf rows repaired in place at admission, by reason.
    pub leaves_repaired: RepairCounters,
    /// Quarantine spool write failures absorbed by degrading to ring-only.
    pub quarantine_write_errors: AtomicU64,
    /// 1 while the quarantine spool runs ring-only after a write error
    /// (gauge).
    pub quarantine_degraded: AtomicU64,
    /// Latency of observe calls that triggered localization.
    pub localization: Histogram,
    /// Ingest→incident latency: from the frame's correlation-ID mint at
    /// the observe verb to its incident record hitting the sink, computed
    /// from the [`obs::FrameId`] ingest timestamp.
    pub e2e: Histogram,
    /// Flight-recorder blackbox dumps written, by trigger.
    pub blackbox_dumps: BlackboxCounters,
    /// Per-stage timings of each triggered localization.
    pub stages: StageHistograms,
    /// Self-triggered detections, by severity tier (detect mode).
    pub detections: DetectionCounters,
    /// Admitted frames journaled to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// WAL append failures absorbed by degrading to journal-less mode.
    pub wal_append_errors: AtomicU64,
    /// WAL segment compactions after checkpoint acknowledgment.
    pub wal_compactions: AtomicU64,
    /// Frames replayed from the WAL at startup (`rapd_replayed_frames_total`).
    pub wal_replayed_frames: AtomicU64,
    /// Journaled frames not yet acknowledged by a checkpoint (gauge).
    pub wal_depth: AtomicU64,
    /// Tenant checkpoints written (periodic or drain).
    pub checkpoint_writes: AtomicU64,
    /// Checkpoint write failures (the previous snapshot stays in place).
    pub checkpoint_errors: AtomicU64,
    /// Tenant states restored from a checkpoint at startup or respawn.
    pub checkpoint_restores: AtomicU64,
    /// Checkpoint snapshots rejected as corrupt or incompatible at load.
    pub checkpoint_corrupt: AtomicU64,
    /// Unix millis of the most recent successful checkpoint write (gauge).
    pub checkpoint_last_unix_ms: AtomicU64,
    /// Detectors cold-started because recovery found no usable checkpoint
    /// (`rapd_detector_rewarms_total`).
    pub detector_rewarms: AtomicU64,
    /// Replayed incidents suppressed because the frame token was already
    /// in the incident spool (exactly-once incident delivery).
    pub incidents_deduped: AtomicU64,
    /// Spool segments rotated out by the size cap, by spool.
    pub spool_rotations: SpoolRotationCounters,
    shards: Vec<ShardMetrics>,
}

impl Metrics {
    /// Create the counter set for `shards` shard workers.
    pub fn new(shards: usize) -> Self {
        Metrics {
            frames_ingested: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            pipeline_errors: AtomicU64::new(0),
            pipeline_restarts_panic: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            spool_recovered_lines: AtomicU64::new(0),
            spool_legacy_lines: AtomicU64::new(0),
            spool_truncated_bytes: AtomicU64::new(0),
            spool_degraded: AtomicU64::new(0),
            spool_write_errors: AtomicU64::new(0),
            frames_quarantined: QuarantineCounters::default(),
            leaves_repaired: RepairCounters::default(),
            quarantine_write_errors: AtomicU64::new(0),
            quarantine_degraded: AtomicU64::new(0),
            localization: Histogram::default(),
            e2e: Histogram::default(),
            blackbox_dumps: BlackboxCounters::default(),
            stages: StageHistograms::default(),
            detections: DetectionCounters::default(),
            wal_appends: AtomicU64::new(0),
            wal_append_errors: AtomicU64::new(0),
            wal_compactions: AtomicU64::new(0),
            wal_replayed_frames: AtomicU64::new(0),
            wal_depth: AtomicU64::new(0),
            checkpoint_writes: AtomicU64::new(0),
            checkpoint_errors: AtomicU64::new(0),
            checkpoint_restores: AtomicU64::new(0),
            checkpoint_corrupt: AtomicU64::new(0),
            checkpoint_last_unix_ms: AtomicU64::new(0),
            detector_rewarms: AtomicU64::new(0),
            incidents_deduped: AtomicU64::new(0),
            spool_rotations: SpoolRotationCounters::default(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// The counters of one shard.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total frames dropped across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Total frames processed across all shards.
    pub fn total_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.processed.load(Ordering::Relaxed))
            .sum()
    }

    /// Total frames shed by open circuit breakers across all shards.
    pub fn total_shed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.shed.load(Ordering::Relaxed))
            .sum()
    }

    /// Total frames quarantined across all reasons.
    pub fn total_quarantined(&self) -> u64 {
        self.frames_quarantined.total()
    }

    /// Tenants currently behind an open breaker, across all shards.
    pub fn total_breaker_open(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.breaker_open.load(Ordering::Relaxed))
            .sum()
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        out.push_str(
            "# HELP rapd_build_info Build metadata; the value is always 1.\n\
             # TYPE rapd_build_info gauge\n",
        );
        out.push_str(&format!(
            "rapd_build_info{} 1\n",
            label_set(
                &[("version", build_version()), ("commit", build_commit())],
                None
            )
        ));
        counter(
            &mut out,
            "rapd_frames_ingested_total",
            "Frames accepted off the wire.",
            self.frames_ingested.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_alarms_total",
            "Anomaly alarms fired (incidents produced).",
            self.alarms.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_protocol_errors_total",
            "Request lines rejected by the protocol parser.",
            self.protocol_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_pipeline_errors_total",
            "Localization failures inside shard workers.",
            self.pipeline_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_worker_restarts_total",
            "Shard worker threads respawned by the supervisor.",
            self.worker_restarts.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_deadline_exceeded_total",
            "Incidents whose localization hit the configured deadline.",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_spool_recovered_lines",
            "Intact spool lines carried over at startup.",
            self.spool_recovered_lines.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_spool_legacy_lines",
            "Pre-CRC spool lines accepted read-only at startup.",
            self.spool_legacy_lines.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_spool_truncated_bytes",
            "Torn or corrupt spool bytes truncated at startup.",
            self.spool_truncated_bytes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_spool_write_errors_total",
            "Spool write failures absorbed by degrading to ring-only mode.",
            self.spool_write_errors.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP rapd_spool_degraded 1 while the incident sink runs ring-only after a spool write error.\n",
        );
        out.push_str("# TYPE rapd_spool_degraded gauge\n");
        out.push_str(&format!(
            "rapd_spool_degraded {}\n",
            self.spool_degraded.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP rapd_pipeline_restarts_total Tenant pipelines quarantined and rebuilt, by reason.\n",
        );
        out.push_str("# TYPE rapd_pipeline_restarts_total counter\n");
        out.push_str(&format!(
            "rapd_pipeline_restarts_total{{reason=\"panic\"}} {}\n",
            self.pipeline_restarts_panic.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP rapd_frames_quarantined_total Frames diverted to the quarantine spool, by reason.\n",
        );
        out.push_str("# TYPE rapd_frames_quarantined_total counter\n");
        for (reason, c) in self.frames_quarantined.named() {
            out.push_str(&format!(
                "rapd_frames_quarantined_total{{reason=\"{reason}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP rapd_leaves_repaired_total Leaf rows repaired in place at admission, by reason.\n",
        );
        out.push_str("# TYPE rapd_leaves_repaired_total counter\n");
        for (reason, c) in self.leaves_repaired.named() {
            out.push_str(&format!(
                "rapd_leaves_repaired_total{{reason=\"{reason}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        counter(
            &mut out,
            "rapd_quarantine_write_errors_total",
            "Quarantine spool write failures absorbed by degrading to ring-only mode.",
            self.quarantine_write_errors.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP rapd_quarantine_degraded 1 while the quarantine spool runs ring-only after a write error.\n",
        );
        out.push_str("# TYPE rapd_quarantine_degraded gauge\n");
        out.push_str(&format!(
            "rapd_quarantine_degraded {}\n",
            self.quarantine_degraded.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP rapd_breaker_open_tenants Tenants currently behind an open circuit breaker.\n",
        );
        out.push_str("# TYPE rapd_breaker_open_tenants gauge\n");
        out.push_str(&format!(
            "rapd_breaker_open_tenants {}\n",
            self.total_breaker_open()
        ));

        out.push_str(
            "# HELP rapd_frames_dropped_total Frames dropped by backpressure, per shard.\n",
        );
        out.push_str("# TYPE rapd_frames_dropped_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_frames_dropped_total{{shard=\"{i}\"}} {}\n",
                s.dropped.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP rapd_frames_processed_total Frames fully processed, per shard.\n");
        out.push_str("# TYPE rapd_frames_processed_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_frames_processed_total{{shard=\"{i}\"}} {}\n",
                s.processed.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP rapd_frames_shed_total Frames shed by open circuit breakers, per shard.\n",
        );
        out.push_str("# TYPE rapd_frames_shed_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_frames_shed_total{{shard=\"{i}\"}} {}\n",
                s.shed.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP rapd_queue_depth Frames currently queued, per shard.\n");
        out.push_str("# TYPE rapd_queue_depth gauge\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "rapd_queue_depth{{shard=\"{i}\"}} {}\n",
                s.depth.load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP rapd_localization_seconds Latency of observe calls that localized an incident.\n",
        );
        out.push_str("# TYPE rapd_localization_seconds histogram\n");
        render_histogram(
            &mut out,
            "rapd_localization_seconds",
            &[],
            &self.localization,
        );

        out.push_str(
            "# HELP rapd_e2e_seconds Ingest-to-incident latency measured from the frame's correlation ID.\n",
        );
        out.push_str("# TYPE rapd_e2e_seconds histogram\n");
        render_histogram(&mut out, "rapd_e2e_seconds", &[], &self.e2e);

        out.push_str(
            "# HELP rapd_stage_seconds Per-stage timing of each triggered localization.\n",
        );
        out.push_str("# TYPE rapd_stage_seconds histogram\n");
        for (stage, histogram) in self.stages.named() {
            render_histogram(
                &mut out,
                "rapd_stage_seconds",
                &[("stage", stage)],
                histogram,
            );
        }

        out.push_str("# HELP rapd_detections_total Self-triggered detections, by severity tier.\n");
        out.push_str("# TYPE rapd_detections_total counter\n");
        for (severity, c) in self.detections.named() {
            out.push_str(&format!(
                "rapd_detections_total{{severity=\"{severity}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP rapd_blackbox_dumps_total Flight-recorder blackbox dumps written, by trigger.\n",
        );
        out.push_str("# TYPE rapd_blackbox_dumps_total counter\n");
        for (trigger, c) in self.blackbox_dumps.named() {
            out.push_str(&format!(
                "rapd_blackbox_dumps_total{{trigger=\"{trigger}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        counter(
            &mut out,
            "rapd_wal_appends_total",
            "Admitted frames journaled to the write-ahead log.",
            self.wal_appends.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_wal_append_errors_total",
            "WAL append failures absorbed by degrading to journal-less mode.",
            self.wal_append_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_wal_compactions_total",
            "WAL segment compactions after checkpoint acknowledgment.",
            self.wal_compactions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_replayed_frames_total",
            "Frames replayed from the write-ahead log at startup.",
            self.wal_replayed_frames.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP rapd_wal_depth Journaled frames not yet acknowledged by a checkpoint.\n",
        );
        out.push_str("# TYPE rapd_wal_depth gauge\n");
        out.push_str(&format!(
            "rapd_wal_depth {}\n",
            self.wal_depth.load(Ordering::Relaxed)
        ));
        counter(
            &mut out,
            "rapd_checkpoint_writes_total",
            "Tenant checkpoints written (periodic or drain).",
            self.checkpoint_writes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_checkpoint_errors_total",
            "Checkpoint write failures; the previous snapshot stays in place.",
            self.checkpoint_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_checkpoint_restores_total",
            "Tenant states restored from a checkpoint.",
            self.checkpoint_restores.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_checkpoint_corrupt_total",
            "Checkpoint snapshots rejected as corrupt or incompatible.",
            self.checkpoint_corrupt.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP rapd_checkpoint_last_unix_ms Unix millis of the most recent successful checkpoint write.\n",
        );
        out.push_str("# TYPE rapd_checkpoint_last_unix_ms gauge\n");
        out.push_str(&format!(
            "rapd_checkpoint_last_unix_ms {}\n",
            self.checkpoint_last_unix_ms.load(Ordering::Relaxed)
        ));
        counter(
            &mut out,
            "rapd_detector_rewarms_total",
            "Detectors cold-started because recovery found no usable checkpoint.",
            self.detector_rewarms.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rapd_incidents_deduped_total",
            "Replayed incidents suppressed by frame-token dedup.",
            self.incidents_deduped.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP rapd_spool_rotations_total Spool segments rotated out by the size cap, by spool.\n",
        );
        out.push_str("# TYPE rapd_spool_rotations_total counter\n");
        for (spool, c) in self.spool_rotations.named() {
            out.push_str(&format!(
                "rapd_spool_rotations_total{{spool=\"{spool}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

/// The crate version exported in `rapd_build_info` and the `stats` and
/// `debug` control replies.
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The source commit baked in at compile time via the `RAPD_BUILD_COMMIT`
/// environment variable; `"unknown"` for builds outside CI.
pub fn build_commit() -> &'static str {
    option_env!("RAPD_BUILD_COMMIT").unwrap_or("unknown")
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
pub(crate) fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `{a="x",b="y",le="bound"}` with escaped values.
fn label_set(labels: &[(&str, &str)], le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render one histogram's `_bucket`/`_sum`/`_count` lines (cumulative
/// buckets computed here, per the exposition format).
fn render_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    let cumulative = h.cumulative();
    for (bound, cum) in LATENCY_BOUNDS.iter().zip(&cumulative) {
        let bound = bound.to_string();
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            label_set(labels, Some(&bound))
        ));
    }
    let count = h.count();
    out.push_str(&format!(
        "{name}_bucket{} {count}\n",
        label_set(labels, Some("+Inf"))
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        label_set(labels, None),
        h.sum_seconds()
    ));
    out.push_str(&format!(
        "{name}_count{} {count}\n",
        label_set(labels, None)
    ));
}

/// A minimal Prometheus text-format 0.0.4 linter, shared by this crate's
/// unit tests, the integration tests, and CI's live-scrape gate, so every
/// rendered exposition goes through the same line validator.
pub mod lint {
    /// Validate a full exposition: every non-comment line must be
    /// `name[{label="value",...}] value` with a parseable numeric value,
    /// properly quoted label values, and legal metric/label names.
    ///
    /// # Errors
    ///
    /// The first malformed line, with what is wrong with it.
    pub fn validate_exposition(text: &str) -> Result<(), String> {
        for line in text.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            if line.starts_with('#') {
                return Err(format!("unknown comment form: {line}"));
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line needs a value: {line}"))?;
            if value.parse::<f64>().is_err() {
                return Err(format!("unparseable value in: {line}"));
            }
            let name = match series.split_once('{') {
                None => series,
                Some((name, rest)) => {
                    let body = rest
                        .strip_suffix('}')
                        .ok_or_else(|| format!("unterminated label set: {line}"))?;
                    for pair in split_label_pairs(body) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("label needs = in: {line}"))?;
                        if !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                            return Err(format!("bad label name {k} in: {line}"));
                        }
                        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                            return Err(format!("unquoted label value {v} in: {line}"));
                        }
                    }
                    name
                }
            };
            if !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            {
                return Err(format!("bad metric name in: {line}"));
            }
        }
        Ok(())
    }

    /// Split `a="x",b="y"` on commas outside quotes (escaped quotes count
    /// as inside).
    pub fn split_label_pairs(body: &str) -> Vec<String> {
        let mut pairs = Vec::new();
        let mut cur = String::new();
        let mut in_quotes = false;
        let mut escaped = false;
        for c in body.chars() {
            if escaped {
                cur.push(c);
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_quotes => {
                    cur.push(c);
                    escaped = true;
                }
                '"' => {
                    cur.push(c);
                    in_quotes = !in_quotes;
                }
                ',' if !in_quotes => pairs.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            pairs.push(cur);
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn validate_exposition(text: &str) {
        lint::validate_exposition(text).expect("exposition must lint clean");
    }

    #[test]
    fn observe_touches_exactly_one_bucket() {
        let h = Histogram::default();
        h.observe(0.0001); // -> bucket[0] (le 0.0005)
        h.observe(0.01); // -> bucket[3] (le 0.01, boundary is inclusive)
        h.observe(10.0); // beyond the last bound: only count/+Inf
        assert_eq!(h.count(), 3);
        let raw: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        assert_eq!(raw.iter().sum::<u64>(), 2, "one fetch_add per observation");
        assert_eq!(raw[0], 1);
        assert_eq!(raw[3], 1);
        // cumulative view is what the scraper sees
        let cum = h.cumulative();
        assert_eq!(cum[0], 1);
        assert_eq!(cum[3], 2);
        assert_eq!(*cum.last().unwrap(), 2, "+Inf adds the out-of-range one");
    }

    #[test]
    fn non_finite_and_negative_observations_are_rejected() {
        let h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(-1.0);
        assert_eq!(h.count(), 0, "junk must not inflate the count");
        assert_eq!(h.sum_seconds(), 0.0, "junk must not pollute the sum");
        h.observe(0.25);
        assert_eq!(h.count(), 1);
        assert!((h.sum_seconds() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn buckets_stay_monotonic_under_concurrent_observe() {
        let h = Arc::new(Histogram::default());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        // spread across all buckets and past the last bound
                        let v = (f64::from(i % 11)) * 0.6e-3 + f64::from(t) * 1e-5;
                        h.observe(v);
                    }
                })
            })
            .collect();
        // scrape concurrently with the writers
        for _ in 0..200 {
            let cum = h.cumulative();
            for w in cum.windows(2) {
                assert!(w[0] <= w[1], "non-monotonic cumulative buckets: {cum:?}");
            }
            assert!(
                *cum.last().unwrap() <= h.count(),
                "+Inf below the last finite bound"
            );
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        // every value is <= ~6ms, well under the last bound, so the final
        // cumulative bucket must account for all of them
        assert_eq!(*h.cumulative().last().unwrap(), 8000);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd",
            "quote, backslash, and newline must be escaped"
        );
        let rendered = label_set(&[("tenant", "we\"ird\\\n")], Some("0.5"));
        assert_eq!(rendered, "{tenant=\"we\\\"ird\\\\\\n\",le=\"0.5\"}");
        assert!(!rendered.contains('\n'), "newlines would break the format");
    }

    #[test]
    fn every_family_round_trips_through_the_line_validator() {
        let m = Metrics::new(2);
        m.frames_ingested.fetch_add(5, Ordering::Relaxed);
        m.shard(1).dropped.fetch_add(3, Ordering::Relaxed);
        m.localization.observe(0.002);
        m.stages.cp.observe(0.0001);
        m.stages.search.observe(0.003);
        m.stages.detect.observe(0.7);
        m.stages.detector.observe(0.00002);
        m.detections.high.fetch_add(2, Ordering::Relaxed);
        let text = m.render_prometheus();
        validate_exposition(&text);
        assert!(text.contains("rapd_frames_ingested_total 5"));
        assert!(text.contains("rapd_frames_dropped_total{shard=\"1\"} 3"));
        assert!(text.contains("rapd_frames_dropped_total{shard=\"0\"} 0"));
        assert!(text.contains("rapd_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("rapd_localization_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("rapd_localization_seconds_count 1"));
        // stage family: one histogram per stage label, counts independent
        assert!(text.contains("rapd_stage_seconds_bucket{stage=\"cp\",le=\"0.0005\"} 1"));
        assert!(text.contains("rapd_stage_seconds_count{stage=\"search\"} 1"));
        assert!(text.contains("rapd_stage_seconds_bucket{stage=\"detect\",le=\"0.5\"} 0"));
        assert!(text.contains("rapd_stage_seconds_bucket{stage=\"detect\",le=\"1\"} 1"));
        assert!(text.contains("rapd_stage_seconds_count{stage=\"detector\"} 1"));
        assert!(text.contains("rapd_detections_total{severity=\"warn\"} 0"));
        assert!(text.contains("rapd_detections_total{severity=\"high\"} 2"));
        assert!(text.contains("rapd_detections_total{severity=\"critical\"} 0"));
        // each TYPE comment appears exactly once per family
        assert_eq!(
            text.matches("# TYPE rapd_stage_seconds histogram").count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE rapd_detections_total counter").count(),
            1
        );
    }

    #[test]
    fn stage_and_severity_label_sets_are_fixed() {
        // Cardinality gate: the rendered label sets must be exactly the
        // documented values, regardless of what was observed — labels must
        // never grow with traffic, tenants, or new severities.
        let m = Metrics::new(1);
        m.stages.detector.observe(0.001);
        m.detections.critical.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus();
        let stages: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("rapd_stage_seconds_count{stage=\""))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert_eq!(
            stages.into_iter().collect::<Vec<_>>(),
            ["cp", "detect", "detector", "search"],
            "stage label set must stay fixed"
        );
        let severities: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("rapd_detections_total{severity=\""))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert_eq!(
            severities.into_iter().collect::<Vec<_>>(),
            ["critical", "high", "warn"],
            "severity label set must stay fixed"
        );
        // every detect::Severity maps onto an exported counter
        for severity in detect::Severity::all() {
            assert!(
                m.detections.for_label(severity.as_str()).is_some(),
                "severity {severity} has no counter"
            );
        }
        assert!(m.detections.for_label("page-me-harder").is_none());
        assert_eq!(m.detections.total(), 1);
    }

    #[test]
    fn rendered_cumulative_buckets_are_monotonic() {
        let m = Metrics::new(1);
        for v in [0.0001, 0.0008, 0.02, 0.2, 3.0, 100.0] {
            m.localization.observe(v);
        }
        let text = m.render_prometheus();
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("rapd_localization_seconds_bucket"))
        {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "bucket decreased: {line}");
            last = v;
        }
        assert_eq!(last, 6, "+Inf bucket must equal the count");
    }

    #[test]
    fn observability_families_render_and_validate() {
        let m = Metrics::new(1);
        m.e2e.observe(0.003);
        m.blackbox_dumps.panic.fetch_add(2, Ordering::Relaxed);
        m.blackbox_dumps.deadline.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus();
        validate_exposition(&text);
        assert!(text.contains(&format!(
            "rapd_build_info{{version=\"{}\",commit=\"{}\"}} 1",
            build_version(),
            build_commit()
        )));
        assert!(text.contains("rapd_e2e_seconds_count 1"));
        assert!(text.contains("rapd_e2e_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("rapd_blackbox_dumps_total{trigger=\"panic\"} 2"));
        assert!(text.contains("rapd_blackbox_dumps_total{trigger=\"deadline\"} 1"));
        assert!(text.contains("rapd_blackbox_dumps_total{trigger=\"breaker_open\"} 0"));
        // trigger label set is fixed at the three documented values
        let triggers: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("rapd_blackbox_dumps_total{trigger=\""))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert_eq!(
            triggers.into_iter().collect::<Vec<_>>(),
            ["breaker_open", "deadline", "panic"],
        );
        assert!(m.blackbox_dumps.for_label("panic").is_some());
        assert!(m.blackbox_dumps.for_label("oom").is_none());
        assert_eq!(m.blackbox_dumps.total(), 3);
    }

    #[test]
    fn durability_families_render_and_validate() {
        let m = Metrics::new(1);
        m.wal_appends.fetch_add(12, Ordering::Relaxed);
        m.wal_append_errors.fetch_add(1, Ordering::Relaxed);
        m.wal_compactions.fetch_add(2, Ordering::Relaxed);
        m.wal_replayed_frames.fetch_add(7, Ordering::Relaxed);
        m.wal_depth.store(5, Ordering::Relaxed);
        m.checkpoint_writes.fetch_add(3, Ordering::Relaxed);
        m.checkpoint_errors.fetch_add(1, Ordering::Relaxed);
        m.checkpoint_restores.fetch_add(2, Ordering::Relaxed);
        m.checkpoint_corrupt.fetch_add(1, Ordering::Relaxed);
        m.checkpoint_last_unix_ms
            .store(1754700000123, Ordering::Relaxed);
        m.detector_rewarms.fetch_add(1, Ordering::Relaxed);
        m.incidents_deduped.fetch_add(4, Ordering::Relaxed);
        m.spool_rotations.incidents.fetch_add(2, Ordering::Relaxed);
        m.spool_rotations.quarantine.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus();
        validate_exposition(&text);
        assert!(text.contains("rapd_wal_appends_total 12"));
        assert!(text.contains("rapd_wal_append_errors_total 1"));
        assert!(text.contains("rapd_wal_compactions_total 2"));
        assert!(text.contains("rapd_replayed_frames_total 7"));
        assert!(text.contains("rapd_wal_depth 5"));
        assert!(text.contains("rapd_checkpoint_writes_total 3"));
        assert!(text.contains("rapd_checkpoint_errors_total 1"));
        assert!(text.contains("rapd_checkpoint_restores_total 2"));
        assert!(text.contains("rapd_checkpoint_corrupt_total 1"));
        assert!(text.contains("rapd_checkpoint_last_unix_ms 1754700000123"));
        assert!(text.contains("rapd_detector_rewarms_total 1"));
        assert!(text.contains("rapd_incidents_deduped_total 4"));
        assert!(text.contains("rapd_spool_rotations_total{spool=\"incidents\"} 2"));
        assert!(text.contains("rapd_spool_rotations_total{spool=\"quarantine\"} 1"));
        assert_eq!(m.spool_rotations.total(), 3);
        // the spool label set is fixed at the two documented values
        let spools: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("rapd_spool_rotations_total{spool=\""))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert_eq!(
            spools.into_iter().collect::<Vec<_>>(),
            ["incidents", "quarantine"],
        );
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        for bad in [
            "# COMMENT nope",
            "no_value_here",
            "name{unterminated=\"x\" 1",
            "name{k=unquoted} 1",
            "name{bad-label=\"x\"} 1",
            "name value_not_numeric",
            "bad name{k=\"v\"} x 1",
        ] {
            assert!(lint::validate_exposition(bad).is_err(), "accepted: {bad}");
        }
        assert!(lint::validate_exposition("ok_metric{a=\"b\",c=\"d\"} 4.5").is_ok());
    }

    #[test]
    fn totals_aggregate_across_shards() {
        let m = Metrics::new(3);
        m.shard(0).dropped.fetch_add(1, Ordering::Relaxed);
        m.shard(2).dropped.fetch_add(2, Ordering::Relaxed);
        m.shard(1).processed.fetch_add(7, Ordering::Relaxed);
        m.shard(0).shed.fetch_add(4, Ordering::Relaxed);
        m.shard(1).breaker_open.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.total_dropped(), 3);
        assert_eq!(m.total_processed(), 7);
        assert_eq!(m.total_shed(), 4);
        assert_eq!(m.total_breaker_open(), 1);
    }

    #[test]
    fn fault_tolerance_families_render_and_validate() {
        let m = Metrics::new(2);
        m.pipeline_restarts_panic.fetch_add(2, Ordering::Relaxed);
        m.worker_restarts.fetch_add(1, Ordering::Relaxed);
        m.deadline_exceeded.fetch_add(3, Ordering::Relaxed);
        m.spool_recovered_lines.store(40, Ordering::Relaxed);
        m.spool_legacy_lines.store(4, Ordering::Relaxed);
        m.spool_truncated_bytes.store(17, Ordering::Relaxed);
        m.spool_degraded.store(1, Ordering::Relaxed);
        m.spool_write_errors.fetch_add(1, Ordering::Relaxed);
        m.shard(1).shed.fetch_add(9, Ordering::Relaxed);
        m.shard(0).breaker_open.store(2, Ordering::Relaxed);
        let text = m.render_prometheus();
        validate_exposition(&text);
        assert!(text.contains("rapd_pipeline_restarts_total{reason=\"panic\"} 2"));
        assert!(text.contains("rapd_worker_restarts_total 1"));
        assert!(text.contains("rapd_deadline_exceeded_total 3"));
        assert!(text.contains("rapd_spool_recovered_lines 40"));
        assert!(text.contains("rapd_spool_legacy_lines 4"));
        assert!(text.contains("rapd_spool_truncated_bytes 17"));
        assert!(text.contains("rapd_spool_degraded 1"));
        assert!(text.contains("rapd_spool_write_errors_total 1"));
        assert!(text.contains("rapd_frames_shed_total{shard=\"1\"} 9"));
        assert!(text.contains("rapd_frames_shed_total{shard=\"0\"} 0"));
        assert!(text.contains("rapd_breaker_open_tenants 2"));
    }

    #[test]
    fn quarantine_and_repair_families_render_and_validate() {
        let m = Metrics::new(2);
        m.frames_quarantined
            .non_finite
            .fetch_add(3, Ordering::Relaxed);
        m.frames_quarantined
            .schema_drift
            .fetch_add(1, Ordering::Relaxed);
        m.frames_quarantined.late.fetch_add(4, Ordering::Relaxed);
        m.frames_quarantined.replay.fetch_add(2, Ordering::Relaxed);
        m.leaves_repaired.duplicate.fetch_add(7, Ordering::Relaxed);
        m.leaves_repaired.negative.fetch_add(5, Ordering::Relaxed);
        m.leaves_repaired
            .schema_drift
            .fetch_add(6, Ordering::Relaxed);
        m.quarantine_write_errors.fetch_add(1, Ordering::Relaxed);
        m.quarantine_degraded.store(1, Ordering::Relaxed);
        let text = m.render_prometheus();
        validate_exposition(&text);
        assert!(text.contains("rapd_frames_quarantined_total{reason=\"non_finite\"} 3"));
        assert!(text.contains("rapd_frames_quarantined_total{reason=\"schema_drift\"} 1"));
        assert!(text.contains("rapd_frames_quarantined_total{reason=\"late\"} 4"));
        assert!(text.contains("rapd_frames_quarantined_total{reason=\"replay\"} 2"));
        assert!(text.contains("rapd_leaves_repaired_total{reason=\"duplicate\"} 7"));
        assert!(text.contains("rapd_leaves_repaired_total{reason=\"negative\"} 5"));
        assert!(text.contains("rapd_leaves_repaired_total{reason=\"schema_drift\"} 6"));
        assert!(text.contains("rapd_quarantine_write_errors_total 1"));
        assert!(text.contains("rapd_quarantine_degraded 1"));
        // each TYPE comment appears exactly once per labelled family
        assert_eq!(
            text.matches("# TYPE rapd_frames_quarantined_total counter")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE rapd_leaves_repaired_total counter")
                .count(),
            1
        );
        assert_eq!(m.total_quarantined(), 10);
        assert_eq!(m.leaves_repaired.total(), 18);
    }
}
