//! Poison-tolerant locking.
//!
//! A panic while holding a `std::sync::Mutex` poisons it, and the default
//! `lock().unwrap()` idiom then propagates that panic into every other
//! thread that touches the lock — one crashed worker cascades into a dead
//! daemon. rapd's locks guard state that stays structurally valid even if
//! the holder panicked mid-update (queues of owned frames, ring buffers of
//! complete records, vectors of join handles), so the right policy is to
//! take the data and keep serving. These helpers centralize that policy;
//! service code must not call `.lock().expect(..)` directly.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a panicking holder poisoned it.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery policy.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison-recovery policy.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_mutex_is_recovered_not_propagated() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        // the data survives and stays writable
        let mut g = lock_recover(&m);
        assert_eq!(*g, 7);
        *g = 8;
        drop(g);
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn condvar_wait_timeout_recovers() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let (guard, timed_out) =
            wait_timeout_recover(&cv, lock_recover(&m), Duration::from_millis(1));
        assert!(timed_out.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn condvar_wait_recovers_from_a_poisoned_mutex() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));

        // Poison the mutex: a holder thread panics mid-update.
        let p = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = p.0.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(pair.0.is_poisoned());

        // A notifier flips the flag through the recovered lock and wakes us.
        let p = Arc::clone(&pair);
        let notifier = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *lock_recover(&p.0) = true;
            p.1.notify_all();
        });

        // wait_recover must survive the poisoned re-acquire instead of
        // propagating the holder's panic into this thread.
        let mut guard = lock_recover(&pair.0);
        while !*guard {
            guard = wait_recover(&pair.1, guard);
        }
        assert!(*guard);
        drop(guard);
        notifier.join().expect("notifier thread");
    }
}
