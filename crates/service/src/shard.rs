//! Shard workers: bounded queues with drop-oldest backpressure feeding
//! per-tenant localization pipelines, under a small supervision tree.
//!
//! Tenants hash onto a fixed set of shards (FNV-1a over the tenant id), so
//! one tenant's frames are always processed in arrival order by a single
//! worker thread while different tenants spread across cores. Each queue
//! is bounded: when ingest outruns localization the *oldest queued frame*
//! is dropped and accounted in the shard's `dropped` counter — the
//! pipeline keeps seeing the freshest data and memory stays bounded.
//! Flush barriers are never dropped, so `flush` remains an exact
//! everything-before-this-was-processed fence even under overload.
//!
//! # Fault tolerance
//!
//! Three independent layers keep one bad tenant — or one bad frame — from
//! taking the daemon down:
//!
//! * **Pipeline quarantine**: each frame is processed under
//!   `catch_unwind`. A panicking pipeline is dropped on the spot (its
//!   internal state may be torn mid-update) and lazily rebuilt on the
//!   tenant's next frame; the worker thread and its other tenants never
//!   notice. Counted in `rapd_pipeline_restarts_total{reason="panic"}`.
//! * **Per-tenant circuit breaker**: consecutive failures (errors, panics,
//!   localization deadline overruns) open a breaker that sheds the
//!   tenant's frames — counted, never silently lost — until a cooldown
//!   probe succeeds ([`ServiceConfig::breaker_threshold`] /
//!   [`ServiceConfig::breaker_cooldown`]).
//! * **Worker supervision**: a supervisor thread polls worker liveness
//!   and respawns any shard thread that dies outside shutdown
//!   (`rapd_worker_restarts_total`). The respawned worker rebuilds tenant
//!   pipelines lazily from the shared queue.
//!
//! # Watermark reordering
//!
//! Frames that carry an event timestamp (`ts` on the observe message) go
//! through a per-tenant reorder buffer before the pipeline. The buffer
//! holds up to [`ServiceConfig::reorder_window`] frames and emits them in
//! timestamp order once the watermark — the newest timestamp seen minus
//! [`ServiceConfig::max_lateness`] — passes them. Frames behind the last
//! emitted timestamp are quarantined as `late`; frames whose timestamp
//! was already buffered or just emitted are quarantined as `replay`.
//! Frames without a timestamp bypass the buffer entirely (arrival order).
//! Flush barriers and shutdown drain every buffer first, so `flush`
//! remains an exact fence and the `processed + dropped + shed +
//! quarantined == ingested` invariant holds at every quiescent point.
//! Known limitation: a worker that dies outside shutdown loses its
//! buffered frames along with its queue, exactly like queued frames.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use baselines::Localizer;
use detect::DetectorConfig;
use pipeline::{DetectingPipeline, LocalizationPipeline};
use timeseries::MovingAverage;

use crate::blackbox::BlackboxWriter;
use crate::checkpoint::{CheckpointStore, ConfigGuard, EngineCheckpoint, TenantCheckpoint};
use crate::config::ServiceConfig;
use crate::metrics::{Metrics, ShardMetrics};
use crate::quarantine::{QuarantineRecord, QuarantineSink};
use crate::sink::{IncidentRecord, IncidentSink};
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use crate::wal::FrameWal;

/// Builds one localizer per tenant pipeline; shared across shard threads.
/// The argument is the configured intra-frame thread count
/// ([`pipeline::PipelineConfig::localize_threads`]): `1` keeps a frame on
/// its shard worker's core, `0` lets one frame fan out over the machine.
pub type LocalizerFactory = Arc<dyn Fn(usize) -> Box<dyn Localizer> + Send + Sync>;

/// One unit of shard work.
enum Job {
    /// A snapshot for one tenant; `ts` routes it through the tenant's
    /// reorder buffer. `id` is the correlation token minted at the
    /// observe verb; it rides with the frame through every stage.
    Frame {
        id: obs::FrameId,
        tenant: Arc<str>,
        frame: mdkpi::LeafFrame,
        ts: Option<u64>,
    },
    /// A flush barrier: mark the gate done once everything queued before
    /// it has been processed.
    Barrier(Arc<FlushGate>),
    /// Snapshot every tenant engine on this shard to the checkpoint store
    /// (and compact its WAL segment), then mark the gate done. Like a
    /// barrier it is never dropped; unlike a barrier it does **not** drain
    /// reorder buffers — parked frames stay parked and remain covered by
    /// the WAL suffix past the acknowledged sequence.
    Checkpoint(Arc<FlushGate>),
    /// Drain-free worker exit.
    Shutdown,
}

/// Counts down shard acknowledgements of one flush.
pub struct FlushGate {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl FlushGate {
    fn new(n: usize) -> Self {
        FlushGate {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn done(&self) {
        let mut remaining = lock_recover(&self.remaining);
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Wait until every shard acknowledged, or the timeout elapses.
    /// Returns whether the flush completed.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut remaining = lock_recover(&self.remaining);
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = wait_timeout_recover(&self.cv, remaining, deadline - now);
            remaining = guard;
        }
        true
    }
}

/// A bounded MPSC queue with drop-oldest overflow for frames.
struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue a frame. When the queue is at capacity the oldest queued
    /// *frame* is evicted (barriers are never evicted) and counted.
    fn push_frame(
        &self,
        id: obs::FrameId,
        tenant: Arc<str>,
        frame: mdkpi::LeafFrame,
        ts: Option<u64>,
        metrics: &ShardMetrics,
    ) {
        let mut jobs = lock_recover(&self.jobs);
        let frames_queued = |jobs: &VecDeque<Job>| {
            jobs.iter()
                .filter(|j| matches!(j, Job::Frame { .. }))
                .count()
        };
        if frames_queued(&jobs) >= self.capacity {
            if let Some(i) = jobs.iter().position(|j| matches!(j, Job::Frame { .. })) {
                jobs.remove(i);
                metrics.dropped.fetch_add(1, Ordering::Relaxed);
                metrics.depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
        jobs.push_back(Job::Frame {
            id,
            tenant,
            frame,
            ts,
        });
        metrics.depth.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
    }

    /// Enqueue a control job (barrier/shutdown); never dropped, never
    /// counted against the frame capacity.
    fn push_control(&self, job: Job) {
        let mut jobs = lock_recover(&self.jobs);
        jobs.push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = lock_recover(&self.jobs);
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = wait_recover(&self.cv, jobs);
        }
    }
}

/// How often the supervisor polls worker liveness.
const SUPERVISE_INTERVAL: Duration = Duration::from_millis(15);

/// Per-tenant circuit breaker state (owned by one shard worker, so no
/// synchronization is needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Frames flow normally.
    Closed,
    /// Frames are shed until the cooldown deadline.
    Open { until: Instant },
    /// One probe frame is being let through.
    HalfOpen,
}

/// Counts consecutive failures of one tenant's pipeline and decides
/// whether its frames are processed, probed, or shed.
#[derive(Debug)]
struct Breaker {
    failures: u32,
    state: BreakerState,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            failures: 0,
            state: BreakerState::Closed,
        }
    }
}

/// What to do with the frame that just arrived for a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Breaker closed: process normally.
    Process,
    /// Breaker half-open: process as the recovery probe.
    Probe,
    /// Breaker open: skip the frame, count it shed.
    Shed,
}

impl Breaker {
    fn admit(&mut self, now: Instant) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Process,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
        }
    }

    /// Returns `true` when this closed a half-open breaker (the gauge of
    /// open breakers must drop by one).
    fn on_success(&mut self) -> bool {
        self.failures = 0;
        let closing = self.state == BreakerState::HalfOpen;
        self.state = BreakerState::Closed;
        closing
    }

    /// The state name reported by the `debug` control verb.
    fn state_str(&self) -> &'static str {
        match self.state {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Returns `true` when this opened a closed breaker (the gauge of
    /// open breakers must rise by one). A failed half-open probe re-opens
    /// without a gauge change. `threshold == 0` disables the breaker.
    fn on_failure(&mut self, threshold: u32, cooldown: Duration, now: Instant) -> bool {
        if threshold == 0 {
            return false;
        }
        self.failures = self.failures.saturating_add(1);
        match self.state {
            BreakerState::Closed if self.failures >= threshold => {
                self.state = BreakerState::Open {
                    until: now + cooldown,
                };
                true
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open {
                    until: now + cooldown,
                };
                false
            }
            _ => false,
        }
    }
}

/// Why the reorder buffer refused a timestamped frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rejected {
    /// The timestamp is behind the last emitted one.
    Late { last_emitted: u64 },
    /// A frame with this timestamp was already buffered or just emitted.
    Replay,
}

/// A per-tenant watermark reorder buffer (data-driven: the watermark
/// advances with observed timestamps, never with wall-clock time, so a
/// paused stream neither drops nor reorders anything). Generic over the
/// buffered payload so the pool can park a frame *and* its correlation
/// id together.
#[derive(Debug)]
struct ReorderBuffer<T> {
    /// Buffered payloads by timestamp; `BTreeMap` keeps emission ordered.
    buf: BTreeMap<u64, T>,
    /// The newest timestamp handed to the pipeline so far.
    last_emitted: Option<u64>,
    /// The newest timestamp ever offered (drives the watermark).
    max_seen: u64,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        ReorderBuffer {
            buf: BTreeMap::new(),
            last_emitted: None,
            max_seen: 0,
        }
    }
}

impl<T> ReorderBuffer<T> {
    /// Offer one timestamped frame. Returns the frames the watermark (or
    /// a window overflow) released, oldest first — possibly none, and
    /// possibly not including the offered frame itself.
    ///
    /// # Errors
    ///
    /// [`Rejected::Late`] when `ts` is behind the last emitted timestamp,
    /// [`Rejected::Replay`] when `ts` equals a buffered or the
    /// just-emitted timestamp.
    fn offer(
        &mut self,
        ts: u64,
        frame: T,
        window: usize,
        lateness_ms: u64,
    ) -> Result<Vec<(u64, T)>, Rejected> {
        if let Some(last) = self.last_emitted {
            if ts == last {
                return Err(Rejected::Replay);
            }
            if ts < last {
                return Err(Rejected::Late { last_emitted: last });
            }
        }
        if self.buf.contains_key(&ts) {
            return Err(Rejected::Replay);
        }
        self.buf.insert(ts, frame);
        self.max_seen = self.max_seen.max(ts);
        let watermark = self.max_seen.saturating_sub(lateness_ms);
        let mut ready = Vec::new();
        loop {
            let overflowing = self.buf.len() > window;
            let Some(entry) = self.buf.first_entry() else {
                break;
            };
            // emit past the watermark in order; overflow past the window
            // releases the oldest frame even if the watermark lags
            if *entry.key() > watermark && !overflowing {
                break;
            }
            ready.push(entry.remove_entry());
        }
        if let Some((ts, _)) = ready.last() {
            self.last_emitted = Some(*ts);
        }
        Ok(ready)
    }

    /// Release everything still buffered, oldest first (flush/shutdown).
    fn drain(&mut self) -> Vec<(u64, T)> {
        let drained: Vec<(u64, T)> = std::mem::take(&mut self.buf).into_iter().collect();
        if let Some((ts, _)) = drained.last() {
            self.last_emitted = Some(*ts);
        }
        drained
    }
}

/// Everything a shard worker (or the supervisor) needs, shared once.
struct PoolShared {
    queues: Vec<Arc<ShardQueue>>,
    metrics: Arc<Metrics>,
    sink: Arc<IncidentSink>,
    quarantine: Arc<QuarantineSink>,
    factory: LocalizerFactory,
    pipeline_config: pipeline::PipelineConfig,
    /// `Some` switches every tenant to detect-then-localize mode: raw
    /// frames in, self-triggered localizations out.
    detector_config: Option<DetectorConfig>,
    window: usize,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    reorder_window: usize,
    max_lateness_ms: u64,
    /// Span/event lines each worker's flight recorder retains for
    /// post-mortem blackbox dumps; `0` disables the recorder.
    flight_capacity: usize,
    /// Post-mortem dump writer shared by every worker: panics, deadline
    /// overruns, and breaker openings snapshot the flight recorders here.
    blackbox: Arc<BlackboxWriter>,
    /// The frame write-ahead log; checkpoints compact each tenant's
    /// segment up to the acknowledged sequence. `None` when the WAL is
    /// disabled or there is no spool directory.
    wal: Option<Arc<FrameWal>>,
    /// The per-tenant snapshot store; `None` without a spool directory.
    /// Workers restore an unseen tenant from it lazily and write into it
    /// on every [`Job::Checkpoint`].
    checkpoints: Option<Arc<CheckpointStore>>,
    /// Live per-tenant internals served by the `debug` control verb;
    /// workers refresh their tenants' entries after every processed frame.
    debug: Mutex<HashMap<String, TenantDebug>>,
    shutting_down: AtomicBool,
}

/// A live snapshot of one tenant's processing internals, served by the
/// `debug` control verb. Refreshed by the tenant's shard worker after
/// every processed frame, so a quiet tenant shows its last-known state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantDebug {
    /// The shard the tenant hashes onto.
    pub shard: usize,
    /// Engine kind: `"classic"` (external alarm), `"detecting"`
    /// (self-triggering), or `"quarantined"` right after a pipeline panic
    /// (the engine is rebuilt lazily on the tenant's next frame).
    pub engine: &'static str,
    /// Streaming-detector phase (`"warmup"`/`"steady"`/`"triggered"`);
    /// `None` in classic mode or while quarantined.
    pub detector_phase: Option<&'static str>,
    /// Circuit-breaker state: `"closed"`, `"open"`, or `"half_open"`.
    pub breaker: &'static str,
    /// Frames currently parked in the reorder buffer.
    pub reorder_buffered: usize,
    /// Newest timestamp handed to the pipeline, if any frame carried one.
    pub reorder_last_emitted: Option<u64>,
    /// Newest timestamp ever offered (drives the watermark).
    pub reorder_max_seen: u64,
    /// How far the newest seen timestamp runs ahead of the newest emitted
    /// one — the reorder buffer's current watermark lag, in stream time.
    pub reorder_lag: u64,
    /// Correlation token of the last frame processed for this tenant.
    pub last_frame: String,
    /// When this tenant's state was last checkpointed (unix milliseconds):
    /// the newest snapshot written — or restored at boot — by this
    /// process. `None` until the first checkpoint touches the tenant.
    pub last_checkpoint_unix_ms: Option<u64>,
}

/// The shard worker pool: `config.shards` threads, each owning the
/// pipelines of the tenants that hash onto it, plus a supervisor thread
/// that respawns any worker that dies outside shutdown.
pub struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// The periodic checkpoint driver (`--checkpoint-interval`); `None`
    /// when checkpointing is disabled.
    ticker: Mutex<Option<JoinHandle<()>>>,
}

impl ShardPool {
    /// Start the workers and their supervisor.
    #[allow(clippy::too_many_arguments)] // crate-internal; one arg per sink
    pub(crate) fn start(
        config: &ServiceConfig,
        metrics: Arc<Metrics>,
        sink: Arc<IncidentSink>,
        quarantine: Arc<QuarantineSink>,
        blackbox: Arc<BlackboxWriter>,
        factory: LocalizerFactory,
        wal: Option<Arc<FrameWal>>,
        checkpoints: Option<Arc<CheckpointStore>>,
    ) -> ShardPool {
        let queues: Vec<Arc<ShardQueue>> = (0..config.shards)
            .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
            .collect();
        let shared = Arc::new(PoolShared {
            queues,
            metrics,
            sink,
            quarantine,
            factory,
            pipeline_config: config.pipeline,
            detector_config: config.detect.then(|| DetectorConfig {
                sigma_threshold: config.detect_threshold,
                seasonal_period: config.seasonal_period,
                ..DetectorConfig::default()
            }),
            window: config.forecast_window,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
            reorder_window: config.reorder_window,
            max_lateness_ms: config.max_lateness.as_millis() as u64,
            flight_capacity: config.flight_recorder_capacity,
            blackbox,
            wal,
            checkpoints,
            debug: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(
            (0..shared.queues.len())
                .map(|i| spawn_worker(i, &shared))
                .collect(),
        ));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("rapd-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &workers))
                .expect("spawn supervisor")
        };
        let ticker =
            (shared.checkpoints.is_some() && !config.checkpoint_interval.is_zero()).then(|| {
                let shared = Arc::clone(&shared);
                let interval = config.checkpoint_interval;
                std::thread::Builder::new()
                    .name("rapd-checkpointer".to_string())
                    .spawn(move || checkpoint_ticker(&shared, interval))
                    .expect("spawn checkpointer")
            });
        ShardPool {
            shared,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            ticker: Mutex::new(ticker),
        }
    }

    /// The shard a tenant hashes onto (FNV-1a, stable across runs).
    pub fn shard_for(&self, tenant: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in tenant.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.shared.queues.len() as u64) as usize
    }

    /// Queue one frame onto the tenant's shard (drop-oldest on overflow).
    /// `id` is the frame's correlation token, minted at the observe verb
    /// so quarantine records of rejected twins share it. A timestamp
    /// routes the frame through the tenant's reorder buffer; `None`
    /// processes it in arrival order.
    pub fn ingest(&self, id: obs::FrameId, tenant: &str, frame: mdkpi::LeafFrame, ts: Option<u64>) {
        let shard = self.shard_for(tenant);
        self.shared.queues[shard].push_frame(
            id,
            Arc::from(tenant),
            frame,
            ts,
            self.shared.metrics.shard(shard),
        );
    }

    /// Per-tenant live internals for the `debug` control verb, sorted by
    /// tenant id. Each snapshot reflects the tenant's state after its most
    /// recently processed frame.
    pub fn tenant_debug(&self) -> Vec<(String, TenantDebug)> {
        let map = lock_recover(&self.shared.debug);
        let mut entries: Vec<(String, TenantDebug)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Current depth of every shard queue (frames waiting for a worker).
    pub fn queue_depths(&self) -> Vec<u64> {
        (0..self.shared.queues.len())
            .map(|i| self.shared.metrics.shard(i).depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Post a barrier to every shard and wait for all of them to drain
    /// everything queued before it. Returns whether the flush completed
    /// within the timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let gate = Arc::new(FlushGate::new(self.shared.queues.len()));
        for queue in &self.shared.queues {
            queue.push_control(Job::Barrier(Arc::clone(&gate)));
        }
        gate.wait(timeout)
    }

    /// Post a checkpoint job to every shard and wait for all of them to
    /// snapshot their tenants (a no-op without a checkpoint store).
    /// Returns whether every shard acknowledged within the timeout.
    pub fn checkpoint_all(&self, timeout: Duration) -> bool {
        post_checkpoint(&self.shared, timeout)
    }

    /// Stop the supervisor, then every worker after it drains its queue.
    /// Idempotent.
    pub fn shutdown(&self) {
        // Stop the supervisor first so a worker exiting on its Shutdown
        // job is not mistaken for a crash and respawned.
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        if let Some(ticker) = lock_recover(&self.ticker).take() {
            let _ = ticker.join();
        }
        if let Some(supervisor) = lock_recover(&self.supervisor).take() {
            let _ = supervisor.join();
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_recover(&self.workers));
        if workers.is_empty() {
            return;
        }
        for queue in &self.shared.queues {
            queue.push_control(Job::Shutdown);
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Post one checkpoint job per shard and wait for the acknowledgements.
fn post_checkpoint(shared: &PoolShared, timeout: Duration) -> bool {
    let gate = Arc::new(FlushGate::new(shared.queues.len()));
    for queue in &shared.queues {
        queue.push_control(Job::Checkpoint(Arc::clone(&gate)));
    }
    gate.wait(timeout)
}

/// The periodic checkpoint driver: fire [`post_checkpoint`] every
/// `interval`, polling the shutdown flag between short sleeps so shutdown
/// never waits out a long interval.
fn checkpoint_ticker(shared: &PoolShared, interval: Duration) {
    const TICK: Duration = Duration::from_millis(50);
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutting_down.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(TICK);
            slept += TICK;
        }
        post_checkpoint(shared, interval.max(Duration::from_secs(60)));
    }
}

/// Wall clock in unix milliseconds (0 if the clock is before the epoch).
fn unix_millis_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// The config fingerprint stamped into (and checked against) checkpoints.
fn config_guard(shared: &PoolShared) -> ConfigGuard {
    ConfigGuard {
        detect: shared.detector_config.is_some(),
        seasonal_period: shared
            .detector_config
            .as_ref()
            .map_or(0, |d| d.seasonal_period),
        residual_window: shared
            .detector_config
            .as_ref()
            .map_or(0, |d| d.residual_window),
        window: shared.window,
    }
}

fn spawn_worker(shard: usize, shared: &Arc<PoolShared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("rapd-shard-{shard}"))
        .spawn(move || worker_loop(shard, &shared))
        .expect("spawn shard worker")
}

/// Poll worker liveness and respawn any thread that died outside
/// shutdown. The dead worker's tenant pipelines and breaker state die
/// with it; the respawned worker rebuilds pipelines lazily, so the
/// shard's open-breaker gauge is reset alongside.
fn supervisor_loop(shared: &Arc<PoolShared>, workers: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.shutting_down.load(Ordering::Relaxed) {
        {
            let mut workers = lock_recover(workers);
            for shard in 0..workers.len() {
                if !workers[shard].is_finished() {
                    continue;
                }
                let dead = std::mem::replace(&mut workers[shard], spawn_worker(shard, shared));
                let _ = dead.join();
                shared
                    .metrics
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .shard(shard)
                    .breaker_open
                    .store(0, Ordering::Relaxed);
                obs::warn(
                    "rapd.shard",
                    "worker_respawned",
                    &[("shard", obs::Value::U64(shard as u64))],
                );
            }
        }
        std::thread::sleep(SUPERVISE_INTERVAL);
    }
}

type TenantPipeline = LocalizationPipeline<MovingAverage, Box<dyn Localizer>>;

/// One tenant's processing engine: classic (pre-labelled frames, external
/// alarm) or detecting (raw frames, self-triggered localization).
enum TenantEngine {
    /// History-replay forecasting over labelled frames.
    Classic(TenantPipeline),
    /// Streaming detector in front of the localizer (boxed: the detector
    /// state dwarfs the classic variant).
    Detecting(Box<DetectingPipeline<Box<dyn Localizer>>>),
}

impl TenantEngine {
    /// Build the engine the pool is configured for.
    fn build(shared: &PoolShared) -> TenantEngine {
        match shared.detector_config {
            Some(detector) => TenantEngine::Detecting(Box::new(
                DetectingPipeline::try_new(
                    shared.pipeline_config,
                    detector,
                    (shared.factory)(shared.pipeline_config.localize_threads),
                )
                .expect("service config validated at boot"),
            )),
            None => TenantEngine::Classic(
                LocalizationPipeline::try_new(
                    shared.pipeline_config,
                    MovingAverage::new(shared.window),
                    (shared.factory)(shared.pipeline_config.localize_threads),
                )
                .expect("service config validated at boot"),
            ),
        }
    }

    fn observe(
        &mut self,
        frame: &mdkpi::LeafFrame,
    ) -> Result<Option<pipeline::IncidentReport>, pipeline::PipelineError> {
        match self {
            TenantEngine::Classic(p) => p.observe(frame),
            TenantEngine::Detecting(p) => p.observe(frame),
        }
    }

    /// Detector wall-clock of the most recent frame; `None` in classic
    /// mode (there is no streaming-detector stage to time).
    fn last_detector_seconds(&self) -> Option<f64> {
        match self {
            TenantEngine::Classic(_) => None,
            TenantEngine::Detecting(p) => Some(p.last_detector_seconds()),
        }
    }

    /// The engine kind name reported by the `debug` control verb.
    fn kind_str(&self) -> &'static str {
        match self {
            TenantEngine::Classic(_) => "classic",
            TenantEngine::Detecting(_) => "detecting",
        }
    }

    /// Streaming-detector phase name; `None` in classic mode.
    fn detector_phase(&self) -> Option<&'static str> {
        match self {
            TenantEngine::Classic(_) => None,
            TenantEngine::Detecting(p) => Some(p.detector().state().as_str()),
        }
    }
}

/// Render a caught panic payload for the event log.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The per-tenant state one shard worker owns.
#[derive(Default)]
struct WorkerState {
    engines: HashMap<Arc<str>, TenantEngine>,
    breakers: HashMap<Arc<str>, Breaker>,
    reorder: HashMap<Arc<str>, ReorderBuffer<(obs::FrameId, mdkpi::LeafFrame)>>,
    /// Highest frame sequence dequeued per tenant — the WAL
    /// acknowledgement candidate when the reorder buffer is empty.
    consumed: HashMap<Arc<str>, u64>,
    /// Tenants whose checkpoint (or lack of one) was already resolved by
    /// this worker; guards the lazy restore against repeated store reads.
    restored: HashSet<Arc<str>>,
    /// When each tenant was last checkpointed (or restored), unix ms.
    last_checkpoint: HashMap<Arc<str>, u64>,
}

impl WorkerState {
    /// Release every buffered frame of every tenant through the pipeline
    /// (flush barriers and shutdown).
    fn drain_reorder(&mut self, shard: usize, shared: &PoolShared) {
        let mut ready: Vec<(Arc<str>, obs::FrameId, mdkpi::LeafFrame)> = Vec::new();
        for (tenant, buffer) in &mut self.reorder {
            for (_, (id, frame)) in buffer.drain() {
                ready.push((Arc::clone(tenant), id, frame));
            }
        }
        for (tenant, id, frame) in ready {
            process_frame(shard, shared, self, &tenant, &id, &frame);
        }
    }
}

fn worker_loop(shard: usize, shared: &PoolShared) {
    let shard_metrics = shared.metrics.shard(shard);
    let queue = &shared.queues[shard];
    let mut state = WorkerState::default();
    // Each worker keeps a bounded ring of its recent spans and events;
    // blackbox dumps snapshot every live ring post mortem. The guard
    // deregisters the ring when the worker dies, so a respawned worker
    // re-registers under the same name with a fresh ring.
    let _recorder = (shared.flight_capacity > 0)
        .then(|| obs::recorder::register(&format!("shard-{shard}"), shared.flight_capacity));
    loop {
        // fault injection: a shard thread dying between jobs (before the
        // pop, so the crash never takes a dequeued frame with it)
        obs::fail::apply("shard-worker-panic");
        match queue.pop() {
            Job::Shutdown => {
                state.drain_reorder(shard, shared);
                return;
            }
            Job::Barrier(gate) => {
                // the barrier is an everything-before-it fence, so frames
                // still parked in reorder buffers must go through first
                state.drain_reorder(shard, shared);
                gate.done();
            }
            Job::Checkpoint(gate) => {
                checkpoint_shard(shared, &mut state);
                gate.done();
            }
            Job::Frame {
                id,
                tenant,
                frame,
                ts,
            } => {
                shard_metrics.depth.fetch_sub(1, Ordering::Relaxed);
                restore_tenant(shard, shared, &mut state, &tenant);
                let seen = state.consumed.entry(Arc::clone(&tenant)).or_insert(0);
                *seen = (*seen).max(id.seq());
                let Some(ts) = ts else {
                    process_frame(shard, shared, &mut state, &tenant, &id, &frame);
                    continue;
                };
                let buffer = state.reorder.entry(Arc::clone(&tenant)).or_default();
                match buffer.offer(
                    ts,
                    (id.clone(), frame),
                    shared.reorder_window,
                    shared.max_lateness_ms,
                ) {
                    Ok(ready) => {
                        for (_, (id, frame)) in ready {
                            process_frame(shard, shared, &mut state, &tenant, &id, &frame);
                        }
                    }
                    Err(rejected) => {
                        let (reason, detail) = match rejected {
                            Rejected::Late { last_emitted } => (
                                "late",
                                format!("ts {ts} behind last emitted ts {last_emitted}"),
                            ),
                            Rejected::Replay => ("replay", format!("ts {ts} was already accepted")),
                        };
                        shared.quarantine.record(QuarantineRecord {
                            tenant: tenant.to_string(),
                            frame_id: Some(id.as_str().to_string()),
                            ts: Some(ts),
                            reason,
                            detail,
                            rows: Vec::new(),
                        });
                    }
                }
            }
        }
    }
}

/// Snapshot every tenant engine this worker owns to the checkpoint store
/// and compact each tenant's WAL segment up to the acknowledged sequence.
/// The acknowledgement is conservative: with frames parked in the reorder
/// buffer it stops just short of the oldest parked one, so a crash after
/// the compaction still replays everything not yet through the pipeline.
fn checkpoint_shard(shared: &PoolShared, state: &mut WorkerState) {
    let Some(store) = &shared.checkpoints else {
        return;
    };
    let now_ms = unix_millis_now();
    let now = Instant::now();
    let guard = config_guard(shared);
    let tenants: Vec<Arc<str>> = state.engines.keys().cloned().collect();
    for tenant in tenants {
        let Some(engine) = state.engines.get(&tenant) else {
            continue;
        };
        let engine_snapshot = match engine {
            TenantEngine::Classic(p) => EngineCheckpoint::Classic(p.state_snapshot()),
            TenantEngine::Detecting(p) => EngineCheckpoint::Detecting(p.detector_snapshot()),
        };
        let consumed = state.consumed.get(&tenant).copied().unwrap_or(0);
        let reorder = state.reorder.get(&tenant);
        let wal_ack = reorder
            .and_then(|b| b.buf.values().map(|(id, _)| id.seq()).min())
            .map_or(consumed, |oldest_parked| oldest_parked.saturating_sub(1));
        let breaker = state.breakers.get(&tenant);
        let checkpoint = TenantCheckpoint {
            tenant: tenant.to_string(),
            ts_unix_ms: now_ms,
            wal_ack,
            frame_seq: consumed,
            reorder_last_emitted: reorder.and_then(|b| b.last_emitted),
            reorder_max_seen: reorder.map_or(0, |b| b.max_seen),
            breaker_failures: breaker.map_or(0, |b| b.failures),
            breaker_state: breaker.map_or("closed", Breaker::state_str).to_string(),
            breaker_remaining_ms: breaker.map_or(0, |b| match b.state {
                BreakerState::Open { until } => {
                    until.saturating_duration_since(now).as_millis() as u64
                }
                _ => 0,
            }),
            guard: guard.clone(),
            engine: engine_snapshot,
        };
        store.write(&checkpoint);
        if let Some(wal) = &shared.wal {
            wal.compact(&tenant, wal_ack);
        }
        state.last_checkpoint.insert(Arc::clone(&tenant), now_ms);
        if let Some(d) = lock_recover(&shared.debug).get_mut(tenant.as_ref()) {
            d.last_checkpoint_unix_ms = Some(now_ms);
        }
    }
}

/// Lazily resolve an unseen tenant's checkpoint before its first frame:
/// restore the engine, breaker, reorder watermark, and sequence state
/// from the latest valid snapshot — or fall through to a counted,
/// warned-about cold start. A tenant whose engine is already live (a
/// post-panic worker respawn) keeps its live state untouched.
fn restore_tenant(shard: usize, shared: &PoolShared, state: &mut WorkerState, tenant: &Arc<str>) {
    if !state.restored.insert(Arc::clone(tenant)) {
        return;
    }
    let Some(store) = &shared.checkpoints else {
        return;
    };
    if state.engines.contains_key(tenant) {
        return;
    }
    let Some(checkpoint) = store.load(tenant) else {
        rewarm(shared, tenant, "no usable checkpoint");
        return;
    };
    if checkpoint.tenant != tenant.as_ref() {
        // The snapshot at this tenant's path embeds a different tenant
        // id (a hand-moved spool file, or a stem collision from an older
        // lossy sanitizer): adopting it would silently resume from
        // foreign detector state.
        obs::warn(
            "rapd.shard",
            "checkpoint_tenant_mismatch",
            &[
                ("tenant", obs::Value::Str(tenant.to_string())),
                ("snapshot_tenant", obs::Value::Str(checkpoint.tenant)),
            ],
        );
        rewarm(shared, tenant, "checkpoint belongs to a different tenant");
        return;
    }
    if checkpoint.guard != config_guard(shared) {
        obs::warn(
            "rapd.shard",
            "checkpoint_config_mismatch",
            &[("tenant", obs::Value::Str(tenant.to_string()))],
        );
        rewarm(shared, tenant, "daemon reconfigured since snapshot");
        return;
    }
    let engine = match &checkpoint.engine {
        EngineCheckpoint::Detecting(snapshot) => {
            shared.detector_config.as_ref().and_then(|detector| {
                DetectingPipeline::try_restore(
                    shared.pipeline_config,
                    *detector,
                    snapshot,
                    (shared.factory)(shared.pipeline_config.localize_threads),
                )
                .map(|p| TenantEngine::Detecting(Box::new(p)))
            })
        }
        EngineCheckpoint::Classic(snapshot) => LocalizationPipeline::try_restore(
            shared.pipeline_config,
            MovingAverage::new(shared.window),
            (shared.factory)(shared.pipeline_config.localize_threads),
            snapshot,
        )
        .map(TenantEngine::Classic),
    };
    let Some(engine) = engine else {
        rewarm(shared, tenant, "snapshot rejected by the pipeline");
        return;
    };
    state.engines.insert(Arc::clone(tenant), engine);
    let mut breaker = Breaker {
        failures: checkpoint.breaker_failures,
        state: match checkpoint.breaker_state.as_str() {
            "open" => BreakerState::Open {
                until: Instant::now() + Duration::from_millis(checkpoint.breaker_remaining_ms),
            },
            "half_open" => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        },
    };
    if shared.breaker_threshold == 0 {
        // the breaker was disabled since the snapshot: never resume open
        breaker = Breaker::default();
    } else if breaker.state != BreakerState::Closed {
        // mirror a live opening so the close path balances the gauge
        shared
            .metrics
            .shard(shard)
            .breaker_open
            .fetch_add(1, Ordering::Relaxed);
    }
    state.breakers.insert(Arc::clone(tenant), breaker);
    if checkpoint.reorder_last_emitted.is_some() || checkpoint.reorder_max_seen > 0 {
        let buffer = state.reorder.entry(Arc::clone(tenant)).or_default();
        buffer.last_emitted = checkpoint.reorder_last_emitted;
        buffer.max_seen = checkpoint.reorder_max_seen;
    }
    state
        .consumed
        .insert(Arc::clone(tenant), checkpoint.frame_seq);
    state
        .last_checkpoint
        .insert(Arc::clone(tenant), checkpoint.ts_unix_ms);
    shared
        .metrics
        .checkpoint_restores
        .fetch_add(1, Ordering::Relaxed);
    obs::info(
        "rapd.shard",
        "checkpoint_restored",
        &[
            ("tenant", obs::Value::Str(tenant.to_string())),
            ("wal_ack", obs::Value::U64(checkpoint.wal_ack)),
            ("snapshot_unix_ms", obs::Value::U64(checkpoint.ts_unix_ms)),
        ],
    );
}

/// Account and announce a detector cold start: recovery found no usable
/// checkpoint, so the tenant re-warms blind for `min_samples` (detect
/// mode) or `warmup` (classic) frames before it can alarm again.
fn rewarm(shared: &PoolShared, tenant: &Arc<str>, reason: &str) {
    shared
        .metrics
        .detector_rewarms
        .fetch_add(1, Ordering::Relaxed);
    let blindness_frames = match &shared.detector_config {
        Some(detector) => detector.min_samples,
        None => shared.pipeline_config.warmup,
    };
    obs::warn(
        "rapd.shard",
        "detector_rewarm",
        &[
            ("tenant", obs::Value::Str(tenant.to_string())),
            ("reason", obs::Value::Str(reason.to_string())),
            (
                "estimated_blindness_frames",
                obs::Value::U64(blindness_frames as u64),
            ),
        ],
    );
}

/// Run one frame through the tenant's breaker and pipeline, with panic
/// containment, incident recording, and breaker bookkeeping.
fn process_frame(
    shard: usize,
    shared: &PoolShared,
    state: &mut WorkerState,
    tenant: &Arc<str>,
    id: &obs::FrameId,
    frame: &mdkpi::LeafFrame,
) {
    let metrics = &shared.metrics;
    let shard_metrics = metrics.shard(shard);
    // Every span and event emitted while this frame is in flight carries
    // its correlation token, including breaker and panic events.
    let _frame = obs::frame::frame_scope(id);
    let admission = state
        .breakers
        .entry(Arc::clone(tenant))
        .or_default()
        .admit(Instant::now());
    if admission == Admission::Shed {
        shard_metrics.shed.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let frame_span = obs::span("rapd.frame");
    frame_span.record("shard", shard as u64);
    frame_span.record("tenant", tenant.as_ref());
    let start = Instant::now();
    // One bad frame (or one buggy localizer) must not kill the
    // worker and its other tenants: panics are contained here
    // and handled as pipeline failures.
    let engines = &mut state.engines;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        // fault injection: a pipeline panicking mid-frame,
        // scoped to one tenant via the tag
        obs::fail::apply_tagged("pipeline-panic", tenant.as_ref());
        let engine = engines
            .entry(Arc::clone(tenant))
            .or_insert_with(|| TenantEngine::build(shared));
        engine.observe(frame)
    }));
    let failed = match outcome {
        Err(payload) => {
            // The pipeline may be torn mid-update: quarantine
            // it. The tenant's next frame builds a fresh one.
            state.engines.remove(tenant);
            metrics
                .pipeline_restarts_panic
                .fetch_add(1, Ordering::Relaxed);
            obs::error(
                "rapd.shard",
                "pipeline_panic_quarantined",
                &[
                    ("tenant", obs::Value::Str(tenant.to_string())),
                    ("reason", obs::Value::Str(panic_message(payload.as_ref()))),
                ],
            );
            shared.blackbox.dump("panic", tenant, Some(id.as_str()));
            true
        }
        Ok(Err(e)) => {
            metrics.pipeline_errors.fetch_add(1, Ordering::Relaxed);
            obs::error(
                "rapd.shard",
                "pipeline_error",
                &[
                    ("tenant", obs::Value::Str(tenant.to_string())),
                    ("reason", obs::Value::Str(e.to_string())),
                ],
            );
            true
        }
        Ok(Ok(Some(mut report))) => {
            metrics.localization.observe(start.elapsed().as_secs_f64());
            metrics.alarms.fetch_add(1, Ordering::Relaxed);
            // one observation per stage per incident, so every
            // stage count in /metrics equals rapd_alarms_total
            metrics.stages.cp.observe(report.timings.cp_seconds);
            metrics.stages.search.observe(report.timings.search_seconds);
            metrics.stages.detect.observe(report.timings.detect_seconds);
            if let Some(counter) = report
                .severity
                .and_then(|s| metrics.detections.for_label(s.as_str()))
            {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            frame_span.record("alarm", true);
            obs::info(
                "rapd.shard",
                "incident",
                &[
                    ("tenant", obs::Value::Str(tenant.to_string())),
                    ("step", obs::Value::U64(report.step as u64)),
                    ("raps", obs::Value::U64(report.raps.len() as u64)),
                    ("total_deviation", obs::Value::F64(report.total_deviation)),
                    (
                        "deadline_exceeded",
                        obs::Value::Bool(report.deadline_exceeded),
                    ),
                ],
            );
            let deadline_exceeded = report.deadline_exceeded;
            report.frame_id = Some(id.as_str().to_string());
            shared
                .sink
                .record(IncidentRecord::from_report(tenant, &report));
            // ingest→incident latency, measured from the correlation id's
            // mint instant at the observe verb
            metrics.e2e.observe(id.elapsed_seconds());
            if deadline_exceeded {
                metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                shared.blackbox.dump("deadline", tenant, Some(id.as_str()));
            }
            // a deadline overrun is a breaker failure: a tenant
            // whose every localization times out should be shed
            deadline_exceeded
        }
        Ok(Ok(None)) => false,
    };
    // Detect mode times the streaming detector on *every* frame (its
    // histogram tracks frames processed, not alarms). A panicked engine
    // was just removed, so nothing is observed for that frame.
    if let Some(seconds) = state
        .engines
        .get(tenant)
        .and_then(TenantEngine::last_detector_seconds)
    {
        metrics.stages.detector.observe(seconds);
    }
    let breaker = state.breakers.entry(Arc::clone(tenant)).or_default();
    if failed {
        if breaker.on_failure(
            shared.breaker_threshold,
            shared.breaker_cooldown,
            Instant::now(),
        ) {
            shard_metrics.breaker_open.fetch_add(1, Ordering::Relaxed);
            obs::warn(
                "rapd.shard",
                "breaker_opened",
                &[("tenant", obs::Value::Str(tenant.to_string()))],
            );
            shared
                .blackbox
                .dump("breaker_open", tenant, Some(id.as_str()));
        }
    } else if breaker.on_success() {
        shard_metrics.breaker_open.fetch_sub(1, Ordering::Relaxed);
        obs::info(
            "rapd.shard",
            "breaker_closed",
            &[("tenant", obs::Value::Str(tenant.to_string()))],
        );
    }
    shard_metrics.processed.fetch_add(1, Ordering::Relaxed);
    // Refresh the tenant's live-internals snapshot for the `debug` verb
    // (after breaker bookkeeping, so an opening breaker shows as open).
    let reorder = state.reorder.get(tenant);
    let snapshot = TenantDebug {
        shard,
        engine: state
            .engines
            .get(tenant)
            .map_or("quarantined", TenantEngine::kind_str),
        detector_phase: state
            .engines
            .get(tenant)
            .and_then(TenantEngine::detector_phase),
        breaker: state
            .breakers
            .get(tenant)
            .map_or("closed", Breaker::state_str),
        reorder_buffered: reorder.map_or(0, |b| b.buf.len()),
        reorder_last_emitted: reorder.and_then(|b| b.last_emitted),
        reorder_max_seen: reorder.map_or(0, |b| b.max_seen),
        reorder_lag: reorder.map_or(0, |b| {
            b.max_seen
                .saturating_sub(b.last_emitted.unwrap_or(b.max_seen))
        }),
        last_frame: id.as_str().to_string(),
        last_checkpoint_unix_ms: state.last_checkpoint.get(tenant).copied(),
    };
    lock_recover(&shared.debug).insert(tenant.to_string(), snapshot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{RapMinerLocalizer, ScoredCombination};
    use mdkpi::{LeafFrame, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2"])
            .build()
            .unwrap()
    }

    fn frame(schema: &Schema, v1: f64, v2: f64) -> LeafFrame {
        let mut b = LeafFrame::builder(schema);
        b.push(&[mdkpi::ElementId(0)], v1, 0.0);
        b.push(&[mdkpi::ElementId(1)], v2, 0.0);
        b.build()
    }

    fn small_config(queue_capacity: usize) -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            queue_capacity,
            forecast_window: 3,
            pipeline: pipeline::PipelineConfig {
                history_len: 32,
                warmup: 3,
                alarm_threshold: 0.2,
                leaf_threshold: 0.3,
                k: 2,
                ..pipeline::PipelineConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    fn default_factory() -> LocalizerFactory {
        Arc::new(|_threads| Box::new(RapMinerLocalizer::default()) as Box<dyn Localizer>)
    }

    fn sink(metrics: &Arc<Metrics>) -> Arc<IncidentSink> {
        Arc::new(IncidentSink::open(None, 8, 0, Arc::clone(metrics)).unwrap())
    }

    fn quarantine(metrics: &Arc<Metrics>) -> Arc<QuarantineSink> {
        Arc::new(QuarantineSink::open(None, 8, 0, Arc::clone(metrics)).unwrap())
    }

    fn blackbox_writer(metrics: &Arc<Metrics>) -> Arc<BlackboxWriter> {
        Arc::new(BlackboxWriter::open(None, Arc::clone(metrics)).unwrap())
    }

    /// Mint a correlation id and ingest — these tests don't inspect the
    /// token, they exercise queueing and processing.
    fn ingest(pool: &ShardPool, tenant: &str, frame: LeafFrame, ts: Option<u64>) {
        pool.ingest(obs::FrameId::mint(tenant), tenant, frame, ts);
    }

    #[test]
    fn tenants_hash_deterministically_within_range() {
        let cfg = small_config(16);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let quarantine = quarantine(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            sink,
            quarantine,
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        for tenant in ["a", "b", "edge-7", ""] {
            let s = pool.shard_for(tenant);
            assert!(s < 2);
            assert_eq!(s, pool.shard_for(tenant));
        }
        pool.shutdown();
    }

    #[test]
    fn steady_traffic_processes_without_alarms() {
        let cfg = small_config(64);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        for _ in 0..10 {
            ingest(&pool, "tenant", frame(&s, 50.0, 50.0), None);
        }
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.total_processed(), 10);
        assert_eq!(metrics.total_dropped(), 0);
        assert_eq!(metrics.alarms.load(Ordering::Relaxed), 0);
        pool.shutdown();
    }

    #[test]
    fn collapse_fires_alarm_into_sink() {
        let cfg = small_config(64);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        for _ in 0..8 {
            ingest(&pool, "edge", frame(&s, 100.0, 100.0), None);
        }
        ingest(&pool, "edge", frame(&s, 0.0, 100.0), None);
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.alarms.load(Ordering::Relaxed), 1);
        let incidents = sink.recent(10);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].tenant, "edge");
        assert_eq!(incidents[0].raps[0].0, "(a1)");
        assert_eq!(metrics.localization.count(), 1);
        // each stage observes exactly once per incident, so the stage
        // counts track the alarm counter
        assert_eq!(metrics.stages.cp.count(), 1);
        assert_eq!(metrics.stages.search.count(), 1);
        assert_eq!(metrics.stages.detect.count(), 1);
        // the RAPMiner localizer attaches a consistent localization trace
        let trace = incidents[0].trace.as_ref().expect("trace attached");
        assert!(trace.is_consistent());
        pool.shutdown();
    }

    #[test]
    fn overflow_drops_oldest_and_accounts_exactly() {
        // a localizer that sleeps long enough for the queue to overflow
        struct Slow(RapMinerLocalizer);
        impl Localizer for Slow {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn localize(
                &self,
                frame: &LeafFrame,
                k: usize,
            ) -> baselines::Result<Vec<ScoredCombination>> {
                std::thread::sleep(Duration::from_millis(5));
                self.0.localize(frame, k)
            }
        }
        let cfg = ServiceConfig {
            shards: 1,
            queue_capacity: 4,
            forecast_window: 2,
            pipeline: pipeline::PipelineConfig {
                history_len: 8,
                warmup: 1,
                // alarm on every post-warmup frame: values alternate wildly
                alarm_threshold: 0.01,
                leaf_threshold: 0.01,
                k: 1,
                ..pipeline::PipelineConfig::default()
            },
            ..ServiceConfig::default()
        };
        let metrics = Arc::new(Metrics::new(1));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            Arc::new(|_threads| Box::new(Slow(RapMinerLocalizer::default())) as Box<dyn Localizer>),
            None,
            None,
        );
        let s = schema();
        let total = 200;
        for i in 0..total {
            let v = if i % 2 == 0 { 10.0 } else { 200.0 };
            ingest(&pool, "t", frame(&s, v, v), None);
        }
        assert!(
            pool.flush(Duration::from_secs(30)),
            "flush must not deadlock"
        );
        let processed = metrics.total_processed();
        let dropped = metrics.total_dropped();
        assert_eq!(
            processed + dropped,
            total,
            "every frame processed or accounted dropped"
        );
        assert!(dropped > 0, "slow localizer must overflow a 4-deep queue");
        // after the flush barrier the queue is empty again
        assert_eq!(metrics.shard(0).depth.load(Ordering::Relaxed), 0);
        pool.shutdown();
    }

    #[test]
    fn flush_on_idle_pool_returns_immediately() {
        let cfg = small_config(4);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let quarantine = quarantine(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            sink,
            quarantine,
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        assert!(pool.flush(Duration::from_secs(5)));
        pool.shutdown();
    }

    /// A localizer that panics while its switch is on — a stand-in for a
    /// pipeline bug triggered by specific tenant data.
    struct Panicky {
        armed: Arc<AtomicBool>,
        inner: RapMinerLocalizer,
    }

    impl Localizer for Panicky {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn localize(
            &self,
            frame: &LeafFrame,
            k: usize,
        ) -> baselines::Result<Vec<ScoredCombination>> {
            assert!(!self.armed.load(Ordering::Relaxed), "injected pipeline bug");
            self.inner.localize(frame, k)
        }
    }

    fn panicky_factory(armed: &Arc<AtomicBool>) -> LocalizerFactory {
        let armed = Arc::clone(armed);
        Arc::new(move |_threads| {
            Box::new(Panicky {
                armed: Arc::clone(&armed),
                inner: RapMinerLocalizer::default(),
            }) as Box<dyn Localizer>
        })
    }

    /// A localizer that *errors* (not panics) while its switch is on. The
    /// pipeline survives an error, so consecutive failures accumulate on
    /// the same pipeline — exactly the pattern the breaker watches for.
    struct Faily {
        armed: Arc<AtomicBool>,
        inner: RapMinerLocalizer,
    }

    impl Localizer for Faily {
        fn name(&self) -> &'static str {
            "faily"
        }
        fn localize(
            &self,
            frame: &LeafFrame,
            k: usize,
        ) -> baselines::Result<Vec<ScoredCombination>> {
            if self.armed.load(Ordering::Relaxed) {
                return Err(baselines::Error::UnlabelledFrame { method: "faily" });
            }
            self.inner.localize(frame, k)
        }
    }

    fn faily_factory(armed: &Arc<AtomicBool>) -> LocalizerFactory {
        let armed = Arc::clone(armed);
        Arc::new(move |_threads| {
            Box::new(Faily {
                armed: Arc::clone(&armed),
                inner: RapMinerLocalizer::default(),
            }) as Box<dyn Localizer>
        })
    }

    /// An alarm-on-every-frame single-shard config for fault tests.
    fn touchy_config(breaker_threshold: u32, cooldown: Duration) -> ServiceConfig {
        ServiceConfig {
            shards: 1,
            queue_capacity: 1024,
            forecast_window: 2,
            breaker_threshold,
            breaker_cooldown: cooldown,
            pipeline: pipeline::PipelineConfig {
                history_len: 8,
                warmup: 1,
                alarm_threshold: 0.01,
                leaf_threshold: 0.01,
                k: 1,
                ..pipeline::PipelineConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    /// A geometric collapse: every post-warmup frame deviates hugely from
    /// the forecast, and because anomalous frames are excluded from the
    /// history, the alarms are *consecutive* — the breaker's trigger shape.
    fn collapsing_value(i: usize) -> f64 {
        1000.0 * 0.5f64.powi(i as i32)
    }

    #[test]
    fn panicking_pipeline_is_quarantined_and_worker_survives() {
        let cfg = touchy_config(0, Duration::from_secs(1)); // breaker off
        let armed = Arc::new(AtomicBool::new(true));
        let metrics = Arc::new(Metrics::new(1));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            panicky_factory(&armed),
            None,
            None,
        );
        let s = schema();
        let mut ingested = 0u64;
        for i in 0..6 {
            let v = collapsing_value(i);
            ingest(&pool, "victim", frame(&s, v, v), None);
            ingested += 1;
        }
        assert!(pool.flush(Duration::from_secs(10)));
        let restarts = metrics.pipeline_restarts_panic.load(Ordering::Relaxed);
        assert!(restarts >= 1, "alarming frames must hit the injected panic");
        // every frame is accounted even though localization panicked
        assert_eq!(metrics.total_processed(), ingested);
        assert_eq!(metrics.total_dropped(), 0);
        assert_eq!(metrics.total_shed(), 0);
        // disarm the bug: the tenant recovers on a fresh pipeline
        armed.store(false, Ordering::Relaxed);
        for i in 0..6 {
            let v = collapsing_value(i);
            ingest(&pool, "victim", frame(&s, v, v), None);
            ingested += 1;
        }
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.total_processed(), ingested);
        assert!(
            metrics.alarms.load(Ordering::Relaxed) >= 1,
            "recovered pipeline must localize again"
        );
        assert!(!sink.recent(10).is_empty());
        pool.shutdown();
    }

    #[test]
    fn breaker_opens_sheds_and_recovers_after_cooldown() {
        let cooldown = Duration::from_millis(100);
        let cfg = touchy_config(2, cooldown);
        let armed = Arc::new(AtomicBool::new(true));
        let metrics = Arc::new(Metrics::new(1));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            faily_factory(&armed),
            None,
            None,
        );
        let s = schema();
        let mut ingested = 0u64;
        // enough alarming frames to trip the 2-failure threshold, then
        // keep pushing into the open breaker
        for i in 0..10 {
            let v = collapsing_value(i);
            ingest(&pool, "flappy", frame(&s, v, v), None);
            ingested += 1;
            // serialize frames so "consecutive failures" is deterministic
            assert!(pool.flush(Duration::from_secs(10)));
        }
        assert!(
            metrics.total_shed() > 0,
            "open breaker must shed frames, got {} pipeline errors",
            metrics.pipeline_errors.load(Ordering::Relaxed)
        );
        assert_eq!(metrics.total_breaker_open(), 1, "breaker gauge up");
        assert_eq!(
            metrics.total_processed() + metrics.total_dropped() + metrics.total_shed(),
            ingested,
            "accounting invariant"
        );
        // heal the tenant and wait out the cooldown: the half-open probe
        // must close the breaker and frames must flow again
        armed.store(false, Ordering::Relaxed);
        std::thread::sleep(cooldown + Duration::from_millis(50));
        let processed_before = metrics.total_processed();
        for i in 0..4 {
            let v = collapsing_value(i);
            ingest(&pool, "flappy", frame(&s, v, v), None);
            ingested += 1;
            assert!(pool.flush(Duration::from_secs(10)));
        }
        assert_eq!(metrics.total_breaker_open(), 0, "breaker closed again");
        assert!(
            metrics.total_processed() >= processed_before + 4,
            "post-recovery frames must be processed, not shed"
        );
        assert_eq!(
            metrics.total_processed() + metrics.total_dropped() + metrics.total_shed(),
            ingested,
            "accounting invariant after recovery"
        );
        pool.shutdown();
    }

    #[test]
    fn breaker_state_machine_transitions() {
        let t0 = Instant::now();
        let cooldown = Duration::from_secs(5);
        let mut b = Breaker::default();
        assert_eq!(b.admit(t0), Admission::Process);
        // below threshold: stays closed
        assert!(!b.on_failure(3, cooldown, t0));
        assert!(!b.on_failure(3, cooldown, t0));
        assert_eq!(b.admit(t0), Admission::Process);
        // success resets the consecutive count
        assert!(!b.on_success());
        assert!(!b.on_failure(3, cooldown, t0));
        assert!(!b.on_failure(3, cooldown, t0));
        // third consecutive failure opens it
        assert!(b.on_failure(3, cooldown, t0));
        assert_eq!(b.admit(t0), Admission::Shed);
        assert_eq!(b.admit(t0 + Duration::from_secs(1)), Admission::Shed);
        // cooldown elapsed: half-open probe
        assert_eq!(b.admit(t0 + cooldown), Admission::Probe);
        // failed probe re-opens without a gauge change
        assert!(!b.on_failure(3, cooldown, t0 + cooldown));
        assert_eq!(b.admit(t0 + cooldown), Admission::Shed);
        // next probe succeeds: closed, gauge drops
        assert_eq!(b.admit(t0 + cooldown + cooldown), Admission::Probe);
        assert!(b.on_success());
        assert_eq!(b.admit(t0), Admission::Process);
        // threshold 0 disables the breaker entirely
        let mut off = Breaker::default();
        for _ in 0..100 {
            assert!(!off.on_failure(0, cooldown, t0));
        }
        assert_eq!(off.admit(t0), Admission::Process);
    }

    /// Offer a frame stamped with `ts` and return the released timestamps.
    fn offer(
        b: &mut ReorderBuffer<LeafFrame>,
        s: &Schema,
        ts: u64,
        window: usize,
        lateness: u64,
    ) -> Vec<u64> {
        b.offer(ts, frame(s, 1.0, 1.0), window, lateness)
            .unwrap_or_else(|r| panic!("ts {ts} rejected: {r:?}"))
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn reorder_buffer_emits_in_timestamp_order_behind_the_watermark() {
        let s = schema();
        let mut b = ReorderBuffer::default();
        // lateness 10: nothing is released until the watermark passes it
        assert_eq!(offer(&mut b, &s, 100, 32, 10), Vec::<u64>::new());
        assert_eq!(offer(&mut b, &s, 105, 32, 10), Vec::<u64>::new());
        // 102 arrives out of order but is still ahead of the watermark
        assert_eq!(offer(&mut b, &s, 102, 32, 10), Vec::<u64>::new());
        // 115 pushes the watermark to 105: releases 100, 102, 105 in order
        assert_eq!(offer(&mut b, &s, 115, 32, 10), vec![100, 102, 105]);
        assert_eq!(b.last_emitted, Some(105));
        // now 101 is behind the last emitted frame → late
        assert_eq!(
            b.offer(101, frame(&s, 1.0, 1.0), 32, 10),
            Err(Rejected::Late { last_emitted: 105 })
        );
    }

    #[test]
    fn reorder_buffer_rejects_replays() {
        let s = schema();
        let mut b = ReorderBuffer::default();
        assert_eq!(offer(&mut b, &s, 50, 32, 100), Vec::<u64>::new());
        // same ts while still buffered → replay
        assert_eq!(
            b.offer(50, frame(&s, 1.0, 1.0), 32, 100),
            Err(Rejected::Replay)
        );
        // emit it, then the same ts again → still replay, not late
        assert_eq!(offer(&mut b, &s, 200, 32, 100), vec![50]);
        assert_eq!(
            b.offer(50, frame(&s, 1.0, 1.0), 32, 100),
            Err(Rejected::Replay)
        );
        assert_eq!(
            b.offer(200, frame(&s, 1.0, 1.0), 32, 100),
            Err(Rejected::Replay),
            "the buffered watermark-driver ts is a replay too"
        );
    }

    #[test]
    fn reorder_buffer_overflow_releases_oldest_and_drain_empties() {
        let s = schema();
        let mut b = ReorderBuffer::default();
        // a huge lateness keeps the watermark at 0, so only the window
        // bound forces emission
        for ts in [10, 20, 30] {
            assert_eq!(offer(&mut b, &s, ts, 3, 1_000_000), Vec::<u64>::new());
        }
        assert_eq!(offer(&mut b, &s, 40, 3, 1_000_000), vec![10]);
        assert_eq!(b.buf.len(), 3);
        let drained: Vec<u64> = b.drain().into_iter().map(|(t, _)| t).collect();
        assert_eq!(drained, vec![20, 30, 40]);
        assert_eq!(b.last_emitted, Some(40));
        assert!(b.buf.is_empty());
    }

    #[test]
    fn timestamped_frames_reorder_and_flush_drains_the_buffer() {
        let cfg = ServiceConfig {
            max_lateness: Duration::from_millis(1_000_000),
            ..small_config(64)
        };
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let quarantine = quarantine(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Arc::clone(&quarantine),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        // steady history, then a collapse frame — sent FIRST but stamped
        // LAST, so only reordering can place it after the history
        ingest(&pool, "edge", frame(&s, 0.0, 100.0), Some(9_000));
        for ts in 1..=8u64 {
            ingest(&pool, "edge", frame(&s, 100.0, 100.0), Some(ts * 1_000));
        }
        // the huge lateness parks everything until the flush barrier
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.total_processed(), 9, "flush drains the buffer");
        assert_eq!(
            metrics.alarms.load(Ordering::Relaxed),
            1,
            "the collapse frame must be processed last, after warmup"
        );
        assert_eq!(sink.recent(10)[0].raps[0].0, "(a1)");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_reorder_buffers_in_watermark_order() {
        // Regression: frames still parked in reorder buffers when the pool
        // shuts down must be flushed through the pipeline in timestamp
        // order — not dropped on the floor — and the accounting invariant
        // must hold at the quiescent point after shutdown.
        let cfg = ServiceConfig {
            // a huge lateness keeps every frame parked until drain
            max_lateness: Duration::from_millis(1_000_000),
            ..small_config(64)
        };
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let quarantine = quarantine(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Arc::clone(&quarantine),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        // the collapse frame is SENT first but STAMPED last: only a
        // watermark-ordered drain processes it after the steady history
        ingest(&pool, "edge", frame(&s, 0.0, 100.0), Some(9_000));
        for ts in 1..=8u64 {
            ingest(&pool, "edge", frame(&s, 100.0, 100.0), Some(ts * 1_000));
        }
        let ingested = 9u64;
        // no flush — shutdown itself must drain the buffers
        pool.shutdown();
        assert_eq!(
            metrics.total_processed(),
            ingested,
            "buffered frames must be flushed at shutdown, not dropped"
        );
        assert_eq!(
            metrics.total_processed()
                + metrics.total_dropped()
                + metrics.total_shed()
                + metrics.total_quarantined(),
            ingested,
            "accounting invariant across the shutdown drain"
        );
        assert_eq!(
            metrics.alarms.load(Ordering::Relaxed),
            1,
            "watermark order: the collapse frame lands after the warmup history"
        );
        assert_eq!(sink.recent(10)[0].raps[0].0, "(a1)");
    }

    #[test]
    fn detect_mode_self_triggers_and_accounts_severity() {
        let cfg = ServiceConfig {
            shards: 1,
            detect: true,
            detect_threshold: 4.0,
            pipeline: pipeline::PipelineConfig {
                k: 2,
                ..pipeline::PipelineConfig::default()
            },
            ..ServiceConfig::default()
        };
        cfg.validate().expect("valid detect config");
        let metrics = Arc::new(Metrics::new(1));
        let sink = sink(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            quarantine(&metrics),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        // raw frames only (no labels, no forecast): warm past the
        // detector's min_samples, then collapse one leaf
        let warm = 40u64;
        for _ in 0..warm {
            ingest(&pool, "edge", frame(&s, 100.0, 100.0), None);
        }
        ingest(&pool, "edge", frame(&s, 0.0, 100.0), None);
        assert!(pool.flush(Duration::from_secs(30)));
        assert_eq!(
            metrics.alarms.load(Ordering::Relaxed),
            1,
            "detect mode must self-trigger exactly once"
        );
        assert_eq!(metrics.detections.critical.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.detections.total(), 1);
        // the streaming detector stage observes once per processed frame
        assert_eq!(metrics.stages.detector.count(), warm + 1);
        assert_eq!(metrics.total_processed(), warm + 1);
        let incidents = sink.recent(10);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].severity.as_deref(), Some("critical"));
        let detection = incidents[0].detection.as_ref().expect("evidence");
        assert!(detection.score >= 4.0);
        assert_eq!(incidents[0].raps[0].0, "(a1)");
        pool.shutdown();
    }

    #[test]
    fn late_and_replayed_frames_are_quarantined_and_accounted() {
        let cfg = ServiceConfig {
            max_lateness: Duration::from_millis(2),
            ..small_config(64)
        };
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = sink(&metrics);
        let quarantine = quarantine(&metrics);
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Arc::clone(&quarantine),
            blackbox_writer(&metrics),
            default_factory(),
            None,
            None,
        );
        let s = schema();
        let mut ingested = 0u64;
        for ts in [100u64, 200, 300, 400] {
            ingest(&pool, "t", frame(&s, 50.0, 50.0), Some(ts));
            ingested += 1;
        }
        // at ts=400 the watermark is 398, so 100..=300 were emitted and
        // 400 is still buffered: re-sending 400 is a replay, and anything
        // behind the last emitted ts (300) is late
        ingest(&pool, "t", frame(&s, 50.0, 50.0), Some(400));
        ingest(&pool, "t", frame(&s, 50.0, 50.0), Some(150));
        ingested += 2;
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.frames_quarantined.replay.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.frames_quarantined.late.load(Ordering::Relaxed), 1);
        let records = quarantine.recent(10);
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .any(|r| r.reason == "late" && r.ts == Some(150)));
        assert!(records
            .iter()
            .any(|r| r.reason == "replay" && r.ts == Some(400)));
        assert_eq!(
            metrics.total_processed()
                + metrics.total_dropped()
                + metrics.total_shed()
                + metrics.total_quarantined(),
            ingested,
            "accounting invariant with quarantines"
        );
        pool.shutdown();
    }
}
