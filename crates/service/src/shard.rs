//! Shard workers: bounded queues with drop-oldest backpressure feeding
//! per-tenant localization pipelines.
//!
//! Tenants hash onto a fixed set of shards (FNV-1a over the tenant id), so
//! one tenant's frames are always processed in arrival order by a single
//! worker thread while different tenants spread across cores. Each queue
//! is bounded: when ingest outruns localization the *oldest queued frame*
//! is dropped and accounted in the shard's `dropped` counter — the
//! pipeline keeps seeing the freshest data and memory stays bounded.
//! Flush barriers are never dropped, so `flush` remains an exact
//! everything-before-this-was-processed fence even under overload.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use baselines::Localizer;
use pipeline::LocalizationPipeline;
use timeseries::MovingAverage;

use crate::config::ServiceConfig;
use crate::metrics::{Metrics, ShardMetrics};
use crate::sink::{IncidentRecord, IncidentSink};

/// Builds one localizer per tenant pipeline; shared across shard threads.
pub type LocalizerFactory = Arc<dyn Fn() -> Box<dyn Localizer> + Send + Sync>;

/// One unit of shard work.
enum Job {
    /// A snapshot for one tenant.
    Frame {
        tenant: Arc<str>,
        frame: mdkpi::LeafFrame,
    },
    /// A flush barrier: mark the gate done once everything queued before
    /// it has been processed.
    Barrier(Arc<FlushGate>),
    /// Drain-free worker exit.
    Shutdown,
}

/// Counts down shard acknowledgements of one flush.
pub struct FlushGate {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl FlushGate {
    fn new(n: usize) -> Self {
        FlushGate {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn done(&self) {
        let mut remaining = self.remaining.lock().expect("flush gate poisoned");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Wait until every shard acknowledged, or the timeout elapses.
    /// Returns whether the flush completed.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut remaining = self.remaining.lock().expect("flush gate poisoned");
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(remaining, deadline - now)
                .expect("flush gate poisoned");
            remaining = guard;
        }
        true
    }
}

/// A bounded MPSC queue with drop-oldest overflow for frames.
struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue a frame. When the queue is at capacity the oldest queued
    /// *frame* is evicted (barriers are never evicted) and counted.
    fn push_frame(&self, tenant: Arc<str>, frame: mdkpi::LeafFrame, metrics: &ShardMetrics) {
        let mut jobs = self.jobs.lock().expect("shard queue poisoned");
        let frames_queued = |jobs: &VecDeque<Job>| {
            jobs.iter()
                .filter(|j| matches!(j, Job::Frame { .. }))
                .count()
        };
        if frames_queued(&jobs) >= self.capacity {
            if let Some(i) = jobs.iter().position(|j| matches!(j, Job::Frame { .. })) {
                jobs.remove(i);
                metrics.dropped.fetch_add(1, Ordering::Relaxed);
                metrics.depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
        jobs.push_back(Job::Frame { tenant, frame });
        metrics.depth.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
    }

    /// Enqueue a control job (barrier/shutdown); never dropped, never
    /// counted against the frame capacity.
    fn push_control(&self, job: Job) {
        let mut jobs = self.jobs.lock().expect("shard queue poisoned");
        jobs.push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().expect("shard queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.cv.wait(jobs).expect("shard queue poisoned");
        }
    }
}

/// The shard worker pool: `config.shards` threads, each owning the
/// pipelines of the tenants that hash onto it.
pub struct ShardPool {
    queues: Vec<Arc<ShardQueue>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<Metrics>,
}

impl ShardPool {
    /// Start the workers.
    pub fn start(
        config: &ServiceConfig,
        metrics: Arc<Metrics>,
        sink: Arc<IncidentSink>,
        factory: LocalizerFactory,
    ) -> ShardPool {
        let queues: Vec<Arc<ShardQueue>> = (0..config.shards)
            .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(i, queue)| {
                let queue = Arc::clone(queue);
                let metrics = Arc::clone(&metrics);
                let sink = Arc::clone(&sink);
                let factory = Arc::clone(&factory);
                let pipeline_config = config.pipeline;
                let window = config.forecast_window;
                std::thread::Builder::new()
                    .name(format!("rapd-shard-{i}"))
                    .spawn(move || {
                        worker_loop(
                            i,
                            &queue,
                            &metrics,
                            &sink,
                            &factory,
                            pipeline_config,
                            window,
                        )
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool {
            queues,
            workers: Mutex::new(workers),
            metrics,
        }
    }

    /// The shard a tenant hashes onto (FNV-1a, stable across runs).
    pub fn shard_for(&self, tenant: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in tenant.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.queues.len() as u64) as usize
    }

    /// Queue one frame onto the tenant's shard (drop-oldest on overflow).
    pub fn ingest(&self, tenant: &str, frame: mdkpi::LeafFrame) {
        let shard = self.shard_for(tenant);
        self.queues[shard].push_frame(Arc::from(tenant), frame, self.metrics.shard(shard));
    }

    /// Post a barrier to every shard and wait for all of them to drain
    /// everything queued before it. Returns whether the flush completed
    /// within the timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let gate = Arc::new(FlushGate::new(self.queues.len()));
        for queue in &self.queues {
            queue.push_control(Job::Barrier(Arc::clone(&gate)));
        }
        gate.wait(timeout)
    }

    /// Stop every worker after it drains its queue. Idempotent.
    pub fn shutdown(&self) {
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("shard pool poisoned"));
        if workers.is_empty() {
            return;
        }
        for queue in &self.queues {
            queue.push_control(Job::Shutdown);
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
}

type TenantPipeline = LocalizationPipeline<MovingAverage, Box<dyn Localizer>>;

fn worker_loop(
    shard: usize,
    queue: &ShardQueue,
    metrics: &Metrics,
    sink: &IncidentSink,
    factory: &LocalizerFactory,
    pipeline_config: pipeline::PipelineConfig,
    window: usize,
) {
    let shard_metrics = metrics.shard(shard);
    let mut pipelines: HashMap<Arc<str>, TenantPipeline> = HashMap::new();
    loop {
        match queue.pop() {
            Job::Shutdown => return,
            Job::Barrier(gate) => gate.done(),
            Job::Frame { tenant, frame } => {
                shard_metrics.depth.fetch_sub(1, Ordering::Relaxed);
                let pipe = pipelines.entry(Arc::clone(&tenant)).or_insert_with(|| {
                    LocalizationPipeline::try_new(
                        pipeline_config,
                        MovingAverage::new(window),
                        factory(),
                    )
                    .expect("service config validated at boot")
                });
                let frame_span = obs::span("rapd.frame");
                frame_span.record("shard", shard as u64);
                frame_span.record("tenant", tenant.as_ref());
                let start = Instant::now();
                match pipe.observe(&frame) {
                    Ok(Some(report)) => {
                        metrics.localization.observe(start.elapsed().as_secs_f64());
                        metrics.alarms.fetch_add(1, Ordering::Relaxed);
                        // one observation per stage per incident, so every
                        // stage count in /metrics equals rapd_alarms_total
                        metrics.stages.cp.observe(report.timings.cp_seconds);
                        metrics.stages.search.observe(report.timings.search_seconds);
                        metrics.stages.detect.observe(report.timings.detect_seconds);
                        frame_span.record("alarm", true);
                        obs::info(
                            "rapd.shard",
                            "incident",
                            &[
                                ("tenant", obs::Value::Str(tenant.to_string())),
                                ("step", obs::Value::U64(report.step as u64)),
                                ("raps", obs::Value::U64(report.raps.len() as u64)),
                                ("total_deviation", obs::Value::F64(report.total_deviation)),
                            ],
                        );
                        if sink
                            .record(IncidentRecord::from_report(&tenant, &report))
                            .is_err()
                        {
                            metrics.pipeline_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        metrics.pipeline_errors.fetch_add(1, Ordering::Relaxed);
                        obs::error(
                            "rapd.shard",
                            "pipeline_error",
                            &[
                                ("tenant", obs::Value::Str(tenant.to_string())),
                                ("reason", obs::Value::Str(e.to_string())),
                            ],
                        );
                    }
                }
                shard_metrics.processed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{RapMinerLocalizer, ScoredCombination};
    use mdkpi::{LeafFrame, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2"])
            .build()
            .unwrap()
    }

    fn frame(schema: &Schema, v1: f64, v2: f64) -> LeafFrame {
        let mut b = LeafFrame::builder(schema);
        b.push(&[mdkpi::ElementId(0)], v1, 0.0);
        b.push(&[mdkpi::ElementId(1)], v2, 0.0);
        b.build()
    }

    fn small_config(queue_capacity: usize) -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            queue_capacity,
            forecast_window: 3,
            pipeline: pipeline::PipelineConfig {
                history_len: 32,
                warmup: 3,
                alarm_threshold: 0.2,
                leaf_threshold: 0.3,
                k: 2,
            },
            ..ServiceConfig::default()
        }
    }

    fn default_factory() -> LocalizerFactory {
        Arc::new(|| Box::new(RapMinerLocalizer::default()) as Box<dyn Localizer>)
    }

    #[test]
    fn tenants_hash_deterministically_within_range() {
        let cfg = small_config(16);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = Arc::new(IncidentSink::new(None, 8).unwrap());
        let pool = ShardPool::start(&cfg, metrics, sink, default_factory());
        for tenant in ["a", "b", "edge-7", ""] {
            let s = pool.shard_for(tenant);
            assert!(s < 2);
            assert_eq!(s, pool.shard_for(tenant));
        }
        pool.shutdown();
    }

    #[test]
    fn steady_traffic_processes_without_alarms() {
        let cfg = small_config(64);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = Arc::new(IncidentSink::new(None, 8).unwrap());
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            default_factory(),
        );
        let s = schema();
        for _ in 0..10 {
            pool.ingest("tenant", frame(&s, 50.0, 50.0));
        }
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.total_processed(), 10);
        assert_eq!(metrics.total_dropped(), 0);
        assert_eq!(metrics.alarms.load(Ordering::Relaxed), 0);
        pool.shutdown();
    }

    #[test]
    fn collapse_fires_alarm_into_sink() {
        let cfg = small_config(64);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = Arc::new(IncidentSink::new(None, 8).unwrap());
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            default_factory(),
        );
        let s = schema();
        for _ in 0..8 {
            pool.ingest("edge", frame(&s, 100.0, 100.0));
        }
        pool.ingest("edge", frame(&s, 0.0, 100.0));
        assert!(pool.flush(Duration::from_secs(10)));
        assert_eq!(metrics.alarms.load(Ordering::Relaxed), 1);
        let incidents = sink.recent(10);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].tenant, "edge");
        assert_eq!(incidents[0].raps[0].0, "(a1)");
        assert_eq!(metrics.localization.count(), 1);
        // each stage observes exactly once per incident, so the stage
        // counts track the alarm counter
        assert_eq!(metrics.stages.cp.count(), 1);
        assert_eq!(metrics.stages.search.count(), 1);
        assert_eq!(metrics.stages.detect.count(), 1);
        // the RAPMiner localizer attaches a consistent localization trace
        let trace = incidents[0].trace.as_ref().expect("trace attached");
        assert!(trace.is_consistent());
        pool.shutdown();
    }

    #[test]
    fn overflow_drops_oldest_and_accounts_exactly() {
        // a localizer that sleeps long enough for the queue to overflow
        struct Slow(RapMinerLocalizer);
        impl Localizer for Slow {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn localize(
                &self,
                frame: &LeafFrame,
                k: usize,
            ) -> baselines::Result<Vec<ScoredCombination>> {
                std::thread::sleep(Duration::from_millis(5));
                self.0.localize(frame, k)
            }
        }
        let cfg = ServiceConfig {
            shards: 1,
            queue_capacity: 4,
            forecast_window: 2,
            pipeline: pipeline::PipelineConfig {
                history_len: 8,
                warmup: 1,
                // alarm on every post-warmup frame: values alternate wildly
                alarm_threshold: 0.01,
                leaf_threshold: 0.01,
                k: 1,
            },
            ..ServiceConfig::default()
        };
        let metrics = Arc::new(Metrics::new(1));
        let sink = Arc::new(IncidentSink::new(None, 4).unwrap());
        let pool = ShardPool::start(
            &cfg,
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Arc::new(|| Box::new(Slow(RapMinerLocalizer::default())) as Box<dyn Localizer>),
        );
        let s = schema();
        let total = 200;
        for i in 0..total {
            let v = if i % 2 == 0 { 10.0 } else { 200.0 };
            pool.ingest("t", frame(&s, v, v));
        }
        assert!(
            pool.flush(Duration::from_secs(30)),
            "flush must not deadlock"
        );
        let processed = metrics.total_processed();
        let dropped = metrics.total_dropped();
        assert_eq!(
            processed + dropped,
            total,
            "every frame processed or accounted dropped"
        );
        assert!(dropped > 0, "slow localizer must overflow a 4-deep queue");
        // after the flush barrier the queue is empty again
        assert_eq!(metrics.shard(0).depth.load(Ordering::Relaxed), 0);
        pool.shutdown();
    }

    #[test]
    fn flush_on_idle_pool_returns_immediately() {
        let cfg = small_config(4);
        let metrics = Arc::new(Metrics::new(cfg.shards));
        let sink = Arc::new(IncidentSink::new(None, 4).unwrap());
        let pool = ShardPool::start(&cfg, metrics, sink, default_factory());
        assert!(pool.flush(Duration::from_secs(5)));
        pool.shutdown();
    }
}
