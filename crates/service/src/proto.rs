//! The NDJSON wire protocol: one JSON object per line, both directions.
//!
//! Requests (client → rapd):
//!
//! ```json
//! {"type":"schema","tenant":"cdn-edge","attributes":[["location",["L1","L2"]],["isp",["I1","I2"]]]}
//! {"type":"observe","tenant":"cdn-edge","ts":1700000000000,"rows":[[["L1","I1"],42.5],[["L2","I2"],17.0]]}
//! {"type":"flush"}
//! {"type":"stats"}
//! {"type":"incidents","limit":10}
//! {"type":"trace","limit":50}
//! {"type":"quarantine","limit":20}
//! {"type":"health"}
//! {"type":"debug","tenant":"cdn-edge"}
//! {"type":"shutdown"}
//! ```
//!
//! Every request gets exactly one reply line: `{"type":"ok",...}`, a typed
//! payload (`stats`, `incidents`), or `{"type":"error","reason":...}`.
//! Malformed input of any kind is a [`ProtoError`] — reader threads reply
//! and keep serving; they never panic or die on bad input.
//!
//! `observe` extras: `ts` (optional, milliseconds) routes the frame through
//! the per-tenant watermark reorder buffer; omitting it bypasses
//! reordering. A row *value* of JSON `null` is the wire encoding of a
//! missing/NaN measurement (JSON itself cannot carry NaN) — such frames
//! are accepted at the protocol layer and diverted by admission control,
//! never parsed as errors.

use std::fmt;

use mdkpi::{ElementId, LeafFrame, Schema};

use crate::json::{parse, Json};

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or idempotently re-register) a tenant's schema.
    Schema {
        /// The tenant id.
        tenant: String,
        /// `(attribute, elements)` pairs, the [`Schema::from_parts`] form.
        attributes: Vec<(String, Vec<String>)>,
    },
    /// Ingest one snapshot of per-leaf actual values.
    Observe {
        /// The tenant id.
        tenant: String,
        /// `(elements, value)` rows; elements are positional per the
        /// registered schema's attribute order. A value may be NaN (wire
        /// form: JSON `null`) — admission control quarantines such frames.
        rows: Vec<(Vec<String>, f64)>,
        /// Optional event timestamp in milliseconds. Present → the frame
        /// goes through the watermark reorder buffer; absent → it is
        /// processed in arrival order.
        ts: Option<u64>,
    },
    /// Barrier: drain every shard queue before replying.
    Flush,
    /// Snapshot of the daemon counters.
    Stats,
    /// The most recent incidents from the in-memory ring.
    Incidents {
        /// Maximum number of incidents to return (newest first).
        limit: usize,
    },
    /// The most recently completed tracing spans from the in-process ring.
    Trace {
        /// Maximum number of spans to return (newest first).
        limit: usize,
    },
    /// The most recent quarantined frames from the in-memory ring.
    Quarantine {
        /// Maximum number of records to return (newest first).
        limit: usize,
    },
    /// Fault-tolerance health summary: spool degradation, open breakers,
    /// restart counters. `status` is `"degraded"` whenever any of those
    /// indicate reduced service, `"ok"` otherwise.
    Health,
    /// Live introspection of the daemon's internals: queue depths,
    /// per-tenant engine/breaker/reorder state, flight-recorder stats,
    /// memo and pool counters, end-to-end latency totals.
    Debug {
        /// Restrict the per-tenant breakdown to this tenant; `None`
        /// returns every tenant.
        tenant: Option<String>,
    },
    /// Graceful drain: flush every shard queue, checkpoint every tenant,
    /// fsync the spools, then exit 0. The reply
    /// (`{"type":"ok","draining":true}`) is sent before the process
    /// exits. This is the verb a SIGTERM wrapper should call — the
    /// daemon installs no signal handlers (the workspace forbids the
    /// unsafe code they require).
    Shutdown,
}

/// Why a request line was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The line exceeds the configured frame-size cap.
    Oversized {
        /// Bytes received.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The line is not valid JSON.
    BadJson(String),
    /// The document is not a JSON object.
    NotAnObject,
    /// The object has no string `type` field.
    MissingType,
    /// The `type` is not one of the protocol's messages.
    UnknownType(String),
    /// A required field is absent.
    MissingField {
        /// The message type.
        msg: &'static str,
        /// The absent field.
        field: &'static str,
    },
    /// A field has the wrong shape.
    BadField {
        /// The message type.
        msg: &'static str,
        /// The offending field.
        field: &'static str,
        /// What was expected there.
        expected: &'static str,
    },
    /// An observe row names a different number of elements than the
    /// tenant's schema has attributes.
    Arity {
        /// Attributes in the registered schema.
        expected: usize,
        /// Elements in the offending row.
        got: usize,
    },
    /// An observe row names an element absent from the schema attribute at
    /// that position.
    UnknownElement {
        /// The schema attribute name.
        attribute: String,
        /// The unknown element name.
        element: String,
    },
    /// `observe` arrived before any `schema` for that tenant.
    NoSchema {
        /// The tenant id.
        tenant: String,
    },
    /// The tenant re-registered with different attributes.
    SchemaConflict {
        /// The tenant id.
        tenant: String,
    },
    /// `schema` attributes failed schema validation (duplicates, empty…).
    BadSchema(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::BadJson(e) => write!(f, "malformed JSON: {e}"),
            ProtoError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtoError::MissingType => write!(f, "request object needs a string 'type' field"),
            ProtoError::UnknownType(t) => write!(f, "unknown message type '{t}'"),
            ProtoError::MissingField { msg, field } => {
                write!(f, "'{msg}' message is missing field '{field}'")
            }
            ProtoError::BadField {
                msg,
                field,
                expected,
            } => {
                write!(f, "'{msg}' field '{field}' must be {expected}")
            }
            ProtoError::Arity { expected, got } => write!(
                f,
                "observe row has {got} elements but the schema has {expected} attributes"
            ),
            ProtoError::UnknownElement { attribute, element } => {
                write!(f, "attribute '{attribute}' has no element '{element}'")
            }
            ProtoError::NoSchema { tenant } => {
                write!(f, "tenant '{tenant}' has no registered schema")
            }
            ProtoError::SchemaConflict { tenant } => write!(
                f,
                "tenant '{tenant}' is already registered with different attributes"
            ),
            ProtoError::BadSchema(e) => write!(f, "invalid schema: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// The one-line `{"type":"error",...}` reply for this error.
    pub fn to_reply(&self) -> String {
        Json::Obj(vec![
            ("type".to_string(), Json::str("error")),
            ("reason".to_string(), Json::str(self.to_string())),
        ])
        .render()
    }
}

/// Parse one request line, enforcing the frame-size cap.
///
/// # Errors
///
/// Any malformed input is a typed [`ProtoError`]; this function never
/// panics on untrusted bytes.
pub fn parse_request(line: &str, max_bytes: usize) -> Result<Request, ProtoError> {
    if line.len() > max_bytes {
        return Err(ProtoError::Oversized {
            len: line.len(),
            max: max_bytes,
        });
    }
    let doc = parse(line).map_err(ProtoError::BadJson)?;
    let Json::Obj(_) = doc else {
        return Err(ProtoError::NotAnObject);
    };
    let msg_type = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or(ProtoError::MissingType)?;
    match msg_type {
        "schema" => parse_schema(&doc),
        "observe" => parse_observe(&doc),
        "flush" => Ok(Request::Flush),
        "stats" => Ok(Request::Stats),
        "incidents" => {
            let limit = match doc.get("limit") {
                None => 20,
                Some(v) => v.as_u64().ok_or(ProtoError::BadField {
                    msg: "incidents",
                    field: "limit",
                    expected: "a non-negative integer",
                })? as usize,
            };
            Ok(Request::Incidents { limit })
        }
        "trace" => {
            let limit = match doc.get("limit") {
                None => 50,
                Some(v) => v.as_u64().ok_or(ProtoError::BadField {
                    msg: "trace",
                    field: "limit",
                    expected: "a non-negative integer",
                })? as usize,
            };
            Ok(Request::Trace { limit })
        }
        "quarantine" => {
            let limit = match doc.get("limit") {
                None => 20,
                Some(v) => v.as_u64().ok_or(ProtoError::BadField {
                    msg: "quarantine",
                    field: "limit",
                    expected: "a non-negative integer",
                })? as usize,
            };
            Ok(Request::Quarantine { limit })
        }
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        "debug" => {
            let tenant = match doc.get("tenant") {
                None => None,
                Some(v) => Some(v.as_str().map(str::to_string).ok_or(ProtoError::BadField {
                    msg: "debug",
                    field: "tenant",
                    expected: "a string",
                })?),
            };
            Ok(Request::Debug { tenant })
        }
        other => Err(ProtoError::UnknownType(other.to_string())),
    }
}

fn required_str(doc: &Json, msg: &'static str, field: &'static str) -> Result<String, ProtoError> {
    match doc.get(field) {
        None => Err(ProtoError::MissingField { msg, field }),
        Some(v) => v.as_str().map(str::to_string).ok_or(ProtoError::BadField {
            msg,
            field,
            expected: "a string",
        }),
    }
}

fn parse_schema(doc: &Json) -> Result<Request, ProtoError> {
    let tenant = required_str(doc, "schema", "tenant")?;
    let attrs = doc
        .get("attributes")
        .ok_or(ProtoError::MissingField {
            msg: "schema",
            field: "attributes",
        })?
        .as_arr()
        .ok_or(ProtoError::BadField {
            msg: "schema",
            field: "attributes",
            expected: "an array of [name, [elements]] pairs",
        })?;
    let mut attributes = Vec::with_capacity(attrs.len());
    for pair in attrs {
        let bad = ProtoError::BadField {
            msg: "schema",
            field: "attributes",
            expected: "an array of [name, [elements]] pairs",
        };
        let items = pair.as_arr().ok_or_else(|| bad.clone())?;
        let [name, elements] = items else {
            return Err(bad);
        };
        let name = name.as_str().ok_or_else(|| bad.clone())?;
        let elements = elements
            .as_arr()
            .ok_or_else(|| bad.clone())?
            .iter()
            .map(|e| e.as_str().map(str::to_string).ok_or_else(|| bad.clone()))
            .collect::<Result<Vec<String>, ProtoError>>()?;
        attributes.push((name.to_string(), elements));
    }
    Ok(Request::Schema { tenant, attributes })
}

fn parse_observe(doc: &Json) -> Result<Request, ProtoError> {
    let tenant = required_str(doc, "observe", "tenant")?;
    let raw_rows = doc
        .get("rows")
        .ok_or(ProtoError::MissingField {
            msg: "observe",
            field: "rows",
        })?
        .as_arr()
        .ok_or(ProtoError::BadField {
            msg: "observe",
            field: "rows",
            expected: "an array of [[elements...], value] pairs",
        })?;
    let bad = ProtoError::BadField {
        msg: "observe",
        field: "rows",
        expected: "an array of [[elements...], value] pairs",
    };
    let mut rows = Vec::with_capacity(raw_rows.len());
    for row in raw_rows {
        let items = row.as_arr().ok_or_else(|| bad.clone())?;
        let [elements, value] = items else {
            return Err(bad);
        };
        let elements = elements
            .as_arr()
            .ok_or_else(|| bad.clone())?
            .iter()
            .map(|e| e.as_str().map(str::to_string).ok_or_else(|| bad.clone()))
            .collect::<Result<Vec<String>, ProtoError>>()?;
        // JSON cannot carry NaN, so `null` is the wire form of a missing
        // or NaN measurement; the parser itself guarantees `Json::Num` is
        // finite. The NaN survives to admission control, which quarantines
        // the frame with a reason instead of dropping it as a parse error.
        let value = match value {
            Json::Null => f64::NAN,
            v => v.as_f64().ok_or_else(|| bad.clone())?,
        };
        rows.push((elements, value));
    }
    let ts = match doc.get("ts") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or(ProtoError::BadField {
            msg: "observe",
            field: "ts",
            expected: "a non-negative integer (milliseconds)",
        })?),
    };
    Ok(Request::Observe { tenant, rows, ts })
}

/// Resolve an observe message's rows against the tenant's schema into a
/// [`LeafFrame`], enforcing row arity and element names.
///
/// # Errors
///
/// [`ProtoError::Arity`] when a row's element count differs from the
/// schema's attribute count, [`ProtoError::UnknownElement`] for element
/// names the schema does not contain.
pub fn build_frame(schema: &Schema, rows: &[(Vec<String>, f64)]) -> Result<LeafFrame, ProtoError> {
    let num_attrs = schema.num_attributes();
    let mut builder = LeafFrame::builder(schema);
    let mut elements: Vec<ElementId> = Vec::with_capacity(num_attrs);
    for (names, value) in rows {
        if names.len() != num_attrs {
            return Err(ProtoError::Arity {
                expected: num_attrs,
                got: names.len(),
            });
        }
        elements.clear();
        for (attr_id, name) in schema.attr_ids().zip(names) {
            let attr = schema.attribute(attr_id);
            let id = attr
                .element(name)
                .ok_or_else(|| ProtoError::UnknownElement {
                    attribute: attr.name().to_string(),
                    element: name.clone(),
                })?;
            elements.push(id);
        }
        builder.push(&elements, *value, 0.0);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: usize = 1 << 16;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("location", ["L1", "L2"])
            .attribute("isp", ["I1", "I2"])
            .build()
            .unwrap()
    }

    #[test]
    fn parses_every_message_type() {
        let req = parse_request(
            r#"{"type":"schema","tenant":"t","attributes":[["a",["a1","a2"]]]}"#,
            MAX,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Schema {
                tenant: "t".to_string(),
                attributes: vec![("a".to_string(), vec!["a1".to_string(), "a2".to_string()])],
            }
        );
        let req = parse_request(
            r#"{"type":"observe","tenant":"t","rows":[[["L1","I1"],42.5]]}"#,
            MAX,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Observe {
                tenant: "t".to_string(),
                rows: vec![(vec!["L1".to_string(), "I1".to_string()], 42.5)],
                ts: None,
            }
        );
        let req = parse_request(
            r#"{"type":"observe","tenant":"t","ts":1700000000000,"rows":[[["L1","I1"],1.0]]}"#,
            MAX,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Observe {
                tenant: "t".to_string(),
                rows: vec![(vec!["L1".to_string(), "I1".to_string()], 1.0)],
                ts: Some(1_700_000_000_000),
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"flush"}"#, MAX).unwrap(),
            Request::Flush
        );
        assert_eq!(
            parse_request(r#"{"type":"stats"}"#, MAX).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"type":"incidents","limit":5}"#, MAX).unwrap(),
            Request::Incidents { limit: 5 }
        );
        assert_eq!(
            parse_request(r#"{"type":"incidents"}"#, MAX).unwrap(),
            Request::Incidents { limit: 20 }
        );
        assert_eq!(
            parse_request(r#"{"type":"trace","limit":7}"#, MAX).unwrap(),
            Request::Trace { limit: 7 }
        );
        assert_eq!(
            parse_request(r#"{"type":"trace"}"#, MAX).unwrap(),
            Request::Trace { limit: 50 }
        );
        assert_eq!(
            parse_request(r#"{"type":"quarantine","limit":3}"#, MAX).unwrap(),
            Request::Quarantine { limit: 3 }
        );
        assert_eq!(
            parse_request(r#"{"type":"quarantine"}"#, MAX).unwrap(),
            Request::Quarantine { limit: 20 }
        );
        assert_eq!(
            parse_request(r#"{"type":"health"}"#, MAX).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"type":"debug"}"#, MAX).unwrap(),
            Request::Debug { tenant: None }
        );
        assert_eq!(
            parse_request(r#"{"type":"debug","tenant":"edge"}"#, MAX).unwrap(),
            Request::Debug {
                tenant: Some("edge".to_string())
            }
        );
        assert_eq!(
            parse_request(r#"{"type":"shutdown"}"#, MAX).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for line in [
            "not json at all",
            "{\"type\":",
            "[1,2,3]",
            "42",
            "{}",
            r#"{"type":17}"#,
            r#"{"type":"observe"}"#,
            r#"{"type":"observe","tenant":"t"}"#,
            r#"{"type":"observe","tenant":"t","rows":"nope"}"#,
            r#"{"type":"observe","tenant":"t","rows":[["missing-value"]]}"#,
            r#"{"type":"observe","tenant":"t","rows":[[["L1"],"NaN"]]}"#,
            r#"{"type":"observe","tenant":17,"rows":[]}"#,
            r#"{"type":"schema","tenant":"t"}"#,
            r#"{"type":"schema","tenant":"t","attributes":[["a"]]}"#,
            r#"{"type":"schema","tenant":"t","attributes":[["a","b"]]}"#,
            r#"{"type":"incidents","limit":-3}"#,
            r#"{"type":"incidents","limit":1.5}"#,
            r#"{"type":"trace","limit":-1}"#,
            r#"{"type":"trace","limit":"all"}"#,
            r#"{"type":"quarantine","limit":-1}"#,
            r#"{"type":"debug","tenant":17}"#,
            r#"{"type":"observe","tenant":"t","ts":-5,"rows":[]}"#,
            r#"{"type":"observe","tenant":"t","ts":1.5,"rows":[]}"#,
            r#"{"type":"observe","tenant":"t","ts":"now","rows":[]}"#,
        ] {
            let err = parse_request(line, MAX).expect_err(line);
            // every error renders a reply line that is itself valid JSON
            let reply = crate::json::parse(&err.to_reply()).unwrap();
            assert_eq!(reply.get("type").unwrap().as_str(), Some("error"));
        }
    }

    #[test]
    fn null_row_value_parses_to_nan() {
        // JSON cannot encode NaN; `null` is its wire form. The frame must
        // survive parsing so admission control can quarantine it with a
        // reason instead of the reader bouncing it as malformed.
        let req = parse_request(
            r#"{"type":"observe","tenant":"t","rows":[[["L1","I1"],null],[["L2","I2"],7.0]]}"#,
            MAX,
        )
        .unwrap();
        let Request::Observe { rows, .. } = req else {
            panic!("expected observe");
        };
        assert!(rows[0].1.is_nan());
        assert_eq!(rows[1].1, 7.0);
    }

    #[test]
    fn unknown_type_is_named_in_the_error() {
        let err = parse_request(r#"{"type":"observe2"}"#, MAX).unwrap_err();
        assert_eq!(err, ProtoError::UnknownType("observe2".to_string()));
        assert!(err.to_string().contains("observe2"));
    }

    #[test]
    fn oversized_frames_are_rejected_before_parsing() {
        let huge = format!(
            r#"{{"type":"observe","tenant":"t","rows":[{}]}}"#,
            "1,".repeat(500)
        );
        let err = parse_request(&huge, 64).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { max: 64, .. }));
    }

    #[test]
    fn build_frame_enforces_arity() {
        let s = schema();
        let err = build_frame(&s, &[(vec!["L1".to_string()], 1.0)]).unwrap_err();
        assert_eq!(
            err,
            ProtoError::Arity {
                expected: 2,
                got: 1
            }
        );
        let err = build_frame(
            &s,
            &[(
                vec!["L1".to_string(), "I1".to_string(), "X".to_string()],
                1.0,
            )],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProtoError::Arity {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn build_frame_rejects_unknown_elements() {
        let s = schema();
        let err = build_frame(&s, &[(vec!["L1".to_string(), "I9".to_string()], 1.0)]).unwrap_err();
        assert_eq!(
            err,
            ProtoError::UnknownElement {
                attribute: "isp".to_string(),
                element: "I9".to_string(),
            }
        );
    }

    #[test]
    fn build_frame_produces_a_leaf_frame() {
        let s = schema();
        let frame = build_frame(
            &s,
            &[
                (vec!["L1".to_string(), "I1".to_string()], 10.0),
                (vec!["L2".to_string(), "I2".to_string()], 20.0),
            ],
        )
        .unwrap();
        assert_eq!(frame.num_rows(), 2);
        assert_eq!(frame.total_v(), 30.0);
    }
}
