//! The frame write-ahead log: admitted frames journaled before queueing.
//!
//! Crash consistency for rapd rests on one rule: **a frame that was
//! acknowledged on the wire is never lost**. The observe verb appends
//! every admitted frame to a per-tenant journal under `<spool_dir>/wal/`
//! *before* handing it to the shard queues; on startup the daemon replays
//! the journal suffix past the last checkpoint's acknowledgment, so a
//! `kill -9` loses nothing past admission.
//!
//! Journal lines use the same `{json}\t{crc32:08x}` framing as the
//! incident spool, and the same torn-tail repair
//! ([`crate::sink::repair_spool`]) runs over each segment at recovery —
//! a crash mid-append costs at most the line being written, which is
//! exactly the frame that was never acknowledged.
//!
//! By default an append is flushed (not fsynced) before the wire
//! acknowledgment: the line is in the kernel page cache, which survives
//! any *process* death (`kill -9`, OOM, panic) but not power loss or a
//! kernel panic. Opening the WAL with `fsync` (`--wal-fsync`) upgrades
//! the guarantee to machine-crash durability by `sync_data`ing every
//! append, at a per-frame fsync cost.
//!
//! Two journals live here:
//!
//! * `<tenant>.jsonl` — one [`WalEntry`] per admitted frame, compacted
//!   after each checkpoint acknowledges a sequence watermark;
//! * `schemas.jsonl` — an append-only journal of registered tenant
//!   schemas, loaded before replay so replayed frames can be re-resolved
//!   (the in-memory schema map dies with the process).
//!
//! Like every sink in this crate, appends are infallible from the
//! caller's perspective: a write failure latches the WAL into degraded
//! (journal-less) mode — one warning event, `rapd_wal_append_errors_total`
//! counted — rather than failing ingestion. Durability degrades; service
//! does not.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::quarantine::sanitize_tenant;
use crate::sink::{frame_spool_line, repair_spool};
use crate::sync::lock_recover;

/// A journaled schema: the attribute parts (`(name, element names)`) a
/// tenant registered, exactly as `Request::Schema` carries them.
pub type SchemaParts = Vec<(String, Vec<String>)>;

/// One journaled frame: everything needed to re-ingest it byte-identically
/// after a crash. The tenant rides inside the JSON (not just the file
/// stem) because stems are sanitized lossily.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// The tenant that sent the frame.
    pub tenant: String,
    /// The frame's correlation token, re-adopted verbatim at replay so
    /// incident records match the pre-crash run byte for byte.
    pub frame: String,
    /// The token's process-wide sequence number — the dedup and
    /// compaction watermark.
    pub seq: u64,
    /// The frame's event timestamp (milliseconds), when it carried one.
    pub ts: Option<u64>,
    /// The admitted (post-repair) wire rows. Always finite: admission
    /// quarantines non-finite frames before the WAL sees them.
    pub rows: Vec<(Vec<String>, f64)>,
}

impl WalEntry {
    /// The JSON form journaled to disk.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenant".to_string(), Json::str(&self.tenant)),
            ("frame".to_string(), Json::str(&self.frame)),
            ("seq".to_string(), Json::Num(self.seq as f64)),
            (
                "ts".to_string(),
                match self.ts {
                    None => Json::Null,
                    Some(t) => Json::Num(t as f64),
                },
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(names, value)| {
                            Json::Arr(vec![
                                Json::Arr(names.iter().map(Json::str).collect()),
                                Json::Num(*value),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse one journaled entry; `None` when the shape is wrong (a
    /// foreign or future-format line — skipped, never fatal).
    pub fn from_json(doc: &Json) -> Option<WalEntry> {
        let rows = doc
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|row| {
                let row = row.as_arr()?;
                let names = row
                    .first()?
                    .as_arr()?
                    .iter()
                    .map(|n| Some(n.as_str()?.to_string()))
                    .collect::<Option<Vec<String>>>()?;
                Some((names, row.get(1)?.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(WalEntry {
            tenant: doc.get("tenant")?.as_str()?.to_string(),
            frame: doc.get("frame")?.as_str()?.to_string(),
            seq: doc.get("seq")?.as_u64()?,
            ts: doc.get("ts").and_then(Json::as_u64),
            rows,
        })
    }
}

/// The per-tenant frame journal under `<spool_dir>/wal/`.
#[derive(Debug)]
pub(crate) struct FrameWal {
    dir: PathBuf,
    /// Lazily opened per-tenant append handles, keyed by sanitized stem.
    /// This lock is the segment lock: appends hold it across the write
    /// and the depth bookkeeping, and compaction holds it across its
    /// whole read–rewrite–rename, so an append lands wholly before or
    /// wholly after a compaction — never inside one, where its line
    /// would be discarded with the replaced inode.
    files: Mutex<HashMap<String, File>>,
    /// Unacknowledged entries per stem; the sum is the `rapd_wal_depth`
    /// gauge. Lock order: `files` before `depth`, always.
    depth: Mutex<HashMap<String, u64>>,
    metrics: Arc<Metrics>,
    /// `sync_data` every append (machine-crash durability) instead of
    /// relying on the page cache (process-crash durability).
    fsync: bool,
    /// Latched on the first append error; the WAL then journals nothing.
    degraded: AtomicBool,
}

impl FrameWal {
    /// Open (creating) the `<spool_dir>/wal/` journal directory. With
    /// `fsync`, every append is `sync_data`'d before the caller (and
    /// therefore the wire acknowledgment) proceeds — durability against
    /// power loss, at a per-frame fsync cost; without it, a flushed line
    /// survives `kill -9` but sits in the page cache until the kernel
    /// writes it back.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(spool_dir: &Path, metrics: Arc<Metrics>, fsync: bool) -> io::Result<Self> {
        let dir = spool_dir.join("wal");
        fs::create_dir_all(&dir)?;
        Ok(FrameWal {
            dir,
            files: Mutex::new(HashMap::new()),
            depth: Mutex::new(HashMap::new()),
            metrics,
            fsync,
            degraded: AtomicBool::new(false),
        })
    }

    /// Whether an append error has latched the WAL into journal-less mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Journaled frames not yet acknowledged by a checkpoint, across all
    /// tenants.
    pub fn depth(&self) -> u64 {
        lock_recover(&self.depth).values().sum()
    }

    fn publish_depth(&self) {
        self.metrics
            .wal_depth
            .store(self.depth(), Ordering::Relaxed);
    }

    /// Append one admitted frame to its tenant's journal segment, flushed
    /// immediately so a `kill -9` right after the wire acknowledgment
    /// still finds the frame on disk. Infallible: a write failure latches
    /// degraded mode instead of failing the ingest path.
    pub fn append(&self, entry: &WalEntry) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let line = frame_spool_line(&entry.to_json().render());
        let stem = sanitize_tenant(&entry.tenant);
        // Hold the segment lock across the write *and* the depth update:
        // compact() holds it for its whole rewrite, so neither the line
        // nor its depth increment can interleave with a compaction.
        let mut files = lock_recover(&self.files);
        let result = (|| {
            let file = match files.entry(stem.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let path = self.dir.join(format!("{}.jsonl", e.key()));
                    e.insert(OpenOptions::new().create(true).append(true).open(path)?)
                }
            };
            if obs::fail::should_error("wal-append-error") {
                return Err(io::Error::other("injected wal append error"));
            }
            writeln!(file, "{line}")?;
            file.flush()?;
            if self.fsync {
                file.sync_data()?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
                *lock_recover(&self.depth).entry(stem).or_insert(0) += 1;
                drop(files);
                self.publish_depth();
            }
            Err(e) => {
                self.metrics
                    .wal_append_errors
                    .fetch_add(1, Ordering::Relaxed);
                if !self.degraded.swap(true, Ordering::Relaxed) {
                    obs::warn(
                        "rapd.wal",
                        "wal_degraded",
                        &[
                            ("error", obs::Value::Str(e.to_string())),
                            ("dir", obs::Value::Str(self.dir.display().to_string())),
                        ],
                    );
                }
            }
        }
    }

    /// Drop every journaled entry of `tenant` with `seq <= ack_seq` — a
    /// checkpoint now covers them. Entries carrying a *different*
    /// embedded tenant are always kept (the ack covers this tenant's
    /// pipeline, not theirs), so even a stem collision cannot discard a
    /// neighbor's unacknowledged frames. The segment is rewritten
    /// through a temp file, fsynced, and renamed into place, and the
    /// segment lock is held across the whole read–rewrite–rename: a
    /// concurrent observe-path append can land only before the read or
    /// after the rename, never into the doomed inode.
    pub fn compact(&self, tenant: &str, ack_seq: u64) {
        let stem = sanitize_tenant(tenant);
        let path = self.dir.join(format!("{stem}.jsonl"));
        let mut files = lock_recover(&self.files);
        let result = (|| -> io::Result<Option<u64>> {
            let data = match fs::read_to_string(&path) {
                Ok(data) => data,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(e),
            };
            let mut kept = String::with_capacity(data.len());
            let mut kept_count = 0u64;
            for line in data.lines() {
                if let Some(entry) = parse_wal_line(line) {
                    if entry.tenant == tenant && entry.seq <= ack_seq {
                        continue;
                    }
                    kept_count += 1;
                }
                kept.push_str(line);
                kept.push('\n');
            }
            if kept.len() == data.len() {
                return Ok(Some(kept_count));
            }
            // Evict the cached append handle: after the rename it would
            // still point at the replaced inode.
            files.remove(&stem);
            let tmp = path.with_extension("jsonl.compact");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(kept.as_bytes())?;
                f.sync_all()?;
            }
            fs::rename(&tmp, &path)?;
            self.metrics.wal_compactions.fetch_add(1, Ordering::Relaxed);
            Ok(Some(kept_count))
        })();
        match result {
            Ok(Some(kept_count)) => {
                lock_recover(&self.depth).insert(stem, kept_count);
                drop(files);
                self.publish_depth();
            }
            Ok(None) => {}
            Err(e) => obs::warn(
                "rapd.wal",
                "wal_compact_failed",
                &[
                    ("tenant", obs::Value::Str(tenant.to_string())),
                    ("error", obs::Value::Str(e.to_string())),
                ],
            ),
        }
    }

    /// Scan every journal segment, repair torn tails, and return the
    /// surviving entries ordered by sequence number — the replay stream.
    /// Unparseable (foreign-format) lines are skipped, never fatal: a
    /// journal that cannot be fully read must still yield what it can.
    pub fn recover(&self) -> Vec<WalEntry> {
        let mut entries = Vec::new();
        let mut depths: HashMap<String, u64> = HashMap::new();
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return entries;
        };
        for dirent in listing.flatten() {
            let path = dirent.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(".jsonl") || name == "schemas.jsonl" {
                continue;
            }
            let stem = name.trim_end_matches(".jsonl").to_string();
            if let Err(e) = repair_spool(&path) {
                obs::warn(
                    "rapd.wal",
                    "wal_segment_unreadable",
                    &[
                        ("path", obs::Value::Str(path.display().to_string())),
                        ("error", obs::Value::Str(e.to_string())),
                    ],
                );
                continue;
            }
            let Ok(data) = fs::read_to_string(&path) else {
                continue;
            };
            let mut count = 0u64;
            for line in data.lines() {
                if let Some(entry) = parse_wal_line(line) {
                    count += 1;
                    entries.push(entry);
                }
            }
            depths.insert(stem, count);
        }
        entries.sort_by_key(|e| e.seq);
        *lock_recover(&self.depth) = depths;
        self.publish_depth();
        entries
    }

    /// Journal one tenant's registered schema so replay can re-resolve
    /// its frames after a restart. Append-only; duplicates are fine (the
    /// last entry for a tenant wins at recovery).
    pub fn append_schema(&self, tenant: &str, parts: &[(String, Vec<String>)]) {
        let doc = Json::Obj(vec![
            ("tenant".to_string(), Json::str(tenant)),
            (
                "attrs".to_string(),
                Json::Arr(
                    parts
                        .iter()
                        .map(|(name, elements)| {
                            Json::Arr(vec![
                                Json::str(name),
                                Json::Arr(elements.iter().map(Json::str).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let line = frame_spool_line(&doc.render());
        let path = self.dir.join("schemas.jsonl");
        let result = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}").and_then(|()| f.flush()));
        if let Err(e) = result {
            obs::warn(
                "rapd.wal",
                "schema_journal_failed",
                &[
                    ("tenant", obs::Value::Str(tenant.to_string())),
                    ("error", obs::Value::Str(e.to_string())),
                ],
            );
        }
    }

    /// Load the schema journal: `(tenant, attribute parts)` with the last
    /// entry per tenant winning.
    pub fn recover_schemas(&self) -> Vec<(String, SchemaParts)> {
        let path = self.dir.join("schemas.jsonl");
        if repair_spool(&path).is_err() {
            return Vec::new();
        }
        let Ok(data) = fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut latest: Vec<(String, SchemaParts)> = Vec::new();
        for line in data.lines() {
            let Some(doc) = parse_framed(line) else {
                continue;
            };
            let Some(parsed) = parse_schema_entry(&doc) else {
                continue;
            };
            match latest.iter_mut().find(|(t, _)| *t == parsed.0) {
                Some(slot) => slot.1 = parsed.1,
                None => latest.push(parsed),
            }
        }
        latest
    }
}

/// Strip the CRC framing (when present and valid) and parse the JSON.
fn parse_framed(line: &str) -> Option<Json> {
    use crate::sink::{judge_line, LineVerdict};
    match judge_line(line) {
        LineVerdict::Verified => {
            let (json, _) = line.rsplit_once('\t')?;
            crate::json::parse(json).ok()
        }
        LineVerdict::Legacy => crate::json::parse(line).ok(),
        LineVerdict::Corrupt => None,
    }
}

fn parse_wal_line(line: &str) -> Option<WalEntry> {
    WalEntry::from_json(&parse_framed(line)?)
}

fn parse_schema_entry(doc: &Json) -> Option<(String, SchemaParts)> {
    let tenant = doc.get("tenant")?.as_str()?.to_string();
    let parts = doc
        .get("attrs")?
        .as_arr()?
        .iter()
        .map(|attr| {
            let attr = attr.as_arr()?;
            let name = attr.first()?.as_str()?.to_string();
            let elements = attr
                .get(1)?
                .as_arr()?
                .iter()
                .map(|e| Some(e.as_str()?.to_string()))
                .collect::<Option<Vec<String>>>()?;
            Some((name, elements))
        })
        .collect::<Option<Vec<_>>>()?;
    Some((tenant, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new(1))
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapd-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(tenant: &str, seq: u64, ts: Option<u64>) -> WalEntry {
        WalEntry {
            tenant: tenant.to_string(),
            frame: format!("{tenant}-{seq:08x}-1754700000123"),
            seq,
            ts,
            rows: vec![
                (vec!["L1".to_string(), "S1".to_string()], 100.5),
                (vec!["L2".to_string(), "S2".to_string()], 0.25),
            ],
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let e = entry("edge", 42, Some(60_000));
        let doc = crate::json::parse(&e.to_json().render()).unwrap();
        assert_eq!(WalEntry::from_json(&doc), Some(e));
        let no_ts = entry("edge", 7, None);
        let doc = crate::json::parse(&no_ts.to_json().render()).unwrap();
        assert_eq!(WalEntry::from_json(&doc), Some(no_ts));
        // foreign shapes are skipped, not fatal
        let junk = crate::json::parse(r#"{"tenant":"t","seq":"not-a-number"}"#).unwrap();
        assert_eq!(WalEntry::from_json(&junk), None);
    }

    #[test]
    fn appended_entries_recover_in_seq_order_across_reopen() {
        let dir = scratch("recover");
        let m = metrics();
        {
            let wal = FrameWal::open(&dir, Arc::clone(&m), false).unwrap();
            wal.append(&entry("b", 2, None));
            wal.append(&entry("a", 1, Some(5)));
            wal.append(&entry("a", 3, Some(6)));
            assert_eq!(wal.depth(), 3);
            assert_eq!(m.wal_appends.load(Ordering::Relaxed), 3);
        }
        // a fresh process opens the same directory
        let wal = FrameWal::open(&dir, metrics(), false).unwrap();
        let entries = wal.recover();
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [1, 2, 3],
            "replay order is the global admission order"
        );
        assert_eq!(entries[0].tenant, "a");
        assert_eq!(entries[1].tenant, "b");
        assert_eq!(entries[0].rows.len(), 2);
        assert_eq!(wal.depth(), 3, "recovery rebuilds the depth gauge");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_acknowledged_prefix_and_keeps_appending() {
        let dir = scratch("compact");
        let m = metrics();
        let wal = FrameWal::open(&dir, Arc::clone(&m), false).unwrap();
        for seq in 1..=4 {
            wal.append(&entry("t", seq, None));
        }
        wal.compact("t", 3);
        assert_eq!(m.wal_compactions.load(Ordering::Relaxed), 1);
        assert_eq!(wal.depth(), 1);
        // the evicted handle reopens the compacted segment transparently
        wal.append(&entry("t", 5, None));
        let entries = wal.recover();
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [4, 5],
            "only the unacknowledged suffix survives"
        );
        // acking everything leaves an empty but intact segment
        wal.compact("t", 5);
        assert_eq!(wal.recover().len(), 0);
        assert_eq!(wal.depth(), 0);
        // a tenant with no segment is a no-op, not an error
        wal.compact("ghost", 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_recovery() {
        let dir = scratch("torn");
        {
            let wal = FrameWal::open(&dir, metrics(), false).unwrap();
            wal.append(&entry("t", 1, None));
            wal.append(&entry("t", 2, None));
        }
        // simulate kill -9 mid-append: half a line, no newline
        let path = dir.join("wal/t.jsonl");
        let mut data = fs::read_to_string(&path).unwrap();
        data.push_str("{\"tenant\":\"t\",\"frame\":\"t-00");
        fs::write(&path, &data).unwrap();
        let wal = FrameWal::open(&dir, metrics(), false).unwrap();
        let entries = wal.recover();
        assert_eq!(entries.iter().map(|e| e.seq).collect::<Vec<_>>(), [1, 2]);
        // the repair also rewrote the file, so a second scan is clean
        let clean = fs::read_to_string(&path).unwrap();
        assert_eq!(clean.lines().count(), 2);
        assert!(clean.ends_with('\n'));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_failure_latches_degraded_mode() {
        let dir = scratch("degraded");
        let m = metrics();
        let wal = FrameWal::open(&dir, Arc::clone(&m), false).unwrap();
        // occupy the tenant's segment path with a directory so the lazy
        // open fails — a stand-in for a full or vanished volume
        fs::create_dir_all(dir.join("wal/t.jsonl")).unwrap();
        wal.append(&entry("t", 1, None));
        assert!(wal.is_degraded());
        assert_eq!(m.wal_append_errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.wal_appends.load(Ordering::Relaxed), 0);
        // further appends are silently skipped — service over durability
        wal.append(&entry("other", 2, None));
        assert_eq!(m.wal_append_errors.load(Ordering::Relaxed), 1);
        assert!(!dir.join("wal/other.jsonl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_tenant_names_cannot_escape_the_wal_directory() {
        let dir = scratch("hostile");
        let wal = FrameWal::open(&dir, metrics(), false).unwrap();
        wal.append(&entry("../escape", 1, None));
        assert!(dir.join("wal/___escape-ed1965a3.jsonl").is_file());
        assert!(!dir.parent().unwrap().join("escape.jsonl").exists());
        // the entry still recovers under its true tenant name
        let entries = wal.recover();
        assert_eq!(entries[0].tenant, "../escape");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_never_vanish_into_a_compaction() {
        // Regression: compact once held the segment lock only to evict
        // the cached handle, so an append landing between its read and
        // its rename went into the replaced inode and silently vanished.
        let dir = scratch("race");
        let wal = Arc::new(FrameWal::open(&dir, metrics(), false).unwrap());
        const TOTAL: u64 = 300;
        const ACK: u64 = 100;
        let appender = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for seq in 1..=TOTAL {
                    wal.append(&entry("t", seq, None));
                }
            })
        };
        // hammer compaction with a fixed ack while appends stream in
        for _ in 0..200 {
            wal.compact("t", ACK);
        }
        appender.join().unwrap();
        wal.compact("t", ACK);
        let entries = wal.recover();
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (ACK + 1..=TOTAL).collect::<Vec<_>>(),
            "every unacknowledged append survives concurrent compaction"
        );
        assert_eq!(wal.depth(), TOTAL - ACK, "depth matches the survivors");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_only_drops_the_acking_tenants_entries() {
        // Defense in depth: if two tenants ever did share a segment
        // (they cannot since stems are collision-free, but a hand-moved
        // spool might), one tenant's ack must not discard the other's
        // unacknowledged frames. Forge a shared segment by hand.
        let dir = scratch("shared");
        let wal = FrameWal::open(&dir, metrics(), false).unwrap();
        let mut forged = String::new();
        for e in [
            entry("x", 1, None),
            entry("y", 2, None),
            entry("x", 3, None),
        ] {
            forged.push_str(&frame_spool_line(&e.to_json().render()));
            forged.push('\n');
        }
        fs::write(dir.join("wal/x.jsonl"), forged).unwrap();
        wal.compact("x", 10);
        let entries = wal.recover();
        assert_eq!(
            entries
                .iter()
                .map(|e| (e.tenant.as_str(), e.seq))
                .collect::<Vec<_>>(),
            [("y", 2)],
            "the foreign tenant's entry survives x's blanket ack"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_mode_appends_and_recovers_like_the_default() {
        let dir = scratch("fsync");
        let wal = FrameWal::open(&dir, metrics(), true).unwrap();
        wal.append(&entry("t", 1, Some(9)));
        wal.append(&entry("t", 2, None));
        wal.compact("t", 1);
        let entries = wal.recover();
        assert_eq!(entries.iter().map(|e| e.seq).collect::<Vec<_>>(), [2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_journal_round_trips_with_last_entry_winning() {
        let dir = scratch("schemas");
        let parts_v1 = vec![("loc".to_string(), vec!["L1".to_string()])];
        let parts_v2 = vec![
            ("loc".to_string(), vec!["L1".to_string(), "L2".to_string()]),
            ("isp".to_string(), vec!["I1".to_string()]),
        ];
        {
            let wal = FrameWal::open(&dir, metrics(), false).unwrap();
            wal.append_schema("edge", &parts_v1);
            wal.append_schema("core", &parts_v1);
            wal.append_schema("edge", &parts_v2);
        }
        let wal = FrameWal::open(&dir, metrics(), false).unwrap();
        let schemas = wal.recover_schemas();
        assert_eq!(schemas.len(), 2);
        assert_eq!(schemas[0], ("edge".to_string(), parts_v2));
        assert_eq!(schemas[1], ("core".to_string(), parts_v1));
        // frame recovery skips the schema journal
        assert!(wal.recover().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
