//! The blackbox: flight-recorder dumps written at the moment of failure.
//!
//! Each shard worker keeps a bounded, allocation-free ring of its recent
//! span/event lines (see [`obs::recorder`]). When a pipeline panics, a
//! localization blows its deadline, or a tenant breaker opens, the
//! [`BlackboxWriter`] freezes every registered ring into one dump file
//! under `<spool_dir>/blackbox/` — the last moments of telemetry leading
//! up to the failure, survivable across the crash it documents.
//!
//! # File format
//!
//! A dump is JSONL with the same `{json}\t{crc32:08x}` framing as the
//! incident spool, so a dump torn by the very crash it was recording still
//! recovers line-by-line:
//!
//! 1. one header line: `{"kind":"blackbox","trigger":...,"tenant":...,
//!    "frame":...,"ts_micros":...,"rings":N}`;
//! 2. per ring, one ring header: `{"kind":"ring","name":...,
//!    "recorded":...,"dropped":...,"lines":M}` followed by its `M`
//!    recorded span/event lines, oldest first.
//!
//! The `frame` field is the failing frame's correlation token — the same
//! token on its spans, incident record, and quarantine twin — so one grep
//! across all four sinks reconstructs the frame's whole life.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::sink::{frame_spool_line, judge_line, LineVerdict};

/// Writes flight-recorder dumps into `<spool_dir>/blackbox/`.
#[derive(Debug)]
pub struct BlackboxWriter {
    /// `None` when the daemon runs without a spool directory — dumps are
    /// then skipped (there is nowhere durable to put them).
    dir: Option<PathBuf>,
    /// Per-process dump sequence number, part of the file name so dumps
    /// in the same microsecond cannot collide.
    seq: AtomicU64,
    metrics: Arc<Metrics>,
}

impl BlackboxWriter {
    /// Open the writer. When `spool_dir` is given, `<spool_dir>/blackbox`
    /// is created eagerly so the failure path never has to.
    ///
    /// # Errors
    ///
    /// Fails when the blackbox directory cannot be created.
    pub fn open(spool_dir: Option<&Path>, metrics: Arc<Metrics>) -> io::Result<Self> {
        let dir = match spool_dir {
            None => None,
            Some(base) => {
                let dir = base.join("blackbox");
                fs::create_dir_all(&dir)?;
                Some(dir)
            }
        };
        Ok(BlackboxWriter {
            dir,
            seq: AtomicU64::new(0),
            metrics,
        })
    }

    /// Where dumps land, when a spool directory is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Freeze every registered flight-recorder ring into one dump file.
    ///
    /// `trigger` must be one of the `rapd_blackbox_dumps_total` labels
    /// (`panic`, `deadline`, `breaker_open`); `frame` is the failing
    /// frame's correlation token when the failure is frame-scoped.
    ///
    /// Returns the dump path, or `None` when no spool directory is
    /// configured or the write failed — the failure path must never fail
    /// harder because its post-mortem could not be written.
    pub fn dump(&self, trigger: &str, tenant: &str, frame: Option<&str>) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("blackbox-{micros}-{seq:04}-{trigger}.jsonl"));
        let rings = obs::recorder::snapshot();
        let mut out = String::with_capacity(4096);
        let header = Json::Obj(vec![
            ("kind".to_string(), Json::str("blackbox")),
            ("trigger".to_string(), Json::str(trigger)),
            ("tenant".to_string(), Json::str(tenant)),
            (
                "frame".to_string(),
                match frame {
                    None => Json::Null,
                    Some(id) => Json::str(id),
                },
            ),
            ("ts_micros".to_string(), Json::Num(micros as f64)),
            ("rings".to_string(), Json::Num(rings.len() as f64)),
        ]);
        out.push_str(&frame_spool_line(&header.render()));
        out.push('\n');
        for ring in &rings {
            let ring_header = Json::Obj(vec![
                ("kind".to_string(), Json::str("ring")),
                ("name".to_string(), Json::str(&ring.name)),
                ("recorded".to_string(), Json::Num(ring.recorded as f64)),
                ("dropped".to_string(), Json::Num(ring.dropped as f64)),
                ("lines".to_string(), Json::Num(ring.lines.len() as f64)),
            ]);
            out.push_str(&frame_spool_line(&ring_header.render()));
            out.push('\n');
            for line in &ring.lines {
                out.push_str(&frame_spool_line(line));
                out.push('\n');
            }
        }
        let result = fs::File::create(&path).and_then(|mut f| {
            f.write_all(out.as_bytes())?;
            f.flush()
        });
        match result {
            Ok(()) => {
                if let Some(c) = self.metrics.blackbox_dumps.for_label(trigger) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                obs::warn(
                    "rapd.blackbox",
                    "blackbox_dumped",
                    &[
                        ("trigger", obs::Value::Str(trigger.to_string())),
                        ("tenant", obs::Value::Str(tenant.to_string())),
                        ("path", obs::Value::Str(path.display().to_string())),
                        ("rings", obs::Value::from(rings.len() as u64)),
                    ],
                );
                Some(path)
            }
            Err(e) => {
                obs::warn(
                    "rapd.blackbox",
                    "blackbox_write_failed",
                    &[
                        ("trigger", obs::Value::Str(trigger.to_string())),
                        ("error", obs::Value::Str(e.to_string())),
                    ],
                );
                None
            }
        }
    }
}

/// One recovered blackbox dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxDump {
    /// What caused the dump (`panic`, `deadline`, or `breaker_open`).
    pub trigger: String,
    /// The tenant whose failure triggered it.
    pub tenant: String,
    /// The failing frame's correlation token, when frame-scoped.
    pub frame: Option<String>,
    /// Dump wall-clock time in microseconds since the Unix epoch.
    pub ts_micros: u64,
    /// The frozen rings, one per registered recorder.
    pub rings: Vec<BlackboxRing>,
}

/// One flight-recorder ring inside a recovered dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxRing {
    /// The recorder's registered name (e.g. `shard-0`).
    pub name: String,
    /// Lines recorded over the recorder's lifetime.
    pub recorded: u64,
    /// Lines evicted because the ring was full.
    pub dropped: u64,
    /// The retained span/event lines, oldest first.
    pub lines: Vec<String>,
}

/// Read a dump back, CRC-verifying every line. Lines that fail their
/// checksum — the torn tail of a dump interrupted by the crash it was
/// recording — are skipped, and the intact prefix is still returned.
///
/// # Errors
///
/// Fails when the file cannot be read or its header line is missing or
/// malformed (nothing recoverable at all).
pub fn read_dump(path: &Path) -> io::Result<BlackboxDump> {
    let data = fs::read_to_string(path)?;
    let mut payloads = data.lines().filter_map(|line| match judge_line(line) {
        LineVerdict::Verified => line.rsplit_once('\t').map(|(json, _)| json),
        _ => None,
    });
    let header_line = payloads
        .next()
        .ok_or_else(|| io::Error::other("blackbox dump has no intact header line"))?;
    let header = crate::json::parse(header_line)
        .map_err(|e| io::Error::other(format!("bad blackbox header: {e}")))?;
    if header.get("kind").and_then(Json::as_str) != Some("blackbox") {
        return Err(io::Error::other("first line is not a blackbox header"));
    }
    let field = |doc: &Json, name: &str| -> io::Result<String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| io::Error::other(format!("blackbox header missing '{name}'")))
    };
    let mut dump = BlackboxDump {
        trigger: field(&header, "trigger")?,
        tenant: field(&header, "tenant")?,
        frame: header
            .get("frame")
            .and_then(Json::as_str)
            .map(str::to_string),
        ts_micros: header.get("ts_micros").and_then(Json::as_u64).unwrap_or(0),
        rings: Vec::new(),
    };
    for payload in payloads {
        let is_ring_header = crate::json::parse(payload)
            .ok()
            .filter(|doc| doc.get("kind").and_then(Json::as_str) == Some("ring"))
            .map(|doc| BlackboxRing {
                name: doc
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                recorded: doc.get("recorded").and_then(Json::as_u64).unwrap_or(0),
                dropped: doc.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                lines: Vec::new(),
            });
        match is_ring_header {
            Some(ring) => dump.rings.push(ring),
            None => {
                if let Some(ring) = dump.rings.last_mut() {
                    ring.lines.push(payload.to_string());
                }
                // a recorded line before any ring header can only mean the
                // ring header itself was torn; nothing to attach it to
            }
        }
    }
    Ok(dump)
}

/// Every dump file currently in `dir`, sorted by file name (which sorts
/// oldest-first because names embed the dump timestamp).
///
/// # Errors
///
/// Fails when the directory cannot be read (a missing directory yields an
/// empty list — the daemon may simply never have dumped).
pub fn list_dumps(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("blackbox-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new(1))
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapd-bbox-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dump_round_trips_with_ring_contents() {
        let dir = scratch("roundtrip");
        let m = metrics();
        let writer = BlackboxWriter::open(Some(&dir), Arc::clone(&m)).unwrap();
        let handle = std::thread::spawn(move || {
            let _rec = obs::recorder::register("test-worker", 8);
            obs::info(
                "bbox",
                "before_failure",
                &[("step", obs::Value::from(1u64))],
            );
            obs::info("bbox", "at_failure", &[("step", obs::Value::from(2u64))]);
            writer.dump("panic", "edge", Some("edge-00000001-1700"))
        });
        let path = handle.join().unwrap().expect("dump path");
        assert!(path.starts_with(dir.join("blackbox")));
        assert_eq!(m.blackbox_dumps.panic.load(Ordering::Relaxed), 1);
        let dump = read_dump(&path).unwrap();
        assert_eq!(dump.trigger, "panic");
        assert_eq!(dump.tenant, "edge");
        assert_eq!(dump.frame.as_deref(), Some("edge-00000001-1700"));
        let ring = dump
            .rings
            .iter()
            .find(|r| r.name == "test-worker")
            .expect("worker ring present");
        assert_eq!(ring.lines.len(), 2);
        assert!(ring.lines[0].contains("before_failure"));
        assert!(ring.lines[1].contains("at_failure"));
        assert_eq!(list_dumps(&dir.join("blackbox")).unwrap(), vec![path]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_intact_prefix() {
        let dir = scratch("torn");
        let writer = BlackboxWriter::open(Some(&dir), metrics()).unwrap();
        let path = {
            let _rec = obs::recorder::register("torn-worker", 8);
            obs::info("bbox", "kept_line", &[]);
            obs::info("bbox", "torn_line", &[]);
            writer.dump("deadline", "t", None).expect("dump path")
        };
        // tear the final line mid-write, as a crash would
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        fs::write(&path, &text[..cut]).unwrap();
        let dump = read_dump(&path).unwrap();
        assert_eq!(dump.trigger, "deadline");
        assert_eq!(dump.frame, None);
        let ring = dump
            .rings
            .iter()
            .find(|r| r.name == "torn-worker")
            .expect("ring header intact");
        assert_eq!(ring.lines.len(), 1, "torn final line must be skipped");
        assert!(ring.lines[0].contains("kept_line"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_spool_dir_means_no_dump_and_no_count() {
        let m = metrics();
        let writer = BlackboxWriter::open(None, Arc::clone(&m)).unwrap();
        assert!(writer.dir().is_none());
        assert_eq!(writer.dump("panic", "t", None), None);
        assert_eq!(m.blackbox_dumps.total(), 0);
        assert_eq!(
            list_dumps(Path::new("/nonexistent/blackbox-dir")).unwrap(),
            Vec::<PathBuf>::new()
        );
    }
}
