//! A minimal JSON value, parser, and writer.
//!
//! The wire protocol and incident spool need structured interchange but the
//! workspace builds fully offline with zero third-party dependencies, so
//! this module hand-rolls the small JSON subset rapd speaks: objects,
//! arrays, strings (with escapes), finite numbers, booleans, and null.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON cannot express NaN/Infinity; null is the lossless-ish fallback
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("number '{text}' overflows a double"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with the low half
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so valid)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let text = r#"{"type":"observe","rows":[[["L1","S1"],42.5],[["L2","S2"],0]],"ok":true,"none":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("observe"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_f64(), Some(42.5));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::str("a\"b\\c\nd\te\u{1}é€");
        let back = parse(&original.render()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::str("é"));
        // surrogate pair for 😀 (U+1F600)
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        // lone high surrogate degrades to the replacement character
        assert_eq!(parse(r#""\ud83dx""#).unwrap(), Json::str("\u{FFFD}x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1}trailing",
            "nan",
            "1e999",
            "{'single':1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.5).render(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
