//! Admission control: the validation gate between frame decode and the
//! shard pipelines.
//!
//! Telemetry from real CDN collectors is dirty: exporters emit NaN (wire
//! form: JSON `null`) for missing counters, double-report leaves, send
//! negative rates after counter resets, and ship attribute values that
//! were never registered in the tenant's schema. This module decides, per
//! observe frame, whether to *repair* (clamp, dedup, strip) or
//! *quarantine* (divert the whole frame to the quarantine spool) — the
//! shard pipelines only ever see clean frames.
//!
//! Verdict rules, in evaluation order:
//!
//! 1. **Row arity mismatch** → protocol error ([`ProtoError::Arity`]).
//!    The sender is broken, not the data; the frame does not count as
//!    ingested.
//! 2. **Any non-finite value** → quarantine the whole frame
//!    (`non_finite`). Admitting the finite remainder would skew the
//!    tenant's per-leaf history against the clean-stream baseline.
//! 3. **Unknown attribute values** (schema drift): each distinct
//!    `(attribute, value)` pair lands in the tenant's drift set. While
//!    the set stays within the configured allowance
//!    ([`ServiceConfig::schema_drift_limit`]) the offending rows are
//!    stripped and counted as `schema_drift` repairs. Once the allowance
//!    is exhausted, frames carrying *new* unknown values are quarantined
//!    whole — the tenant's schema has genuinely moved and silently eating
//!    rows would hide it. A frame whose every row drifted is quarantined
//!    too: an empty frame teaches the pipeline nothing.
//! 4. **Duplicate leaves** (identical element vectors) collapse keep-last
//!    at the first occurrence's position (`duplicate` repairs). The
//!    pipeline sums duplicate leaves into a phantom volume spike, so the
//!    dedup must happen here, before the frame is built.
//! 5. **Negative values** clamp to zero (`negative` repairs): volume
//!    KPIs are non-negative; a negative reading is a counter reset.
//!
//! The ordering is load-bearing: non-finite wins over drift so a junk
//! frame never pollutes the drift registry, and dedup precedes the clamp
//! so a repair is only counted for the surviving value.
//!
//! [`ServiceConfig::schema_drift_limit`]: crate::ServiceConfig::schema_drift_limit

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use mdkpi::Schema;

use crate::proto::ProtoError;
use crate::sync::lock_recover;

/// Wire rows as they arrive: positional element names plus a value.
pub(crate) type WireRows = Vec<(Vec<String>, f64)>;

/// What admission decided about one frame.
#[derive(Debug)]
pub(crate) enum Verdict {
    /// The frame (possibly repaired) is safe for
    /// [`crate::proto::build_frame`].
    Admit(Admitted),
    /// Divert the whole frame to the quarantine spool.
    Quarantine {
        /// Reason label (a `rapd_frames_quarantined_total` reason).
        reason: &'static str,
        /// Human-oriented explanation for the quarantine record.
        detail: String,
    },
}

/// An admitted frame and the repairs applied on the way in.
#[derive(Debug, Default)]
pub(crate) struct Admitted {
    /// Sanitized rows: drifted rows stripped, duplicates collapsed,
    /// negatives clamped. Every element name resolves in the schema.
    pub rows: WireRows,
    /// Extra occurrences of duplicated leaves collapsed keep-last.
    pub repaired_duplicate: u64,
    /// Negative values clamped to zero.
    pub repaired_negative: u64,
    /// Rows stripped because an attribute value was unknown but within
    /// the drift allowance.
    pub repaired_drift: u64,
}

impl Admitted {
    /// Whether any repair was applied.
    pub fn repaired(&self) -> bool {
        self.repaired_duplicate + self.repaired_negative + self.repaired_drift > 0
    }
}

/// Per-tenant admission state: the schema-drift registries.
#[derive(Debug)]
pub(crate) struct AdmissionControl {
    drift_limit: usize,
    /// Tenant → distinct unknown `(attribute, value)` pairs seen so far.
    drifted: Mutex<HashMap<String, HashSet<(String, String)>>>,
}

impl AdmissionControl {
    /// Create with the per-tenant drift allowance
    /// (`--schema-drift-limit`; `0` quarantines on the first unknown
    /// value).
    pub fn new(drift_limit: usize) -> Self {
        AdmissionControl {
            drift_limit,
            drifted: Mutex::new(HashMap::new()),
        }
    }

    /// Distinct unknown attribute values registered for a tenant.
    #[cfg(test)]
    pub fn drift_len(&self, tenant: &str) -> usize {
        lock_recover(&self.drifted)
            .get(tenant)
            .map_or(0, HashSet::len)
    }

    /// Judge one frame's rows against the tenant's schema.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Arity`] when a row's element count differs from the
    /// schema's attribute count — a protocol error, not dirty data, so
    /// the frame must not count as ingested.
    pub fn admit(
        &self,
        tenant: &str,
        schema: &Schema,
        rows: &[(Vec<String>, f64)],
    ) -> Result<Verdict, ProtoError> {
        let num_attrs = schema.num_attributes();
        for (names, _) in rows {
            if names.len() != num_attrs {
                return Err(ProtoError::Arity {
                    expected: num_attrs,
                    got: names.len(),
                });
            }
        }
        for (names, value) in rows {
            if !value.is_finite() {
                return Ok(Verdict::Quarantine {
                    reason: "non_finite",
                    detail: format!("leaf ({}) value {value} is not finite", names.join(", ")),
                });
            }
        }

        // Schema drift: strip rows with known-drifted values; a new
        // unknown value beyond the allowance quarantines the frame.
        let mut kept: WireRows = Vec::with_capacity(rows.len());
        let mut repaired_drift = 0u64;
        {
            let mut drifted = lock_recover(&self.drifted);
            let registry = drifted.entry(tenant.to_string()).or_default();
            'rows: for (names, value) in rows {
                for (attr_id, name) in schema.attr_ids().zip(names.iter()) {
                    let attr = schema.attribute(attr_id);
                    if attr.element(name).is_some() {
                        continue;
                    }
                    let key = (attr.name().to_string(), name.clone());
                    if !registry.contains(&key) {
                        if registry.len() >= self.drift_limit {
                            return Ok(Verdict::Quarantine {
                                reason: "schema_drift",
                                detail: format!(
                                    "unknown {}=\"{}\" exceeds the drift allowance of {}",
                                    key.0, key.1, self.drift_limit
                                ),
                            });
                        }
                        registry.insert(key);
                    }
                    repaired_drift += 1;
                    continue 'rows;
                }
                kept.push((names.clone(), *value));
            }
        }
        if kept.is_empty() && !rows.is_empty() {
            return Ok(Verdict::Quarantine {
                reason: "schema_drift",
                detail: "every row referenced unknown attribute values".to_string(),
            });
        }

        // Duplicate leaves: keep the last value at the first occurrence's
        // position, so row order stays stable for downstream comparison.
        let mut index: HashMap<Vec<String>, usize> = HashMap::with_capacity(kept.len());
        let mut rows_out: WireRows = Vec::with_capacity(kept.len());
        let mut repaired_duplicate = 0u64;
        for (names, value) in kept {
            if let Some(&i) = index.get(&names) {
                rows_out[i].1 = value;
                repaired_duplicate += 1;
            } else {
                index.insert(names.clone(), rows_out.len());
                rows_out.push((names, value));
            }
        }

        let mut repaired_negative = 0u64;
        for (_, value) in &mut rows_out {
            if *value < 0.0 {
                *value = 0.0;
                repaired_negative += 1;
            }
        }

        Ok(Verdict::Admit(Admitted {
            rows: rows_out,
            repaired_duplicate,
            repaired_negative,
            repaired_drift,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("location", ["L1", "L2"])
            .attribute("isp", ["I1", "I2"])
            .build()
            .unwrap()
    }

    fn row(l: &str, i: &str, v: f64) -> (Vec<String>, f64) {
        (vec![l.to_string(), i.to_string()], v)
    }

    fn admit(ac: &AdmissionControl, rows: &[(Vec<String>, f64)]) -> Verdict {
        ac.admit("t", &schema(), rows).expect("no protocol error")
    }

    #[test]
    fn clean_rows_pass_through_unchanged() {
        let ac = AdmissionControl::new(8);
        let rows = vec![row("L1", "I1", 10.0), row("L2", "I2", 20.0)];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows, rows);
                assert!(!a.repaired());
            }
            other => panic!("clean frame must be admitted: {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_a_protocol_error_not_a_quarantine() {
        let ac = AdmissionControl::new(8);
        let rows = vec![(vec!["L1".to_string()], 1.0)];
        let err = ac.admit("t", &schema(), &rows).unwrap_err();
        assert_eq!(
            err,
            ProtoError::Arity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn non_finite_value_quarantines_the_whole_frame() {
        let ac = AdmissionControl::new(8);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let rows = vec![row("L1", "I1", 5.0), row("L2", "I2", bad)];
            match admit(&ac, &rows) {
                Verdict::Quarantine { reason, detail } => {
                    assert_eq!(reason, "non_finite");
                    assert!(detail.contains("L2"), "detail names the leaf: {detail}");
                }
                other => panic!("{bad} must quarantine: {other:?}"),
            }
        }
        // and it never polluted the drift registry
        assert_eq!(ac.drift_len("t"), 0);
    }

    #[test]
    fn negative_values_clamp_to_zero_and_count() {
        let ac = AdmissionControl::new(8);
        let rows = vec![row("L1", "I1", -3.0), row("L2", "I2", 7.0)];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows[0].1, 0.0);
                assert_eq!(a.rows[1].1, 7.0);
                assert_eq!(a.repaired_negative, 1);
                assert_eq!(a.repaired_duplicate + a.repaired_drift, 0);
            }
            other => panic!("negative value must be repaired: {other:?}"),
        }
    }

    #[test]
    fn duplicate_leaves_collapse_keep_last_at_first_position() {
        let ac = AdmissionControl::new(8);
        let rows = vec![
            row("L1", "I1", 1.0),
            row("L2", "I2", 2.0),
            row("L1", "I1", 9.0),
            row("L1", "I1", 4.0),
        ];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows, vec![row("L1", "I1", 4.0), row("L2", "I2", 2.0)]);
                assert_eq!(a.repaired_duplicate, 2, "one repair per extra occurrence");
            }
            other => panic!("duplicates must be repaired: {other:?}"),
        }
    }

    #[test]
    fn drifted_rows_are_stripped_within_the_allowance() {
        let ac = AdmissionControl::new(2);
        let rows = vec![
            row("L1", "I1", 1.0),
            row("L9", "I1", 2.0), // unknown location
            row("L1", "I9", 3.0), // unknown isp
        ];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows, vec![row("L1", "I1", 1.0)]);
                assert_eq!(a.repaired_drift, 2);
            }
            other => panic!("drift within allowance must repair: {other:?}"),
        }
        assert_eq!(ac.drift_len("t"), 2);
        // the same unknown values keep being stripped without growing the
        // registry, even with a now-full allowance
        let rows = vec![row("L9", "I1", 4.0), row("L2", "I2", 5.0)];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows, vec![row("L2", "I2", 5.0)]);
                assert_eq!(a.repaired_drift, 1);
            }
            other => panic!("registered drift must keep repairing: {other:?}"),
        }
        assert_eq!(ac.drift_len("t"), 2);
    }

    #[test]
    fn drift_beyond_the_allowance_quarantines() {
        let ac = AdmissionControl::new(1);
        match admit(&ac, &[row("L9", "I1", 1.0), row("L1", "I1", 2.0)]) {
            Verdict::Admit(a) => assert_eq!(a.repaired_drift, 1),
            other => panic!("first unknown fits the allowance: {other:?}"),
        }
        match admit(&ac, &[row("L8", "I1", 1.0), row("L1", "I1", 2.0)]) {
            Verdict::Quarantine { reason, detail } => {
                assert_eq!(reason, "schema_drift");
                assert!(detail.contains("L8"), "detail names the value: {detail}");
            }
            other => panic!("second distinct unknown must quarantine: {other:?}"),
        }
    }

    #[test]
    fn zero_drift_limit_quarantines_the_first_unknown() {
        let ac = AdmissionControl::new(0);
        match admit(&ac, &[row("L9", "I1", 1.0)]) {
            Verdict::Quarantine { reason, .. } => assert_eq!(reason, "schema_drift"),
            other => panic!("zero tolerance must quarantine: {other:?}"),
        }
    }

    #[test]
    fn fully_drifted_frame_is_quarantined_not_admitted_empty() {
        let ac = AdmissionControl::new(8);
        match admit(&ac, &[row("L9", "I1", 1.0), row("L8", "I2", 2.0)]) {
            Verdict::Quarantine { reason, .. } => assert_eq!(reason, "schema_drift"),
            other => panic!("all-drifted frame must quarantine: {other:?}"),
        }
    }

    #[test]
    fn drift_registries_are_per_tenant() {
        let ac = AdmissionControl::new(1);
        let s = schema();
        assert!(matches!(
            ac.admit("a", &s, &[row("L9", "I1", 1.0), row("L1", "I1", 2.0)]),
            Ok(Verdict::Admit(_))
        ));
        // tenant "b" has its own empty registry with its own allowance
        assert!(matches!(
            ac.admit("b", &s, &[row("L8", "I1", 1.0), row("L1", "I1", 2.0)]),
            Ok(Verdict::Admit(_))
        ));
        assert_eq!(ac.drift_len("a"), 1);
        assert_eq!(ac.drift_len("b"), 1);
        assert_eq!(ac.drift_len("absent"), 0);
    }

    #[test]
    fn repairs_compose_in_one_frame() {
        let ac = AdmissionControl::new(8);
        let rows = vec![
            row("L1", "I1", -2.0),
            row("L9", "I1", 5.0),  // stripped (drift)
            row("L1", "I1", -4.0), // keep-last duplicate, then clamped
            row("L2", "I2", 6.0),
        ];
        match admit(&ac, &rows) {
            Verdict::Admit(a) => {
                assert_eq!(a.rows, vec![row("L1", "I1", 0.0), row("L2", "I2", 6.0)]);
                assert_eq!(a.repaired_drift, 1);
                assert_eq!(a.repaired_duplicate, 1);
                assert_eq!(a.repaired_negative, 1, "only the surviving value clamps");
                assert!(a.repaired());
            }
            other => panic!("composite frame must be admitted: {other:?}"),
        }
    }
}
