//! A minimal embedded HTTP listener serving Prometheus `/metrics`.
//!
//! One accept-loop thread; each request is answered inline (scrapes are
//! rare and tiny, so no per-connection threads). Only `GET /metrics` is
//! meaningful; everything else is 404. The response always closes the
//! connection, so HTTP/1.0 and HTTP/1.1 scrapers both work.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Metrics;

/// Handle on the running metrics listener.
pub struct MetricsServer {
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn start(addr: &str, metrics: Arc<Metrics>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("rapd-metrics-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Ok(stream) = conn {
                        // a broken scraper must not take the listener down
                        let _ = serve_one(stream, &metrics);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            handle: Some(handle),
            shutdown,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // unblock accept() with one throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

fn serve_one(stream: TcpStream, metrics: &Metrics) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // drain headers so well-behaved clients see a clean close
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut stream = reader.into_inner();
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics.render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        )
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Test helper: fetch a path from a local HTTP server, returning
/// `(status_line, body)`.
#[cfg(test)]
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(String, String)> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let metrics = Arc::new(Metrics::new(2));
        metrics.frames_ingested.fetch_add(9, Ordering::Relaxed);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "got {status}");
        assert!(body.contains("rapd_frames_ingested_total 9"));
        assert!(body.contains("rapd_queue_depth{shard=\"1\"} 0"));

        let (status, _) = get(addr, "/other").unwrap();
        assert!(status.contains("404"), "got {status}");

        // counters move between scrapes
        metrics.frames_ingested.fetch_add(1, Ordering::Relaxed);
        let (_, body) = get(addr, "/metrics").unwrap();
        assert!(body.contains("rapd_frames_ingested_total 10"));

        server.shutdown();
    }

    #[test]
    fn survives_garbage_requests() {
        let metrics = Arc::new(Metrics::new(1));
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = server.addr();
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"\x00\x01garbage\r\n\r\n").unwrap();
        }
        // the listener still answers after the garbage connection
        let (status, _) = get(addr, "/metrics").unwrap();
        assert!(status.contains("200"));
        server.shutdown();
    }
}
