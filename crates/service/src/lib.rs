//! # service — `rapd`, the long-running localization daemon
//!
//! The paper situates RAPMiner inside a CDN operations loop: every minute,
//! per-leaf KPI snapshots arrive for many KPIs/tenants, the overall series
//! is watched for anomalies, and localization runs the moment an alarm
//! fires. This crate turns [`pipeline::LocalizationPipeline`] into that
//! operational component — a multi-tenant, sharded, long-running service:
//!
//! * **NDJSON wire protocol** ([`proto`]): one JSON object per line over
//!   TCP — `schema`, `observe`, `flush`, `stats`, `incidents` — each
//!   answered with exactly one reply line. Malformed input yields
//!   `{"type":"error",...}` replies, never thread death.
//! * **Shard workers** ([`shard`]): tenants hash onto `N` worker threads;
//!   each worker owns the pipelines of its tenants, so per-tenant ordering
//!   is preserved while tenants spread across cores.
//! * **Backpressure**: bounded per-shard queues with an explicit
//!   *drop-oldest* policy and exact dropped-frame accounting; flush
//!   barriers are never dropped, so `flush` stays a reliable fence.
//! * **Admission control** ([`server`]): every `observe` frame is
//!   validated before it reaches a shard — non-finite values and
//!   unbounded schema drift quarantine the whole frame, while duplicate
//!   leaves (keep-last), negative values (clamp to zero), and bounded
//!   drift (strip the unknown rows) are repaired in place with per-reason
//!   counters. Quarantined frames land in a per-tenant CRC-framed spool
//!   and a bounded ring queryable via the `quarantine` control verb.
//! * **Watermark reordering** ([`shard`]): timestamped frames pass
//!   through a per-tenant bounded reorder buffer with a data-driven
//!   watermark, so bounded out-of-order delivery is healed while late
//!   frames and replays are quarantined instead of corrupting history.
//! * **Incident sink** ([`sink`]): every incident is spooled as a
//!   CRC-framed JSON line (crash-safe, append-only; torn tails are
//!   truncated on restart) and kept in a bounded in-memory ring queryable
//!   over the control socket. Spool I/O failure degrades the sink to
//!   ring-only mode rather than failing ingestion.
//! * **Fault tolerance** ([`shard`], [`sync`]): per-frame `catch_unwind`
//!   quarantines a panicking tenant pipeline (dropped and rebuilt), a
//!   supervisor respawns dead worker threads, a per-tenant circuit breaker
//!   sheds frames from persistently failing tenants, and poisoned locks
//!   are recovered instead of cascading the panic.
//! * **Metrics** ([`metrics`], [`http`]): atomic counters and a latency
//!   histogram rendered in the Prometheus text format on an embedded
//!   `GET /metrics` HTTP listener.
//!
//! # Example
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use service::{start, default_factory, ServiceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ServiceConfig {
//!     listen: "127.0.0.1:0".to_string(),        // port 0: pick a free port
//!     metrics_listen: "127.0.0.1:0".to_string(),
//!     ..ServiceConfig::default()
//! };
//! let server = service::start(config, default_factory())?;
//! let mut conn = TcpStream::connect(server.ingest_addr())?;
//! writeln!(
//!     conn,
//!     r#"{{"type":"schema","tenant":"edge","attributes":[["loc",["L1","L2"]]]}}"#
//! )?;
//! let mut reply = String::new();
//! BufReader::new(conn.try_clone()?).read_line(&mut reply)?;
//! assert!(reply.contains("\"ok\""));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod admission;
pub mod blackbox;
pub mod checkpoint;
pub mod config;
pub mod http;
pub mod json;
pub mod metrics;
pub mod proto;
pub(crate) mod quarantine;
pub mod server;
pub mod shard;
pub mod sink;
pub(crate) mod sync;
pub mod wal;

use std::sync::Arc;

use baselines::{Localizer, RapMinerLocalizer};
use rapminer::Config as RapMinerConfig;

pub use blackbox::{read_dump, BlackboxDump, BlackboxRing, BlackboxWriter};
pub use checkpoint::{ConfigGuard, EngineCheckpoint, TenantCheckpoint};
pub use config::{ServiceConfig, ServiceConfigError};
pub use metrics::Metrics;
pub use proto::{ProtoError, Request};
pub use quarantine::QuarantineRecord;
pub use server::{start, ServerHandle, StartError};
pub use shard::LocalizerFactory;
pub use sink::{DetectionRecord, IncidentRecord, IncidentSink, SpoolRecovery};
pub use wal::WalEntry;

/// The default per-tenant localizer: RAPMiner with its paper defaults,
/// running each frame's search on the configured number of intra-frame
/// threads (`--intra-frame-threads`; `1` = serial, `0` = machine width).
pub fn default_factory() -> LocalizerFactory {
    Arc::new(|threads| {
        Box::new(RapMinerLocalizer::with_config(
            RapMinerConfig::new().with_threads(threads),
        )) as Box<dyn Localizer>
    })
}
