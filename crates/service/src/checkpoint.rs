//! Versioned, CRC-framed tenant checkpoints under `<spool_dir>/checkpoints/`.
//!
//! A checkpoint is the full durable state of one tenant: its detector (or
//! classic pipeline) snapshot, residual-window moments, trigger/hold state
//! machine, reorder-buffer watermark, circuit-breaker state, and the frame
//! sequence watermark the write-ahead log may compact up to. Checkpoints
//! are written periodically (`--checkpoint-interval`) and on graceful
//! shutdown; at boot the latest valid snapshot is restored and the WAL
//! suffix past `wal_ack` is replayed on top, so a `kill -9` costs neither
//! admitted frames nor detector warm-up.
//!
//! # On-disk format
//!
//! One file per tenant, `<stem>.json`, holding a single line in the spool
//! framing (`{json}\t{crc32:08x}`) with a leading `"v":1` version tag.
//! Floats round-trip exactly: the JSON writer emits the shortest
//! representation that parses back to the identical `f64`, so a restored
//! detector continues **bit-identically** to an uninterrupted run.
//!
//! # Atomicity and fallback
//!
//! Writes go through a temp file, `fsync`, then two renames: the current
//! snapshot becomes `<stem>.json.prev`, the temp file becomes current. A
//! crash at any point leaves a valid current or previous snapshot. Loads
//! fall back in order — current, then `.prev`, then cold start — counting
//! rejects in `rapd_checkpoint_corrupt_total`. A corrupt checkpoint never
//! refuses boot; it costs a re-warm, not the daemon.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use mdkpi::ElementId;
use pipeline::{
    ClassicSnapshot, DetectorSnapshot, DetectorState, ForecasterSnapshot, LeafSnapshot,
    ResidualSnapshot,
};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::quarantine::sanitize_tenant;
use crate::sink::{frame_spool_line, judge_line, LineVerdict};

/// The checkpoint format version this build writes and accepts.
const VERSION: u64 = 1;

/// The engine half of a checkpoint: whichever pipeline flavor the tenant
/// runs.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineCheckpoint {
    /// Streaming-detector mode ([`pipeline::DetectingPipeline`]).
    Detecting(DetectorSnapshot),
    /// Classic pre-labelled mode ([`pipeline::LocalizationPipeline`]).
    Classic(ClassicSnapshot),
}

/// The config fingerprint stamped into a checkpoint. Restore refuses a
/// snapshot taken under different knobs — resuming a detector into a
/// reconfigured daemon would silently corrupt its statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigGuard {
    /// Whether the daemon ran in detect mode.
    pub detect: bool,
    /// Detector seasonal period (0 = EWMA).
    pub seasonal_period: usize,
    /// Detector residual window capacity.
    pub residual_window: usize,
    /// Classic-mode forecast window.
    pub window: usize,
}

/// Everything needed to resume one tenant exactly where it left off.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCheckpoint {
    /// The tenant this snapshot belongs to.
    pub tenant: String,
    /// Wall-clock write time (unix milliseconds) — the `debug` verb's
    /// `last_checkpoint_ts` and the staleness gauge.
    pub ts_unix_ms: u64,
    /// Highest frame sequence this snapshot covers; the WAL compacts up
    /// to it, replay starts past it.
    pub wal_ack: u64,
    /// Highest frame sequence ever seen for this tenant — the mint
    /// sequence must advance past it so new tokens never collide.
    pub frame_seq: u64,
    /// Reorder-buffer watermark: last emitted event timestamp.
    pub reorder_last_emitted: Option<u64>,
    /// Reorder-buffer watermark: newest event timestamp seen.
    pub reorder_max_seen: u64,
    /// Consecutive breaker failures at snapshot time.
    pub breaker_failures: u32,
    /// Breaker state: `"closed"`, `"open"`, or `"half_open"`.
    pub breaker_state: String,
    /// Remaining open-state cooldown at snapshot time, in milliseconds
    /// (monotonic instants cannot cross processes).
    pub breaker_remaining_ms: u64,
    /// The config fingerprint the snapshot was taken under.
    pub guard: ConfigGuard,
    /// The pipeline state itself.
    pub engine: EngineCheckpoint,
}

impl TenantCheckpoint {
    /// The JSON form written to disk (inside the CRC framing).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".to_string(), Json::Num(VERSION as f64)),
            ("tenant".to_string(), Json::str(&self.tenant)),
            ("ts_unix_ms".to_string(), Json::Num(self.ts_unix_ms as f64)),
            ("wal_ack".to_string(), Json::Num(self.wal_ack as f64)),
            ("frame_seq".to_string(), Json::Num(self.frame_seq as f64)),
            (
                "reorder_last_emitted".to_string(),
                match self.reorder_last_emitted {
                    None => Json::Null,
                    Some(ts) => Json::Num(ts as f64),
                },
            ),
            (
                "reorder_max_seen".to_string(),
                Json::Num(self.reorder_max_seen as f64),
            ),
            (
                "breaker".to_string(),
                Json::Obj(vec![
                    (
                        "failures".to_string(),
                        Json::Num(f64::from(self.breaker_failures)),
                    ),
                    ("state".to_string(), Json::str(&self.breaker_state)),
                    (
                        "remaining_ms".to_string(),
                        Json::Num(self.breaker_remaining_ms as f64),
                    ),
                ]),
            ),
            (
                "guard".to_string(),
                Json::Obj(vec![
                    ("detect".to_string(), Json::Bool(self.guard.detect)),
                    (
                        "seasonal_period".to_string(),
                        Json::Num(self.guard.seasonal_period as f64),
                    ),
                    (
                        "residual_window".to_string(),
                        Json::Num(self.guard.residual_window as f64),
                    ),
                    ("window".to_string(), Json::Num(self.guard.window as f64)),
                ]),
            ),
            ("engine".to_string(), engine_to_json(&self.engine)),
        ])
    }

    /// Parse a checkpoint document; `None` on any shape or version
    /// mismatch (the caller falls back to `.prev`, then cold start).
    pub fn from_json(doc: &Json) -> Option<TenantCheckpoint> {
        if doc.get("v")?.as_u64()? != VERSION {
            return None;
        }
        let breaker = doc.get("breaker")?;
        let guard = doc.get("guard")?;
        Some(TenantCheckpoint {
            tenant: doc.get("tenant")?.as_str()?.to_string(),
            ts_unix_ms: doc.get("ts_unix_ms")?.as_u64()?,
            wal_ack: doc.get("wal_ack")?.as_u64()?,
            frame_seq: doc.get("frame_seq")?.as_u64()?,
            reorder_last_emitted: doc.get("reorder_last_emitted").and_then(Json::as_u64),
            reorder_max_seen: doc.get("reorder_max_seen")?.as_u64()?,
            breaker_failures: u32::try_from(breaker.get("failures")?.as_u64()?).ok()?,
            breaker_state: breaker.get("state")?.as_str()?.to_string(),
            breaker_remaining_ms: breaker.get("remaining_ms")?.as_u64()?,
            guard: ConfigGuard {
                detect: guard.get("detect")?.as_bool()?,
                seasonal_period: guard.get("seasonal_period")?.as_u64()? as usize,
                residual_window: guard.get("residual_window")?.as_u64()? as usize,
                window: guard.get("window")?.as_u64()? as usize,
            },
            engine: engine_from_json(doc.get("engine")?)?,
        })
    }
}

fn num_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|v| Json::Num(*v)).collect())
}

fn parse_num_arr(doc: &Json) -> Option<Vec<f64>> {
    doc.as_arr()?.iter().map(Json::as_f64).collect()
}

fn elements_to_json(key: &[ElementId]) -> Json {
    Json::Arr(key.iter().map(|id| Json::Num(f64::from(id.0))).collect())
}

fn parse_elements(doc: &Json) -> Option<Vec<ElementId>> {
    doc.as_arr()?
        .iter()
        .map(|id| Some(ElementId(u32::try_from(id.as_u64()?).ok()?)))
        .collect()
}

fn leaf_to_json(leaf: &LeafSnapshot) -> Json {
    let forecaster = match &leaf.forecaster {
        ForecasterSnapshot::Ewma { level } => Json::Obj(vec![
            ("kind".to_string(), Json::str("ewma")),
            ("level".to_string(), level.map_or(Json::Null, Json::Num)),
        ]),
        ForecasterSnapshot::HoltWinters {
            level,
            trend,
            seasonal,
            idx,
        } => Json::Obj(vec![
            ("kind".to_string(), Json::str("hw")),
            ("level".to_string(), level.map_or(Json::Null, Json::Num)),
            ("trend".to_string(), Json::Num(*trend)),
            ("seasonal".to_string(), num_arr(seasonal)),
            ("idx".to_string(), Json::Num(*idx as f64)),
        ]),
    };
    Json::Obj(vec![
        ("forecaster".to_string(), forecaster),
        (
            "residuals".to_string(),
            Json::Obj(vec![
                ("buf".to_string(), num_arr(&leaf.residuals.buf)),
                ("sum".to_string(), Json::Num(leaf.residuals.sum)),
                ("sumsq".to_string(), Json::Num(leaf.residuals.sumsq)),
                (
                    "pushes".to_string(),
                    Json::Num(leaf.residuals.pushes_since_rebuild as f64),
                ),
            ]),
        ),
    ])
}

fn leaf_from_json(doc: &Json) -> Option<LeafSnapshot> {
    let f = doc.get("forecaster")?;
    let forecaster = match f.get("kind")?.as_str()? {
        "ewma" => ForecasterSnapshot::Ewma {
            level: f.get("level").and_then(Json::as_f64),
        },
        "hw" => ForecasterSnapshot::HoltWinters {
            level: f.get("level").and_then(Json::as_f64),
            trend: f.get("trend")?.as_f64()?,
            seasonal: parse_num_arr(f.get("seasonal")?)?,
            idx: f.get("idx")?.as_u64()? as usize,
        },
        _ => return None,
    };
    let r = doc.get("residuals")?;
    Some(LeafSnapshot {
        forecaster,
        residuals: ResidualSnapshot {
            buf: parse_num_arr(r.get("buf")?)?,
            sum: r.get("sum")?.as_f64()?,
            sumsq: r.get("sumsq")?.as_f64()?,
            pushes_since_rebuild: r.get("pushes")?.as_u64()? as usize,
        },
    })
}

fn engine_to_json(engine: &EngineCheckpoint) -> Json {
    match engine {
        EngineCheckpoint::Detecting(snap) => Json::Obj(vec![
            ("kind".to_string(), Json::str("detecting")),
            ("steps".to_string(), Json::Num(snap.steps as f64)),
            ("state".to_string(), Json::str(snap.state.as_str())),
            (
                "triggered_frames".to_string(),
                Json::Num(snap.triggered_frames as f64),
            ),
            ("total".to_string(), leaf_to_json(&snap.total)),
            (
                "leaves".to_string(),
                Json::Arr(
                    snap.leaves
                        .iter()
                        .map(|(key, leaf)| {
                            Json::Arr(vec![elements_to_json(key), leaf_to_json(leaf)])
                        })
                        .collect(),
                ),
            ),
        ]),
        EngineCheckpoint::Classic(snap) => Json::Obj(vec![
            ("kind".to_string(), Json::str("classic")),
            ("steps".to_string(), Json::Num(snap.steps as f64)),
            ("total_history".to_string(), num_arr(&snap.total_history)),
            (
                "history".to_string(),
                Json::Arr(
                    snap.history
                        .iter()
                        .map(|(key, values)| {
                            Json::Arr(vec![elements_to_json(key), num_arr(values)])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn engine_from_json(doc: &Json) -> Option<EngineCheckpoint> {
    match doc.get("kind")?.as_str()? {
        "detecting" => Some(EngineCheckpoint::Detecting(DetectorSnapshot {
            steps: doc.get("steps")?.as_u64()? as usize,
            state: DetectorState::parse(doc.get("state")?.as_str()?)?,
            triggered_frames: doc.get("triggered_frames")?.as_u64()? as usize,
            total: leaf_from_json(doc.get("total")?)?,
            leaves: doc
                .get("leaves")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    Some((
                        parse_elements(pair.first()?)?,
                        leaf_from_json(pair.get(1)?)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
        })),
        "classic" => Some(EngineCheckpoint::Classic(ClassicSnapshot {
            steps: doc.get("steps")?.as_u64()? as usize,
            total_history: parse_num_arr(doc.get("total_history")?)?,
            history: doc
                .get("history")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    Some((parse_elements(pair.first()?)?, parse_num_arr(pair.get(1)?)?))
                })
                .collect::<Option<Vec<_>>>()?,
        })),
        _ => None,
    }
}

/// The per-tenant snapshot store under `<spool_dir>/checkpoints/`.
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    dir: PathBuf,
    metrics: Arc<Metrics>,
}

impl CheckpointStore {
    /// Open (creating) the `<spool_dir>/checkpoints/` directory.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(spool_dir: &Path, metrics: Arc<Metrics>) -> io::Result<Self> {
        let dir = spool_dir.join("checkpoints");
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, metrics })
    }

    fn path_for(&self, tenant: &str) -> PathBuf {
        self.dir.join(format!("{}.json", sanitize_tenant(tenant)))
    }

    /// Atomically persist one tenant's snapshot: temp file + `fsync`,
    /// demote the current snapshot to `.prev`, rename the temp file into
    /// place. Infallible from the caller's perspective — a failure keeps
    /// the previous snapshot and counts `rapd_checkpoint_errors_total`.
    pub fn write(&self, checkpoint: &TenantCheckpoint) {
        let path = self.path_for(&checkpoint.tenant);
        let line = frame_spool_line(&checkpoint.to_json().render());
        let result = (|| -> io::Result<()> {
            let tmp = path.with_extension("json.tmp");
            {
                let mut f = File::create(&tmp)?;
                writeln!(f, "{line}")?;
                f.sync_all()?;
            }
            if path.exists() {
                fs::rename(&path, path.with_extension("json.prev"))?;
            }
            fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                self.metrics
                    .checkpoint_writes
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .checkpoint_last_unix_ms
                    .fetch_max(checkpoint.ts_unix_ms, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics
                    .checkpoint_errors
                    .fetch_add(1, Ordering::Relaxed);
                obs::warn(
                    "rapd.checkpoint",
                    "checkpoint_write_failed",
                    &[
                        ("tenant", obs::Value::Str(checkpoint.tenant.clone())),
                        ("error", obs::Value::Str(e.to_string())),
                    ],
                );
            }
        }
    }

    fn load_file(&self, path: &Path) -> Option<TenantCheckpoint> {
        let data = fs::read_to_string(path).ok()?;
        let line = data.lines().next()?;
        if judge_line(line) != LineVerdict::Verified {
            return None;
        }
        let (json, _) = line.rsplit_once('\t')?;
        TenantCheckpoint::from_json(&crate::json::parse(json).ok()?)
    }

    /// Load the latest valid snapshot for `tenant`: the current file
    /// first, then `.prev` (counting the corrupt current), then `None`
    /// (cold start). Never an error — a checkpoint must never refuse
    /// boot.
    pub fn load(&self, tenant: &str) -> Option<TenantCheckpoint> {
        let path = self.path_for(tenant);
        if let Some(checkpoint) = self.load_file(&path) {
            return Some(checkpoint);
        }
        if path.exists() {
            self.metrics
                .checkpoint_corrupt
                .fetch_add(1, Ordering::Relaxed);
            obs::warn(
                "rapd.checkpoint",
                "checkpoint_corrupt",
                &[("path", obs::Value::Str(path.display().to_string()))],
            );
        }
        let prev = path.with_extension("json.prev");
        let fallback = self.load_file(&prev);
        if fallback.is_none() && prev.exists() {
            self.metrics
                .checkpoint_corrupt
                .fetch_add(1, Ordering::Relaxed);
        }
        fallback
    }

    /// Load every tenant's latest valid snapshot — the boot-time recovery
    /// set that seeds WAL acknowledgments and the frame-sequence
    /// watermark.
    pub fn load_all(&self) -> Vec<TenantCheckpoint> {
        let mut checkpoints = Vec::new();
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return checkpoints;
        };
        let mut stems: Vec<String> = listing
            .flatten()
            .filter_map(|d| {
                let name = d.file_name().to_str()?.to_string();
                // A crash between write()'s demote and final rename can
                // leave a tenant with only a `.json.prev` generation;
                // load() would find it, so boot must list it too.
                name.strip_suffix(".json")
                    .or_else(|| name.strip_suffix(".json.prev"))
                    .map(str::to_string)
            })
            .collect();
        stems.sort();
        stems.dedup();
        for stem in stems {
            // `load` by stem: stems are already sanitized, and sanitizing
            // is idempotent, so the round trip is exact.
            if let Some(checkpoint) = self.load(&stem) {
                checkpoints.push(checkpoint);
            }
        }
        checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new(1))
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rapd-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn leaf(seed: f64) -> LeafSnapshot {
        LeafSnapshot {
            forecaster: ForecasterSnapshot::HoltWinters {
                level: Some(seed * 1.1),
                trend: -0.034_217,
                // a deliberately awkward float: many significant digits
                seasonal: vec![0.1 + seed, 0.2, std::f64::consts::PI / 7.0],
                idx: 2,
            },
            residuals: ResidualSnapshot {
                buf: vec![seed, -seed / 3.0, 0.000_123_456_789],
                sum: seed * 0.666_666_666_7,
                sumsq: seed * seed + 1e-13,
                pushes_since_rebuild: 17,
            },
        }
    }

    fn detecting_checkpoint(tenant: &str) -> TenantCheckpoint {
        TenantCheckpoint {
            tenant: tenant.to_string(),
            ts_unix_ms: 1_754_700_000_123,
            wal_ack: 420,
            frame_seq: 431,
            reorder_last_emitted: Some(60_000),
            reorder_max_seen: 62_000,
            breaker_failures: 2,
            breaker_state: "open".to_string(),
            breaker_remaining_ms: 4_321,
            guard: ConfigGuard {
                detect: true,
                seasonal_period: 3,
                residual_window: 240,
                window: 10,
            },
            engine: EngineCheckpoint::Detecting(DetectorSnapshot {
                steps: 99,
                state: DetectorState::Triggered,
                triggered_frames: 4,
                total: leaf(2.5),
                leaves: vec![
                    (vec![ElementId(0), ElementId(2)], leaf(1.0)),
                    (vec![ElementId(1), ElementId(3)], leaf(-0.5)),
                ],
            }),
        }
    }

    fn classic_checkpoint(tenant: &str) -> TenantCheckpoint {
        TenantCheckpoint {
            tenant: tenant.to_string(),
            ts_unix_ms: 1_754_700_001_000,
            wal_ack: 7,
            frame_seq: 7,
            reorder_last_emitted: None,
            reorder_max_seen: 0,
            breaker_failures: 0,
            breaker_state: "closed".to_string(),
            breaker_remaining_ms: 0,
            guard: ConfigGuard {
                detect: false,
                seasonal_period: 0,
                residual_window: 0,
                window: 10,
            },
            engine: EngineCheckpoint::Classic(ClassicSnapshot {
                steps: 12,
                total_history: vec![400.0, 400.25, 399.875],
                history: vec![(
                    vec![ElementId(0), ElementId(2)],
                    vec![100.0, 100.062_5, 99.937_5],
                )],
            }),
        }
    }

    #[test]
    fn checkpoints_round_trip_bit_identically() {
        for checkpoint in [detecting_checkpoint("edge"), classic_checkpoint("core")] {
            let doc = crate::json::parse(&checkpoint.to_json().render()).unwrap();
            let back = TenantCheckpoint::from_json(&doc).unwrap();
            // PartialEq on f64 is bit-comparison for finite values, and
            // every field in a snapshot is finite by construction.
            assert_eq!(back, checkpoint);
        }
    }

    #[test]
    fn version_and_shape_mismatches_parse_to_none() {
        let mut doc = detecting_checkpoint("t").to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(99.0); // future version
        }
        assert!(TenantCheckpoint::from_json(&doc).is_none());
        let junk = crate::json::parse(r#"{"v":1,"tenant":"t"}"#).unwrap();
        assert!(TenantCheckpoint::from_json(&junk).is_none());
    }

    #[test]
    fn write_then_load_restores_the_same_state_across_reopen() {
        let dir = scratch("roundtrip");
        let m = metrics();
        let checkpoint = detecting_checkpoint("edge");
        {
            let store = CheckpointStore::open(&dir, Arc::clone(&m)).unwrap();
            store.write(&checkpoint);
            assert_eq!(m.checkpoint_writes.load(Ordering::Relaxed), 1);
            assert_eq!(
                m.checkpoint_last_unix_ms.load(Ordering::Relaxed),
                checkpoint.ts_unix_ms
            );
        }
        let store = CheckpointStore::open(&dir, metrics()).unwrap();
        assert_eq!(store.load("edge"), Some(checkpoint.clone()));
        let all = store.load_all();
        assert_eq!(all, vec![checkpoint]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_current_falls_back_to_prev_then_cold_start() {
        let dir = scratch("fallback");
        let m = metrics();
        let store = CheckpointStore::open(&dir, Arc::clone(&m)).unwrap();
        let v1 = classic_checkpoint("t");
        let mut v2 = v1.clone();
        v2.wal_ack = 9;
        store.write(&v1);
        store.write(&v2); // v1 is now .prev
        let path = dir.join("checkpoints/t.json");
        // flip a byte: the CRC no longer matches
        let tampered =
            fs::read_to_string(&path)
                .unwrap()
                .replacen("\"wal_ack\":9", "\"wal_ack\":8", 1);
        fs::write(&path, tampered).unwrap();
        let loaded = store.load("t").expect("prev snapshot must survive");
        assert_eq!(loaded.wal_ack, v1.wal_ack, "fallback is the demoted v1");
        assert_eq!(m.checkpoint_corrupt.load(Ordering::Relaxed), 1);
        // both generations corrupt → cold start, never an error
        fs::write(dir.join("checkpoints/t.json.prev"), "garbage\n").unwrap();
        assert!(store.load("t").is_none());
        assert!(store.load("never-seen").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_with_only_a_prev_generation_is_listed_at_boot() {
        // Simulate a crash between write()'s two renames: the current
        // snapshot was demoted to .prev but the temp file never replaced
        // it. load_all must still surface the tenant, or boot recovery
        // would skip its wal_ack/frame_seq seeding entirely.
        let dir = scratch("prevonly");
        let store = CheckpointStore::open(&dir, metrics()).unwrap();
        let checkpoint = classic_checkpoint("t");
        store.write(&checkpoint);
        fs::rename(
            dir.join("checkpoints/t.json"),
            dir.join("checkpoints/t.json.prev"),
        )
        .unwrap();
        assert_eq!(store.load_all(), vec![checkpoint.clone()]);
        // both generations present lists the tenant exactly once
        store.write(&checkpoint);
        assert_eq!(store.load_all().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_failure_counts_and_keeps_the_old_snapshot() {
        let dir = scratch("writefail");
        let m = metrics();
        let store = CheckpointStore::open(&dir, Arc::clone(&m)).unwrap();
        let checkpoint = classic_checkpoint("t");
        store.write(&checkpoint);
        // occupy the temp path with a directory so the next write fails
        fs::create_dir_all(dir.join("checkpoints/t.json.tmp")).unwrap();
        let mut newer = checkpoint.clone();
        newer.wal_ack = 99;
        store.write(&newer);
        assert_eq!(m.checkpoint_errors.load(Ordering::Relaxed), 1);
        assert_eq!(
            store.load("t"),
            Some(checkpoint),
            "a failed write must not clobber the good snapshot"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_tenant_names_cannot_escape_the_store() {
        let dir = scratch("hostile");
        let store = CheckpointStore::open(&dir, metrics()).unwrap();
        let mut checkpoint = classic_checkpoint("../escape");
        checkpoint.tenant = "../escape".to_string();
        store.write(&checkpoint);
        assert!(dir.join("checkpoints/___escape-ed1965a3.json").is_file());
        assert!(!dir.parent().unwrap().join("escape.json").exists());
        assert_eq!(store.load("../escape"), Some(checkpoint));
        fs::remove_dir_all(&dir).unwrap();
    }
}
