use baselines::ScoredCombination;
use detect::Severity;
use rapminer::LocalizationTrace;

/// Wall-clock seconds spent in each stage of one triggered localization.
///
/// `cp`/`search` come from the localizer's own trace and are zero when the
/// method attaches none; `detect` covers per-leaf forecasting and
/// labelling; `detector` is the streaming detector's per-frame update in
/// detect-then-localize mode (zero in classic mode); `localize` is the
/// whole localizer call (so `localize ≥ cp + search` for RAPMiner).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Per-leaf forecast + anomaly labelling.
    pub detect_seconds: f64,
    /// Streaming-detector update on the triggering frame
    /// (detect-then-localize mode only).
    pub detector_seconds: f64,
    /// Algorithm 1 (CP computation and redundant attribute deletion).
    pub cp_seconds: f64,
    /// Algorithm 2 (top-down lattice search).
    pub search_seconds: f64,
    /// The full localizer call.
    pub localize_seconds: f64,
}

/// The outcome of one triggered localization: what the on-call operator
/// sees when the alarm fires.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Index of the observation (0-based time step) that raised the alarm.
    pub step: usize,
    /// Relative deviation of the overall KPI that tripped the alarm
    /// (Eq. 4 over the totals).
    pub total_deviation: f64,
    /// Leaves flagged anomalous by per-leaf detection.
    pub anomalous_leaves: usize,
    /// Total leaves in the triggering snapshot.
    pub total_leaves: usize,
    /// The ranked root anomaly patterns (best first).
    pub raps: Vec<ScoredCombination>,
    /// Per-stage wall-clock timings of this localization.
    pub timings: StageTimings,
    /// The localizer's evidence trail (CP values, deletions, per-layer
    /// counts, candidate confidences), when the method produces one.
    pub trace: Option<LocalizationTrace>,
    /// Whether the localization deadline expired during this incident. A
    /// `true` here means `raps` is the best partial answer from the layers
    /// the search completed before the budget ran out (possibly empty).
    pub deadline_exceeded: bool,
    /// Whether any forecast feeding this incident (the total KPI or a
    /// per-leaf value) came from the degradation fallback because the
    /// primary forecaster produced a non-finite value. Treat the scores
    /// with extra suspicion: the detector was running on repaired inputs.
    pub degraded_forecast: bool,
    /// σ-tier of the detection, when the incident was self-triggered by
    /// the streaming detector (`None` for externally alarmed incidents).
    pub severity: Option<Severity>,
    /// Streaming-detection evidence: aggregate score and per-leaf
    /// σ-scores. `None` for externally alarmed incidents.
    pub detection: Option<DetectionSummary>,
    /// Correlation token of the ingested frame that triggered this
    /// incident (rapd stamps it; `None` for library-driven runs). The same
    /// token appears on the frame's spans, events, quarantine records, and
    /// blackbox dumps, so one grep reconstructs the frame's whole life.
    pub frame_id: Option<String>,
}

/// The detection evidence behind a self-triggered incident.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionSummary {
    /// Aggregate frame anomaly score in residual σ units.
    pub score: f64,
    /// σ-tier of `score`.
    pub severity: Severity,
    /// The highest-scoring leaves `(combination, σ-score)`, best first.
    pub leaf_scores: Vec<(String, f64)>,
}

impl IncidentReport {
    /// One-line operator summary.
    pub fn summary(&self) -> String {
        let top = self
            .raps
            .first()
            .map(|r| r.combination.to_string())
            .unwrap_or_else(|| "<no pattern>".to_string());
        let severity = self.severity.map(|s| format!(" [{s}]")).unwrap_or_default();
        format!(
            "step {}{}: total deviation {:+.1}%, {}/{} leaves anomalous, top RAP {}{}{}",
            self.step,
            severity,
            100.0 * self.total_deviation,
            self.anomalous_leaves,
            self.total_leaves,
            top,
            if self.deadline_exceeded {
                " (deadline exceeded)"
            } else {
                ""
            },
            if self.degraded_forecast {
                " (degraded forecast)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{Combination, Schema};

    #[test]
    fn summary_is_informative() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let report = IncidentReport {
            step: 42,
            total_deviation: 0.35,
            anomalous_leaves: 3,
            total_leaves: 10,
            raps: vec![ScoredCombination {
                combination: Combination::parse(&schema, "a=a1").unwrap(),
                score: 0.9,
            }],
            timings: StageTimings::default(),
            trace: None,
            deadline_exceeded: false,
            degraded_forecast: false,
            severity: Some(Severity::High),
            detection: None,
            frame_id: None,
        };
        let s = report.summary();
        assert!(s.contains("step 42"));
        assert!(s.contains("[high]"));
        assert!(s.contains("+35.0%"));
        assert!(s.contains("3/10"));
        assert!(s.contains("(a1)"));
        assert!(!s.contains("deadline"));
        assert!(!s.contains("degraded"));
    }

    #[test]
    fn empty_rap_list_is_handled() {
        let report = IncidentReport {
            step: 1,
            total_deviation: -0.2,
            anomalous_leaves: 0,
            total_leaves: 5,
            raps: Vec::new(),
            timings: StageTimings::default(),
            trace: None,
            deadline_exceeded: true,
            degraded_forecast: true,
            severity: None,
            detection: None,
            frame_id: None,
        };
        let s = report.summary();
        assert!(s.contains("<no pattern>"));
        assert!(!s.contains('['));
        assert!(s.contains("(deadline exceeded)"));
        assert!(s.contains("(degraded forecast)"));
    }
}
