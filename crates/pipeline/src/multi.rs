use baselines::{Localizer, ScoredCombination};
use mdkpi::{Combination, LeafFrame};

use crate::stream::PipelineError;

/// One merged root anomaly pattern across several KPIs.
#[derive(Debug, Clone)]
pub struct MergedRap {
    /// The pattern.
    pub combination: Combination,
    /// Names of the KPIs in which the pattern surfaced.
    pub kpis: Vec<String>,
    /// The best per-KPI score (scores are comparable within one method).
    pub score: f64,
}

/// The outcome of localizing one incident across several KPIs.
#[derive(Debug, Clone)]
pub struct MultiKpiReport {
    /// Per-KPI results, in input order.
    pub per_kpi: Vec<(String, Vec<ScoredCombination>)>,
    /// Union of all patterns, ranked by (#KPIs desc, best score desc) — a
    /// pattern anomalous in *several* KPIs is stronger evidence of a real
    /// scope than a single-KPI blip.
    pub merged: Vec<MergedRap>,
}

/// Localize the same incident over several KPIs' leaf tables and merge the
/// answers (the paper's §II-A operators monitor "traffic volume, cache hit
/// ratio and server response delay, etc." simultaneously).
///
/// All frames must be labelled; each is localized independently with the
/// same method, then patterns are merged by exact combination equality.
///
/// # Errors
///
/// Propagates the first localization failure.
///
/// # Example
///
/// ```
/// use baselines::RapMinerLocalizer;
/// use mdkpi::{LeafFrame, Schema};
/// use pipeline::localize_multi_kpi;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder().attribute("loc", ["L1", "L2"]).build()?;
/// let frame = |anomalous: u32| {
///     let mut b = LeafFrame::builder(&schema);
///     for e in 0..2u32 {
///         b.push_labelled(&[mdkpi::ElementId(e)], 1.0, 1.0, e == anomalous);
///     }
///     b.build()
/// };
/// // L1 is anomalous in both traffic and delay
/// let report = localize_multi_kpi(
///     &RapMinerLocalizer::default(),
///     &[("traffic", &frame(0)), ("delay", &frame(0))],
///     3,
/// )?;
/// assert_eq!(report.merged[0].combination.to_string(), "(L1)");
/// assert_eq!(report.merged[0].kpis, vec!["traffic", "delay"]);
/// # Ok(())
/// # }
/// ```
pub fn localize_multi_kpi<L: Localizer + ?Sized>(
    localizer: &L,
    frames: &[(&str, &LeafFrame)],
    k: usize,
) -> Result<MultiKpiReport, PipelineError> {
    let mut per_kpi: Vec<(String, Vec<ScoredCombination>)> = Vec::with_capacity(frames.len());
    for (name, frame) in frames {
        let results = localizer.localize(frame, k)?;
        per_kpi.push((name.to_string(), results));
    }

    let mut merged: Vec<MergedRap> = Vec::new();
    for (kpi, results) in &per_kpi {
        for sc in results {
            match merged.iter_mut().find(|m| m.combination == sc.combination) {
                Some(m) => {
                    if !m.kpis.contains(kpi) {
                        m.kpis.push(kpi.clone());
                    }
                    if sc.score > m.score {
                        m.score = sc.score;
                    }
                }
                None => merged.push(MergedRap {
                    combination: sc.combination.clone(),
                    kpis: vec![kpi.clone()],
                    score: sc.score,
                }),
            }
        }
    }
    merged.sort_by(|a, b| {
        b.kpis
            .len()
            .cmp(&a.kpis.len())
            .then_with(|| b.score.partial_cmp(&a.score).expect("finite scores"))
            .then_with(|| a.combination.cmp(&b.combination))
    });
    merged.truncate(k);
    Ok(MultiKpiReport { per_kpi, merged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::RapMinerLocalizer;
    use mdkpi::{ElementId, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap()
    }

    fn frame_with_anomalous(schema: &Schema, spec: &str) -> LeafFrame {
        let rap = schema.parse_combination(spec).unwrap();
        let mut b = LeafFrame::builder(schema);
        for x in 0..3u32 {
            for y in 0..2u32 {
                let elements = [ElementId(x), ElementId(y)];
                b.push_labelled(&elements, 1.0, 1.0, rap.matches_leaf(&elements));
            }
        }
        b.build()
    }

    #[test]
    fn cross_kpi_pattern_ranks_first() {
        let s = schema();
        let traffic = frame_with_anomalous(&s, "a=a1");
        let delay = frame_with_anomalous(&s, "a=a1");
        let hits = frame_with_anomalous(&s, "a=a3");
        let report = localize_multi_kpi(
            &RapMinerLocalizer::default(),
            &[
                ("traffic", &traffic),
                ("delay", &delay),
                ("hit_ratio", &hits),
            ],
            5,
        )
        .unwrap();
        assert_eq!(report.per_kpi.len(), 3);
        assert_eq!(report.merged[0].combination.to_string(), "(a1, *)");
        assert_eq!(report.merged[0].kpis.len(), 2);
        // the single-KPI pattern is present but ranked below
        assert!(report
            .merged
            .iter()
            .any(|m| m.combination.to_string() == "(a3, *)" && m.kpis == ["hit_ratio"]));
    }

    #[test]
    fn k_truncates_merged_output() {
        let s = schema();
        let t = frame_with_anomalous(&s, "a=a1");
        let d = frame_with_anomalous(&s, "a=a2");
        let report =
            localize_multi_kpi(&RapMinerLocalizer::default(), &[("t", &t), ("d", &d)], 1).unwrap();
        assert_eq!(report.merged.len(), 1);
    }

    #[test]
    fn unlabelled_kpi_frame_fails_loudly() {
        let s = schema();
        let labelled = frame_with_anomalous(&s, "a=a1");
        let mut b = LeafFrame::builder(&s);
        b.push(&[ElementId(0), ElementId(0)], 1.0, 1.0);
        let unlabelled = b.build();
        let err = localize_multi_kpi(
            &RapMinerLocalizer::default(),
            &[("ok", &labelled), ("broken", &unlabelled)],
            3,
        )
        .unwrap_err();
        assert!(err.to_string().contains("localization failed"));
    }

    #[test]
    fn empty_input_gives_empty_report() {
        let report = localize_multi_kpi(&RapMinerLocalizer::default(), &[], 3).unwrap();
        assert!(report.per_kpi.is_empty());
        assert!(report.merged.is_empty());
    }
}
