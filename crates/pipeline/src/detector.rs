//! Detect-then-localize: the streaming detector in front of the
//! localizer, so the daemon consumes *raw* KPI frames — no pre-labelled
//! anomaly flags, no external alarm — and triggers its own localizations.
//!
//! [`DetectingPipeline`] replaces [`crate::LocalizationPipeline`]'s
//! history-replay forecasting with [`detect::FrameDetector`]'s `O(1)`
//! incremental per-leaf state. On every frame the detector scores the
//! overall KPI against its residual distribution; on the rising edge of a
//! σ-threshold crossing it labels the frame with the per-leaf σ-scores and
//! runs the localizer, attaching severity and detection evidence to the
//! [`IncidentReport`] and to the [`rapminer::LocalizationTrace`].

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

use baselines::Localizer;
use detect::{DetectorConfig, DetectorSnapshot, FrameDetection, FrameDetector};
use mdkpi::{LeafFrame, Schema};
use rapminer::TraceDetection;

use crate::incident::{DetectionSummary, IncidentReport, StageTimings};
use crate::stream::{ConfigError, PipelineConfig, PipelineError};

/// The detect-then-localize pipeline of one tenant: streaming detector
/// plus localizer.
///
/// Unlike [`crate::LocalizationPipeline`], the per-frame cost is `O(rows)`
/// with `O(1)` work per row — no history replay, no forecaster refit — so
/// a steady stream costs the same on day one and day one thousand.
///
/// The pipeline is restart-safe by construction: a freshly built instance
/// (e.g. after a shard worker respawn) silently re-warms from the live
/// stream — no detections until the detector's `min_samples` warmup
/// refills, and never a panic on cold state.
pub struct DetectingPipeline<L> {
    config: PipelineConfig,
    detector: FrameDetector,
    localizer: L,
    schema: Option<Schema>,
    last_detector_seconds: f64,
}

impl<L: Localizer> DetectingPipeline<L> {
    /// Create the pipeline, validating both configs.
    ///
    /// The [`PipelineConfig`] contributes `k` and `localize_deadline`; the
    /// alarm/leaf thresholds and history knobs of classic mode are unused
    /// (detection is the [`DetectorConfig`]'s job).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant of either config.
    pub fn try_new(
        config: PipelineConfig,
        detector_config: DetectorConfig,
        localizer: L,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let detector = FrameDetector::new(detector_config).map_err(|_| {
            // Fold the detector's own error into the pipeline's config
            // error space; the detailed message was already validated
            // upstream by service config validation.
            ConfigError::ZeroField { field: "detector" }
        })?;
        Ok(DetectingPipeline {
            config,
            detector,
            localizer,
            schema: None,
            last_detector_seconds: 0.0,
        })
    }

    /// Rebuild a pipeline whose detector resumes from `snapshot` instead
    /// of starting cold. The schema re-binds lazily on the first frame
    /// observed after the restore, exactly as on a fresh pipeline.
    /// Returns `None` when either config is invalid or the snapshot no
    /// longer matches `detector_config` — callers fall back to
    /// [`DetectingPipeline::try_new`] (a cold start that silently
    /// re-warms).
    pub fn try_restore(
        config: PipelineConfig,
        detector_config: DetectorConfig,
        snapshot: &DetectorSnapshot,
        localizer: L,
    ) -> Option<Self> {
        config.validate().ok()?;
        let detector = FrameDetector::restore(detector_config, snapshot)?;
        Some(DetectingPipeline {
            config,
            detector,
            localizer,
            schema: None,
            last_detector_seconds: 0.0,
        })
    }

    /// Capture the detector state verbatim for checkpointing.
    pub fn detector_snapshot(&self) -> DetectorSnapshot {
        self.detector.snapshot()
    }

    /// The active pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The streaming detector (state machine position, leaf count, …).
    pub fn detector(&self) -> &FrameDetector {
        &self.detector
    }

    /// Number of frames observed so far.
    pub fn steps_observed(&self) -> usize {
        self.detector.steps()
    }

    /// Wall-clock seconds the detector spent on the most recent frame
    /// (for the per-frame `detector` stage histogram).
    pub fn last_detector_seconds(&self) -> f64 {
        self.last_detector_seconds
    }

    /// Ingest one raw frame of **actual** values. The frame's forecast
    /// column and any labels are ignored — detection is the detector's
    /// job. Returns an [`IncidentReport`] on the rising edge of a
    /// detection.
    ///
    /// # Errors
    ///
    /// Fails when the frame's schema differs from the stream's, or the
    /// localizer errors on a triggered incident.
    pub fn observe(&mut self, frame: &LeafFrame) -> Result<Option<IncidentReport>, PipelineError> {
        match &self.schema {
            None => self.schema = Some(frame.schema().clone()),
            Some(s) => {
                if s != frame.schema() {
                    return Err(PipelineError::SchemaChanged);
                }
            }
        }

        let observe_span = obs::span("pipeline.detect_observe");
        observe_span.record("step", self.detector.steps());
        observe_span.record("leaves", frame.num_rows());

        let detector_started = Instant::now();
        let detection = self.detector.observe(frame);
        self.last_detector_seconds = detector_started.elapsed().as_secs_f64();
        observe_span.record("score", detection.score);

        if !detection.triggered {
            return Ok(None);
        }
        observe_span.record("alarm", true);
        self.localize_detection(frame, &detection).map(Some)
    }

    /// Label the triggering frame from the detector's per-leaf evidence
    /// and run the localizer.
    fn localize_detection(
        &self,
        frame: &LeafFrame,
        detection: &FrameDetection,
    ) -> Result<IncidentReport, PipelineError> {
        let schema = self.schema.as_ref().expect("schema set by observe");
        let detect_started = Instant::now();
        let labelled = {
            // Rebuild the frame with each leaf's *baseline forecast* in
            // the `f` column (the wire frame carries no usable forecast)
            // so confidence computations inside the localizer see the
            // same evidence the detector did. Cold leaves get `f = v`:
            // zero deviation, never labelled anomalous.
            let mut builder = LeafFrame::builder(schema);
            for (i, row) in frame.iter().enumerate() {
                let f = detection.row_forecasts[i].unwrap_or(row.v()).max(0.0);
                builder.push(row.elements(), row.v(), f);
            }
            let mut labelled = builder.build();
            labelled
                .set_labels(detection.row_labels())
                .expect("labels built alongside rows");
            labelled
        };
        let detect_seconds = detect_started.elapsed().as_secs_f64();

        let localize_started = Instant::now();
        let cancel_fired = Cell::new(false);
        let explained = {
            let localize_span = obs::span("pipeline.localize");
            localize_span.record("method", self.localizer.name());
            let explained = match self.config.localize_deadline {
                Some(budget) => {
                    let deadline = localize_started + budget;
                    let cancel = || {
                        if Instant::now() >= deadline {
                            cancel_fired.set(true);
                            true
                        } else {
                            false
                        }
                    };
                    self.localizer.localize_explained_with_cancel(
                        &labelled,
                        self.config.k,
                        &cancel,
                    )?
                }
                None => self
                    .localizer
                    .localize_explained(&labelled, self.config.k)?,
            };
            localize_span.record("raps", explained.results.len());
            explained
        };
        let localize_seconds = localize_started.elapsed().as_secs_f64();
        let deadline_exceeded = cancel_fired.get()
            || self
                .config
                .localize_deadline
                .is_some_and(|budget| localize_started.elapsed() >= budget);

        let severity = detection.severity;
        let summary = severity.map(|severity| DetectionSummary {
            score: detection.score,
            severity,
            leaf_scores: detection.leaf_scores.clone(),
        });
        let (cp_seconds, search_seconds) = explained
            .trace
            .as_ref()
            .map(|t| (t.cp_seconds, t.search_seconds))
            .unwrap_or((0.0, 0.0));
        let trace = explained.trace.map(|mut t| {
            t.detection = severity.map(|severity| TraceDetection {
                severity: severity.as_str().to_string(),
                score: detection.score,
                leaf_scores: detection.leaf_scores.clone(),
            });
            t
        });
        Ok(IncidentReport {
            step: detection.step,
            total_deviation: detection.deviation,
            anomalous_leaves: labelled.num_anomalous(),
            total_leaves: labelled.num_rows(),
            raps: explained.results,
            timings: StageTimings {
                detect_seconds,
                detector_seconds: self.last_detector_seconds,
                cp_seconds,
                search_seconds,
                localize_seconds,
            },
            trace,
            deadline_exceeded,
            degraded_forecast: false,
            severity,
            detection: summary,
            frame_id: None,
        })
    }
}

impl<L: fmt::Debug> fmt::Debug for DetectingPipeline<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectingPipeline")
            .field("steps", &self.detector.steps())
            .field("leaves_tracked", &self.detector.leaf_count())
            .field("state", &self.detector.state())
            .field("localizer", &self.localizer)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::RapMinerLocalizer;
    use cdnsim::{CdnTopology, FailureInjector, TrafficConfig, TrafficModel};
    use detect::{DetectorState, Severity};

    fn detector_config() -> DetectorConfig {
        DetectorConfig {
            min_samples: 20,
            residual_window: 64,
            ..DetectorConfig::default()
        }
    }

    fn pipeline() -> DetectingPipeline<RapMinerLocalizer> {
        DetectingPipeline::try_new(
            PipelineConfig::default(),
            detector_config(),
            RapMinerLocalizer::default(),
        )
        .expect("valid configs")
    }

    /// The location element carrying the most traffic — a failure there is
    /// material to the overall KPI, which is what the detector watches.
    fn heaviest_location(model: &TrafficModel) -> mdkpi::Combination {
        let frame = model.snapshot(0);
        let schema = model.topology().schema();
        let mut best: Option<(f64, mdkpi::Combination)> = None;
        for i in 1.. {
            let Ok(c) = schema.parse_combination(&format!("location=L{i}")) else {
                break;
            };
            let share: f64 = frame.rows_matching(&c).iter().map(|&r| frame.v(r)).sum();
            if best.as_ref().map(|(s, _)| share > *s).unwrap_or(true) {
                best = Some((share, c));
            }
        }
        best.expect("at least one location").1
    }

    #[test]
    fn self_triggers_and_localizes_an_injected_failure() {
        let topology = CdnTopology::small(17);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 17);
        let rap = heaviest_location(&model);
        let mut p = pipeline();

        // Warm on clean traffic.
        for minute in 0..60 {
            let report = p.observe(&model.snapshot(minute)).expect("clean frame");
            assert!(report.is_none(), "clean stream must not trigger");
        }
        assert_eq!(p.detector().state(), DetectorState::Steady);

        // Inject a location-wide failure; the pipeline must self-trigger
        // and recover the RAP.
        let mut frame = model.snapshot(60);
        FailureInjector::new(0.5, 0.9).inject(&mut frame, std::slice::from_ref(&rap), 60);
        let report = p
            .observe(&frame)
            .expect("anomalous frame")
            .expect("must self-trigger");
        assert!(report.severity.is_some());
        let detection = report.detection.as_ref().expect("detection evidence");
        assert!(detection.score >= p.detector().config().sigma_threshold);
        assert!(!detection.leaf_scores.is_empty());
        assert_eq!(report.severity, Some(Severity::Critical));
        assert_eq!(
            report.raps.first().map(|r| r.combination.to_string()),
            Some(rap.to_string()),
            "top RAP must be the injected one"
        );
        let trace = report.trace.as_ref().expect("rapminer attaches a trace");
        let td = trace.detection.as_ref().expect("trace carries detection");
        assert_eq!(td.severity, "critical");
        assert!(td.score >= 5.0);
        assert!(report.timings.detector_seconds > 0.0);
    }

    #[test]
    fn raw_frames_without_labels_or_forecasts_are_enough() {
        // Strip the forecast column entirely (f = 0 as on the wire).
        let topology = CdnTopology::small(5);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 5);
        let strip = |frame: &LeafFrame| {
            let mut b = LeafFrame::builder(frame.schema());
            for row in frame.iter() {
                b.push(row.elements(), row.v(), 0.0);
            }
            b.build()
        };
        let mut p = pipeline();
        for minute in 0..40 {
            let report = p
                .observe(&strip(&model.snapshot(minute)))
                .expect("raw frame");
            assert!(report.is_none());
        }
        let rap = heaviest_location(&model);
        let mut frame = model.snapshot(40);
        FailureInjector::new(0.6, 0.9).inject(&mut frame, &[rap], 40);
        let report = p.observe(&strip(&frame)).expect("anomalous frame");
        assert!(report.is_some(), "raw unlabelled frame must still trigger");
    }

    #[test]
    fn schema_change_is_rejected() {
        let mut p = pipeline();
        let a = CdnTopology::small(1);
        let model_a = TrafficModel::new(a, TrafficConfig::default(), 1);
        p.observe(&model_a.snapshot(0)).expect("first frame");
        let b = mdkpi::Schema::builder()
            .attribute("other", ["x"])
            .build()
            .expect("valid schema");
        let mut builder = LeafFrame::builder(&b);
        builder
            .push_named(&[("other", "x")], 1.0, 0.0)
            .expect("row");
        let err = p.observe(&builder.build()).unwrap_err();
        assert!(matches!(err, PipelineError::SchemaChanged));
    }

    #[test]
    fn restored_pipeline_localizes_identically_to_uninterrupted() {
        let topology = CdnTopology::small(11);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 11);
        let rap = heaviest_location(&model);
        let mut p = pipeline();
        for minute in 0..50 {
            p.observe(&model.snapshot(minute)).expect("clean frame");
        }
        // Checkpoint mid-stream, then resume a second pipeline from it.
        let snap = p.detector_snapshot();
        let mut restored = DetectingPipeline::try_restore(
            PipelineConfig::default(),
            detector_config(),
            &snap,
            RapMinerLocalizer::default(),
        )
        .expect("snapshot restores under the same config");
        assert_eq!(restored.steps_observed(), p.steps_observed());

        let mut frame = model.snapshot(50);
        FailureInjector::new(0.5, 0.9).inject(&mut frame, std::slice::from_ref(&rap), 50);
        let a = p
            .observe(&frame)
            .expect("anomalous frame")
            .expect("uninterrupted run triggers");
        let b = restored
            .observe(&frame)
            .expect("anomalous frame")
            .expect("restored run triggers identically");
        assert_eq!(a.step, b.step);
        assert_eq!(a.total_deviation.to_bits(), b.total_deviation.to_bits());
        assert_eq!(a.severity, b.severity);
        assert_eq!(
            a.raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score.to_bits()))
                .collect::<Vec<_>>(),
            b.raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score.to_bits()))
                .collect::<Vec<_>>(),
            "restored localization must match the uninterrupted run exactly"
        );
    }

    #[test]
    fn try_restore_rejects_mismatched_detector_config() {
        let p = pipeline();
        let snap = p.detector_snapshot();
        let reconfigured = DetectorConfig {
            seasonal_period: 24,
            ..detector_config()
        };
        assert!(DetectingPipeline::try_restore(
            PipelineConfig::default(),
            reconfigured,
            &snap,
            RapMinerLocalizer::default(),
        )
        .is_none());
    }

    #[test]
    fn rebuilt_pipeline_rewarms_without_panicking() {
        // The supervisor-respawn path: a replacement pipeline starts cold
        // mid-incident and must stay silent through its warmup.
        let topology = CdnTopology::small(9);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 9);
        let mut p = pipeline();
        for minute in 0..50 {
            p.observe(&model.snapshot(minute)).expect("clean frame");
        }
        drop(p);
        let mut respawned = pipeline();
        for minute in 50..70 {
            let report = respawned
                .observe(&model.snapshot(minute))
                .expect("clean frame");
            assert!(report.is_none(), "cold restart must re-warm silently");
        }
    }

    #[test]
    fn per_frame_cost_does_not_grow_with_stream_length() {
        // O(1) updates: the mean per-frame observe cost late in a long
        // stream must not exceed a small multiple of the early cost.
        let topology = CdnTopology::small(3);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 3);
        let mut p = pipeline();
        let time_phase = |p: &mut DetectingPipeline<RapMinerLocalizer>, from: usize, n: usize| {
            let start = Instant::now();
            for minute in from..from + n {
                p.observe(&model.snapshot(minute)).expect("clean frame");
            }
            start.elapsed().as_secs_f64() / n as f64
        };
        let early = time_phase(&mut p, 0, 200);
        let _middle = time_phase(&mut p, 200, 1600);
        let late = time_phase(&mut p, 1800, 200);
        // Generous bound: catches O(history) refits (which would be ~10×
        // after 9× more history) without flaking on scheduler noise.
        assert!(
            late < early * 8.0 + 1e-4,
            "per-frame cost grew with stream length: early {early:.6}s late {late:.6}s"
        );
    }
}
