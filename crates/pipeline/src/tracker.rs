use mdkpi::Combination;

use crate::incident::IncidentReport;

/// Folds the per-step [`IncidentReport`]s of a stream into *incidents*: a
/// failure that persists across consecutive alarmed steps is one incident,
/// not a page per minute.
///
/// Two consecutive reports belong to the same incident when their top-RAP
/// sets overlap (the failure scope is stable even if ranking jitters); a
/// gap of more than `max_gap` steps without an alarm closes the incident.
///
/// # Example
///
/// ```
/// use pipeline::{IncidentTracker, IncidentReport};
///
/// let mut tracker = IncidentTracker::new(2);
/// // feed reports from the stream loop:
/// //   if let Some(report) = pipe.observe(&snapshot)? {
/// //       if let Some(opened) = tracker.observe_alarm(report) { page(opened); }
/// //   } else if let Some(closed) = tracker.observe_quiet(step) { resolve(closed); }
/// assert!(tracker.active().is_none());
/// ```
#[derive(Debug)]
pub struct IncidentTracker {
    max_gap: usize,
    active: Option<Incident>,
    closed: Vec<Incident>,
}

/// One tracked incident: its lifetime and the reports that composed it.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Step of the first alarm.
    pub first_step: usize,
    /// Step of the most recent alarm.
    pub last_step: usize,
    /// Number of alarmed steps folded into this incident.
    pub alarm_count: usize,
    /// The top-ranked RAP of the most recent report.
    pub top_rap: Option<Combination>,
    /// The most recent full report.
    pub latest: IncidentReport,
}

impl Incident {
    /// Duration in steps (inclusive).
    pub fn duration(&self) -> usize {
        self.last_step - self.first_step + 1
    }
}

impl IncidentTracker {
    /// Create with the maximum quiet gap (in steps) an incident survives.
    pub fn new(max_gap: usize) -> Self {
        IncidentTracker {
            max_gap,
            active: None,
            closed: Vec::new(),
        }
    }

    /// The currently open incident, if any.
    pub fn active(&self) -> Option<&Incident> {
        self.active.as_ref()
    }

    /// Incidents closed so far, oldest first.
    pub fn closed(&self) -> &[Incident] {
        &self.closed
    }

    /// Feed an alarmed step's report. Returns the incident when this alarm
    /// *opened* a new one (the moment to page), `None` when it extended the
    /// active incident.
    pub fn observe_alarm(&mut self, report: IncidentReport) -> Option<&Incident> {
        let top = report.raps.first().map(|r| r.combination.clone());
        let same_scope = match (&self.active, &top) {
            (Some(active), Some(new_top)) => {
                report.step.saturating_sub(active.last_step) <= self.max_gap + 1
                    && (active.top_rap.as_ref() == Some(new_top)
                        || active
                            .latest
                            .raps
                            .iter()
                            .any(|r| Some(&r.combination) == top.as_ref()))
            }
            _ => false,
        };
        if same_scope {
            let active = self.active.as_mut().expect("checked above");
            active.last_step = report.step;
            active.alarm_count += 1;
            active.top_rap = top;
            active.latest = report;
            return None;
        }
        // different scope (or nothing active): close the old, open anew
        if let Some(old) = self.active.take() {
            self.closed.push(old);
        }
        self.active = Some(Incident {
            first_step: report.step,
            last_step: report.step,
            alarm_count: 1,
            top_rap: top,
            latest: report,
        });
        self.active.as_ref()
    }

    /// Feed a quiet (non-alarmed) step. Returns the incident if the quiet
    /// gap exceeded `max_gap` and the active incident closed (the moment to
    /// mark resolved).
    pub fn observe_quiet(&mut self, step: usize) -> Option<Incident> {
        let expired = match &self.active {
            Some(active) => step.saturating_sub(active.last_step) > self.max_gap,
            None => false,
        };
        if expired {
            let incident = self.active.take().expect("checked above");
            self.closed.push(incident.clone());
            Some(incident)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::ScoredCombination;
    use mdkpi::Schema;

    fn report(step: usize, rap_spec: &str) -> IncidentReport {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .build()
            .unwrap();
        let raps = if rap_spec.is_empty() {
            Vec::new()
        } else {
            vec![ScoredCombination {
                combination: schema.parse_combination(rap_spec).unwrap(),
                score: 1.0,
            }]
        };
        IncidentReport {
            step,
            total_deviation: 0.3,
            anomalous_leaves: 1,
            total_leaves: 2,
            raps,
            timings: crate::StageTimings::default(),
            trace: None,
            deadline_exceeded: false,
            degraded_forecast: false,
            severity: None,
            detection: None,
            frame_id: None,
        }
    }

    #[test]
    fn consecutive_same_scope_alarms_fold_into_one_incident() {
        let mut t = IncidentTracker::new(2);
        assert!(t.observe_alarm(report(10, "a=a1")).is_some()); // opens
        assert!(t.observe_alarm(report(11, "a=a1")).is_none()); // extends
        assert!(t.observe_alarm(report(12, "a=a1")).is_none());
        let active = t.active().unwrap();
        assert_eq!(active.alarm_count, 3);
        assert_eq!(active.duration(), 3);
        assert!(t.closed().is_empty());
    }

    #[test]
    fn scope_change_opens_a_new_incident() {
        let mut t = IncidentTracker::new(2);
        t.observe_alarm(report(10, "a=a1"));
        let opened = t.observe_alarm(report(11, "a=a2"));
        assert!(opened.is_some(), "different scope must open a new incident");
        assert_eq!(t.closed().len(), 1);
        assert_eq!(t.closed()[0].top_rap.as_ref().unwrap().to_string(), "(a1)");
    }

    #[test]
    fn quiet_gap_closes_the_incident() {
        let mut t = IncidentTracker::new(2);
        t.observe_alarm(report(10, "a=a1"));
        assert!(t.observe_quiet(11).is_none()); // gap 1 <= 2
        assert!(t.observe_quiet(12).is_none()); // gap 2 <= 2
        let closed = t.observe_quiet(13).expect("gap 3 > 2 closes");
        assert_eq!(closed.first_step, 10);
        assert!(t.active().is_none());
        // further quiet steps are no-ops
        assert!(t.observe_quiet(14).is_none());
    }

    #[test]
    fn alarm_after_short_gap_still_extends() {
        let mut t = IncidentTracker::new(2);
        t.observe_alarm(report(10, "a=a1"));
        t.observe_quiet(11);
        assert!(
            t.observe_alarm(report(12, "a=a1")).is_none(),
            "gap 2 extends"
        );
        assert_eq!(t.active().unwrap().alarm_count, 2);
    }

    #[test]
    fn alarm_after_long_gap_opens_new_incident() {
        let mut t = IncidentTracker::new(1);
        t.observe_alarm(report(10, "a=a1"));
        // steps 11..14 quiet; incident closes at 12 (gap 2 > 1)
        assert!(t.observe_quiet(11).is_none());
        assert!(t.observe_quiet(12).is_some());
        assert!(t.observe_alarm(report(14, "a=a1")).is_some());
        assert_eq!(t.closed().len(), 1);
    }

    #[test]
    fn empty_rap_reports_are_handled() {
        let mut t = IncidentTracker::new(2);
        assert!(t.observe_alarm(report(5, "")).is_some());
        // a second empty-rap report cannot match scope -> new incident
        assert!(t.observe_alarm(report(6, "")).is_some());
        assert_eq!(t.closed().len(), 1);
    }
}
