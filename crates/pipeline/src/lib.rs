//! # pipeline — the paper's Fig. 1 operations loop, streaming
//!
//! The RAPMiner paper situates localization inside an IT-operations loop:
//! KPIs are collected per most-fine-grained attribute combination every 60
//! seconds, the *overall* KPI is monitored for anomalies, and **"once an
//! anomaly alarm occurs, anomaly localization is triggered"** (§II-A).
//! This crate implements that loop as a reusable component:
//!
//! * [`LocalizationPipeline::observe`] ingests one snapshot of actual
//!   values per time step;
//! * per-leaf and total histories feed a [`timeseries::Forecaster`];
//! * when the total KPI deviates beyond the alarm threshold, every leaf is
//!   forecast from its own history, labelled with the Eq. 4 deviation
//!   detector, and handed to any [`baselines::Localizer`];
//! * the result is an [`IncidentReport`] with the ranked root anomaly
//!   patterns.
//!
//! # Example
//!
//! ```
//! use baselines::RapMinerLocalizer;
//! use mdkpi::{LeafFrame, Schema};
//! use pipeline::{LocalizationPipeline, PipelineConfig};
//! use timeseries::MovingAverage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::builder()
//!     .attribute("location", ["L1", "L2"])
//!     .attribute("site", ["S1", "S2"])
//!     .build()?;
//! let mut pipe = LocalizationPipeline::new(
//!     PipelineConfig::default(),
//!     MovingAverage::new(5),
//!     RapMinerLocalizer::default(),
//! );
//! // steady traffic: 20 normal steps
//! let steady = |v: f64| -> Result<LeafFrame, mdkpi::Error> {
//!     let mut b = LeafFrame::builder(&schema);
//!     for (l, s) in [("L1", "S1"), ("L1", "S2"), ("L2", "S1"), ("L2", "S2")] {
//!         b.push_named(&[("location", l), ("site", s)], v, 0.0)?;
//!     }
//!     Ok(b.build())
//! };
//! for _ in 0..20 {
//!     assert!(pipe.observe(&steady(100.0)?)?.is_none());
//! }
//! // L1 collapses: the alarm fires and localization points at (L1, *)
//! let mut b = LeafFrame::builder(&schema);
//! b.push_named(&[("location", "L1"), ("site", "S1")], 5.0, 0.0)?;
//! b.push_named(&[("location", "L1"), ("site", "S2")], 5.0, 0.0)?;
//! b.push_named(&[("location", "L2"), ("site", "S1")], 100.0, 0.0)?;
//! b.push_named(&[("location", "L2"), ("site", "S2")], 100.0, 0.0)?;
//! let report = pipe.observe(&b.build())?.expect("alarm");
//! assert_eq!(report.raps[0].combination.to_string(), "(L1, *)");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod incident;
mod multi;
mod stream;
mod tracker;

pub use detect::{
    DetectorConfig, DetectorConfigError, DetectorSnapshot, DetectorState, ForecasterSnapshot,
    LeafSnapshot, ResidualSnapshot, Severity,
};
pub use detector::DetectingPipeline;
pub use incident::{DetectionSummary, IncidentReport, StageTimings};
pub use multi::{localize_multi_kpi, MergedRap, MultiKpiReport};
pub use stream::{
    ClassicSnapshot, ConfigError, LocalizationPipeline, PipelineConfig, PipelineError,
};
pub use tracker::{Incident, IncidentTracker};
