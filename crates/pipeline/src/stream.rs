use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use baselines::Localizer;
use mdkpi::{ElementId, LeafFrame, Schema};
use timeseries::{deviation, Ewma, Forecaster, SeasonalNaive};

use crate::incident::{IncidentReport, StageTimings};

/// Smoothing factor of the [`Ewma`] degradation fallback.
const FALLBACK_EWMA_ALPHA: f64 = 0.3;
/// Season length (points) above which the degradation fallback prefers
/// [`SeasonalNaive`]: one day at minute granularity, matching the default
/// `history_len`. Shorter clean histories fall back to the EWMA.
const FALLBACK_SEASON: usize = 1440;

/// Tunables of the streaming loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Points of history kept per leaf (and for the total KPI).
    pub history_len: usize,
    /// Observations required before alarms may fire (forecasters need
    /// context).
    pub warmup: usize,
    /// Absolute Eq. 4 deviation of the *total* KPI that raises the alarm.
    pub alarm_threshold: f64,
    /// Absolute Eq. 4 deviation labelling one *leaf* anomalous once the
    /// alarm fired.
    pub leaf_threshold: f64,
    /// Root anomaly patterns to report per incident.
    pub k: usize,
    /// Wall-clock budget for one triggered localization. `None` (the
    /// default) never cancels; `Some(d)` polls the deadline between BFS
    /// layers and marks the incident
    /// [`IncidentReport::deadline_exceeded`](crate::IncidentReport::deadline_exceeded)
    /// when the budget ran out, keeping a pathological frame from stalling
    /// a shard worker indefinitely.
    pub localize_deadline: Option<Duration>,
    /// Intra-frame localization threads handed to the localizer factory:
    /// `1` (the default) keeps one core per shard frame, `0` sizes the
    /// per-frame pool to the machine. Results are byte-identical either
    /// way; only wall-clock time changes.
    pub localize_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            history_len: 1440, // one day at minute granularity
            warmup: 10,
            alarm_threshold: 0.1,
            leaf_threshold: 0.3,
            k: 3,
            localize_deadline: None,
            localize_threads: 1,
        }
    }
}

impl PipelineConfig {
    /// Check every invariant the streaming loop relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: zero `history_len`, zero
    /// `warmup`, zero `k`, a threshold that is not a positive finite
    /// number, or a zero `localize_deadline` (use `None` to disable).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.history_len == 0 {
            return Err(ConfigError::ZeroField {
                field: "history_len",
            });
        }
        if self.warmup == 0 {
            return Err(ConfigError::ZeroField { field: "warmup" });
        }
        if self.k == 0 {
            return Err(ConfigError::ZeroField { field: "k" });
        }
        for (field, v) in [
            ("alarm_threshold", self.alarm_threshold),
            ("leaf_threshold", self.leaf_threshold),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::BadThreshold { field, value: v });
            }
        }
        if self.localize_deadline.is_some_and(|d| d.is_zero()) {
            // `None` means "no deadline"; an explicit zero budget would
            // cancel every localization before its first layer.
            return Err(ConfigError::ZeroField {
                field: "localize_deadline",
            });
        }
        Ok(())
    }
}

/// A [`PipelineConfig`] that would misbehave downstream (division by zero
/// history, alarms that can never or always fire, empty result lists).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A count field that must be positive was zero.
    ZeroField {
        /// The offending field name.
        field: &'static str,
    },
    /// A threshold was NaN, infinite, or not positive.
    BadThreshold {
        /// The offending field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField { field } => write!(f, "{field} must be positive"),
            ConfigError::BadThreshold { field, value } => {
                write!(f, "{field} must be a positive finite number, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors of the streaming pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The pipeline was configured with an invalid [`PipelineConfig`].
    Config(ConfigError),
    /// A snapshot used a different schema than the first one observed.
    SchemaChanged,
    /// The localizer failed on a triggered incident.
    Localization(baselines::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(e) => write!(f, "invalid pipeline config: {e}"),
            PipelineError::SchemaChanged => {
                write!(f, "snapshot schema differs from the stream's schema")
            }
            PipelineError::Localization(e) => write!(f, "localization failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Config(e) => Some(e),
            PipelineError::Localization(e) => Some(e),
            PipelineError::SchemaChanged => None,
        }
    }
}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::Config(e)
    }
}

impl From<baselines::Error> for PipelineError {
    fn from(e: baselines::Error) -> Self {
        PipelineError::Localization(e)
    }
}

/// A verbatim capture of a [`LocalizationPipeline`]'s streaming state,
/// produced by [`LocalizationPipeline::state_snapshot`] and consumed by
/// [`LocalizationPipeline::try_restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicSnapshot {
    /// Snapshots observed so far.
    pub steps: usize,
    /// Total-KPI history ring, oldest first.
    pub total_history: Vec<f64>,
    /// Per-leaf history rings, sorted by element key, oldest first.
    pub history: Vec<(Vec<ElementId>, Vec<f64>)>,
}

/// The streaming operations loop: ingest per-leaf actuals step by step,
/// alarm on the overall KPI, localize on alarm (see the crate docs for a
/// full example).
pub struct LocalizationPipeline<F, L> {
    config: PipelineConfig,
    forecaster: F,
    localizer: L,
    schema: Option<Schema>,
    /// Per-leaf actual-value history, keyed by the leaf's element vector.
    history: HashMap<Vec<ElementId>, VecDeque<f64>>,
    total_history: VecDeque<f64>,
    steps: usize,
}

impl<F: Forecaster, L: Localizer> LocalizationPipeline<F, L> {
    /// Create the pipeline, panicking on an invalid config.
    ///
    /// # Panics
    ///
    /// Panics if `history_len`, `warmup` or `k` is zero, or thresholds
    /// are not positive finite numbers. Fallible callers (services,
    /// daemons) should use [`LocalizationPipeline::try_new`] instead.
    pub fn new(config: PipelineConfig, forecaster: F, localizer: L) -> Self {
        match Self::try_new(config, forecaster, localizer) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Create the pipeline, validating the config.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`PipelineConfig`] invariant as a
    /// [`ConfigError`].
    pub fn try_new(
        config: PipelineConfig,
        forecaster: F,
        localizer: L,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(LocalizationPipeline {
            config,
            forecaster,
            localizer,
            schema: None,
            history: HashMap::new(),
            total_history: VecDeque::new(),
            steps: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of snapshots observed so far.
    pub fn steps_observed(&self) -> usize {
        self.steps
    }

    /// Capture the streaming state (step counter plus every bounded
    /// history ring) verbatim for checkpointing. Leaves are emitted
    /// sorted by element key so the capture serializes to deterministic
    /// bytes. The forecaster itself is stateless between calls — it
    /// re-fits from history — so histories are the whole state.
    pub fn state_snapshot(&self) -> ClassicSnapshot {
        let mut history: Vec<(Vec<ElementId>, Vec<f64>)> = self
            .history
            .iter()
            .map(|(k, h)| (k.clone(), h.iter().copied().collect()))
            .collect();
        history.sort_by(|a, b| a.0.cmp(&b.0));
        ClassicSnapshot {
            steps: self.steps,
            total_history: self.total_history.iter().copied().collect(),
            history,
        }
    }

    /// Rebuild a pipeline resuming from `snapshot` instead of starting
    /// cold. The schema re-binds lazily on the first frame observed after
    /// the restore. Returns `None` when the config is invalid or any
    /// history ring no longer fits `history_len` (the window shrank since
    /// the snapshot was written).
    pub fn try_restore(
        config: PipelineConfig,
        forecaster: F,
        localizer: L,
        snapshot: &ClassicSnapshot,
    ) -> Option<Self> {
        config.validate().ok()?;
        if snapshot.total_history.len() > config.history_len
            || snapshot
                .history
                .iter()
                .any(|(_, h)| h.len() > config.history_len)
        {
            return None;
        }
        let mut history = HashMap::with_capacity(snapshot.history.len());
        for (key, hist) in &snapshot.history {
            history.insert(key.clone(), hist.iter().copied().collect::<VecDeque<f64>>());
        }
        Some(LocalizationPipeline {
            config,
            forecaster,
            localizer,
            schema: None,
            history,
            total_history: snapshot.total_history.iter().copied().collect(),
            steps: snapshot.steps,
        })
    }

    /// Ingest one snapshot of **actual** values (the frame's forecast
    /// column is ignored — this pipeline produces its own forecasts from
    /// history). Returns an [`IncidentReport`] when the overall KPI
    /// deviates beyond the alarm threshold after warmup.
    ///
    /// Leaves absent from a snapshot are treated as reporting zero (a dead
    /// leaf is itself a signal); leaves never seen before start a fresh
    /// history.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot's schema differs from the stream's, or the
    /// localizer errors on a triggered incident.
    pub fn observe(&mut self, frame: &LeafFrame) -> Result<Option<IncidentReport>, PipelineError> {
        let schema = match &self.schema {
            None => {
                self.schema = Some(frame.schema().clone());
                self.schema.as_ref().expect("just set")
            }
            Some(s) => {
                if s != frame.schema() {
                    return Err(PipelineError::SchemaChanged);
                }
                s
            }
        };
        let schema = schema.clone();

        let observe_span = obs::span("pipeline.observe");
        observe_span.record("step", self.steps);
        observe_span.record("leaves", frame.num_rows());

        // detection BEFORE updating histories: forecasts must not see the
        // current (possibly anomalous) point
        let total_v = frame.total_v();
        let mut report = None;
        if self.steps >= self.config.warmup {
            let (total_dev, total_degraded) = {
                let forecast_span = obs::span("pipeline.forecast");
                let total_hist: Vec<f64> = self.total_history.iter().copied().collect();
                let (total_f, degraded) = self.forecast_with_fallback(&total_hist);
                let total_dev = deviation(total_v, total_f);
                forecast_span.record("deviation", total_dev);
                if degraded {
                    forecast_span.record("degraded", true);
                }
                (total_dev, degraded)
            };
            if total_dev.abs() > self.config.alarm_threshold {
                observe_span.record("alarm", true);
                report = Some(self.localize_incident(&schema, frame, total_dev, total_degraded)?);
            }
        }

        // update histories (current snapshot becomes the newest point)
        let mut seen: HashMap<&[ElementId], f64> = HashMap::new();
        for i in 0..frame.num_rows() {
            // duplicate leaf rows in one snapshot are summed
            *seen.entry(frame.row_elements(i)).or_insert(0.0) += frame.v(i);
        }
        for (elements, hist) in &mut self.history {
            let v = seen.remove(elements.as_slice()).unwrap_or(0.0);
            push_bounded(hist, v, self.config.history_len);
        }
        for (elements, v) in seen {
            let mut hist = VecDeque::new();
            push_bounded(&mut hist, v, self.config.history_len);
            self.history.insert(elements.to_vec(), hist);
        }
        push_bounded(&mut self.total_history, total_v, self.config.history_len);
        self.steps += 1;
        Ok(report)
    }

    /// Forecast the next point, substituting a degradation fallback when
    /// the primary forecaster returns a non-finite value (which happens as
    /// soon as one NaN slips into a history it averages over). The fallback
    /// is warmed from the finite subset of the same history: seasonal-naive
    /// when at least two clean seasons exist, EWMA otherwise, and a flat
    /// zero when not even the fallback can produce a finite number. Returns
    /// `(forecast, degraded)`.
    fn forecast_with_fallback(&self, hist: &[f64]) -> (f64, bool) {
        let f = self.forecaster.forecast_next(hist);
        if f.is_finite() {
            return (f, false);
        }
        let finite: Vec<f64> = hist.iter().copied().filter(|v| v.is_finite()).collect();
        let fallback = if finite.len() >= 2 * FALLBACK_SEASON {
            SeasonalNaive::new(FALLBACK_SEASON).forecast_next(&finite)
        } else {
            Ewma::new(FALLBACK_EWMA_ALPHA).forecast_next(&finite)
        };
        (if fallback.is_finite() { fallback } else { 0.0 }, true)
    }

    /// Forecast every known leaf, label by deviation, and localize.
    fn localize_incident(
        &self,
        schema: &Schema,
        frame: &LeafFrame,
        total_dev: f64,
        total_degraded: bool,
    ) -> Result<IncidentReport, PipelineError> {
        let mut degraded_forecast = total_degraded;
        let detect_started = Instant::now();
        let labelled = {
            let detect_span = obs::span("pipeline.detect");
            let mut current: HashMap<&[ElementId], f64> = HashMap::new();
            for i in 0..frame.num_rows() {
                *current.entry(frame.row_elements(i)).or_insert(0.0) += frame.v(i);
            }
            let mut builder = LeafFrame::builder(schema);
            let mut labels: Vec<bool> = Vec::new();
            let mut keys: Vec<&Vec<ElementId>> = self.history.keys().collect();
            keys.sort(); // deterministic row order
            for elements in keys {
                let hist: Vec<f64> = self.history[elements].iter().copied().collect();
                let (raw_f, leaf_degraded) = self.forecast_with_fallback(&hist);
                degraded_forecast |= leaf_degraded;
                let f = raw_f.max(0.0);
                let v = current.get(elements.as_slice()).copied().unwrap_or(0.0);
                builder.push(elements, v, f);
                labels.push(deviation(v, f).abs() > self.config.leaf_threshold);
            }
            let mut labelled = builder.build();
            labelled
                .set_labels(labels)
                .expect("labels built alongside rows");
            detect_span.record("leaves", labelled.num_rows());
            detect_span.record("anomalous", labelled.num_anomalous());
            labelled
        };
        let detect_seconds = detect_started.elapsed().as_secs_f64();

        let localize_started = Instant::now();
        let cancel_fired = Cell::new(false);
        let explained = {
            let localize_span = obs::span("pipeline.localize");
            localize_span.record("method", self.localizer.name());
            let explained = match self.config.localize_deadline {
                Some(budget) => {
                    let deadline = localize_started + budget;
                    let cancel = || {
                        if Instant::now() >= deadline {
                            cancel_fired.set(true);
                            true
                        } else {
                            false
                        }
                    };
                    self.localizer.localize_explained_with_cancel(
                        &labelled,
                        self.config.k,
                        &cancel,
                    )?
                }
                None => self
                    .localizer
                    .localize_explained(&labelled, self.config.k)?,
            };
            localize_span.record("raps", explained.results.len());
            explained
        };
        let localize_seconds = localize_started.elapsed().as_secs_f64();
        // A localizer without preemption points never polls `cancel`, so
        // also compare elapsed time against the budget directly.
        let deadline_exceeded = cancel_fired.get()
            || self
                .config
                .localize_deadline
                .is_some_and(|budget| localize_started.elapsed() >= budget);
        if deadline_exceeded {
            obs::warn(
                "pipeline",
                "localize_deadline_exceeded",
                &[
                    ("step", obs::Value::from(self.steps)),
                    (
                        "budget_ms",
                        obs::Value::from(
                            self.config
                                .localize_deadline
                                .map(|d| d.as_millis() as u64)
                                .unwrap_or(0),
                        ),
                    ),
                    (
                        "elapsed_ms",
                        obs::Value::from(localize_started.elapsed().as_millis() as u64),
                    ),
                ],
            );
        }

        let (cp_seconds, search_seconds) = explained
            .trace
            .as_ref()
            .map(|t| (t.cp_seconds, t.search_seconds))
            .unwrap_or((0.0, 0.0));
        Ok(IncidentReport {
            step: self.steps,
            total_deviation: total_dev,
            anomalous_leaves: labelled.num_anomalous(),
            total_leaves: labelled.num_rows(),
            raps: explained.results,
            timings: StageTimings {
                detect_seconds,
                detector_seconds: 0.0,
                cp_seconds,
                search_seconds,
                localize_seconds,
            },
            trace: explained.trace,
            deadline_exceeded,
            degraded_forecast,
            severity: None,
            detection: None,
            frame_id: None,
        })
    }
}

impl<F: fmt::Debug, L: fmt::Debug> fmt::Debug for LocalizationPipeline<F, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalizationPipeline")
            .field("steps", &self.steps)
            .field("leaves_tracked", &self.history.len())
            .field("forecaster", &self.forecaster)
            .field("localizer", &self.localizer)
            .finish()
    }
}

fn push_bounded(hist: &mut VecDeque<f64>, v: f64, cap: usize) {
    if hist.len() == cap {
        hist.pop_front();
    }
    hist.push_back(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::RapMinerLocalizer;
    use timeseries::MovingAverage;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap()
    }

    fn frame(schema: &Schema, values: [f64; 4]) -> LeafFrame {
        let mut b = LeafFrame::builder(schema);
        let mut idx = 0;
        for x in 0..2u32 {
            for y in 0..2u32 {
                b.push(&[ElementId(x), ElementId(y)], values[idx], 0.0);
                idx += 1;
            }
        }
        b.build()
    }

    fn pipeline() -> LocalizationPipeline<MovingAverage, RapMinerLocalizer> {
        LocalizationPipeline::new(
            PipelineConfig {
                warmup: 5,
                ..PipelineConfig::default()
            },
            MovingAverage::new(5),
            RapMinerLocalizer::default(),
        )
    }

    #[test]
    fn steady_traffic_never_alarms() {
        let s = schema();
        let mut p = pipeline();
        for step in 0..30 {
            let jitter = 1.0 + 0.01 * ((step % 3) as f64 - 1.0);
            let report = p
                .observe(&frame(&s, [100.0 * jitter, 50.0, 80.0, 60.0]))
                .unwrap();
            assert!(report.is_none(), "false alarm at step {step}");
        }
        assert_eq!(p.steps_observed(), 30);
    }

    #[test]
    fn collapse_raises_alarm_and_localizes() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..10 {
            assert!(p
                .observe(&frame(&s, [100.0, 100.0, 100.0, 100.0]))
                .unwrap()
                .is_none());
        }
        // (a1, *) collapses: rows (a1,b1) and (a1,b2)
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("alarm should fire");
        assert!(report.total_deviation > 0.1);
        assert_eq!(report.anomalous_leaves, 2);
        assert_eq!(report.raps[0].combination.to_string(), "(a1, *)");
        assert!(report.summary().contains("(a1, *)"));
        assert!(!report.degraded_forecast, "clean history is not degraded");
    }

    #[test]
    fn nan_history_degrades_forecast_instead_of_silencing_alarms() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..8 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        // One corrupt snapshot poisons every history with a NaN point; from
        // now on MovingAverage(5) returns NaN for every series.
        assert!(p
            .observe(&frame(&s, [f64::NAN, 100.0, 100.0, 100.0]))
            .unwrap()
            .is_none());
        // Steady traffic under the fallback forecaster: no false alarm.
        assert!(p
            .observe(&frame(&s, [100.0, 100.0, 100.0, 100.0]))
            .unwrap()
            .is_none());
        // A real collapse still alarms and localizes correctly — but the
        // incident is flagged as produced on degraded forecasts.
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("collapse must still alarm on fallback forecasts");
        assert!(report.degraded_forecast);
        assert_eq!(report.raps[0].combination.to_string(), "(a1, *)");
        assert!(report.summary().contains("(degraded forecast)"));
        assert!(report.total_deviation.is_finite());
    }

    #[test]
    fn all_nan_history_falls_back_to_zero_forecast() {
        let p = pipeline();
        let (f, degraded) = p.forecast_with_fallback(&[f64::NAN, f64::NAN]);
        assert_eq!(f, 0.0);
        assert!(degraded);
        let (f, degraded) = p.forecast_with_fallback(&[f64::NAN, 7.0, 9.0]);
        assert!(degraded);
        assert!(f.is_finite() && f > 0.0, "ewma over the finite subset");
        let (f, degraded) = p.forecast_with_fallback(&[7.0, 9.0]);
        assert!(!degraded);
        assert_eq!(f, 8.0, "primary moving average untouched");
    }

    #[test]
    fn incident_carries_trace_and_stage_timings() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("alarm should fire");
        let trace = report.trace.as_ref().expect("rapminer attaches a trace");
        assert!(trace.is_consistent(), "trace: {trace:?}");
        // the trace's stats describe the very search that produced `raps`
        let kept = trace.candidates.iter().filter(|c| c.kept).count();
        assert_eq!(kept, report.raps.len());
        let t = report.timings;
        assert!(t.detect_seconds >= 0.0 && t.localize_seconds >= 0.0);
        // cp + search happen inside the localizer call
        assert!(t.localize_seconds >= t.cp_seconds + t.search_seconds);
        assert_eq!(trace.cp_seconds, t.cp_seconds);
        assert_eq!(trace.search_seconds, t.search_seconds);
    }

    #[test]
    fn no_alarm_during_warmup() {
        let s = schema();
        let mut p = pipeline();
        // even a crazy first frame cannot alarm: not enough history
        for _ in 0..4 {
            assert!(p
                .observe(&frame(&s, [0.0, 0.0, 0.0, 0.0]))
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn vanished_leaf_counts_as_zero_and_localizes() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        // snapshot missing every a1 row entirely (dead collector)
        let mut b = LeafFrame::builder(&s);
        b.push(&[ElementId(1), ElementId(0)], 100.0, 0.0);
        b.push(&[ElementId(1), ElementId(1)], 100.0, 0.0);
        let partial = b.build();
        let report = p.observe(&partial).unwrap().expect("alarm");
        assert_eq!(report.raps[0].combination.to_string(), "(a1, *)");
        // history was still extended for the missing leaves (with zeros)
        assert_eq!(p.history.len(), 4);
    }

    #[test]
    fn schema_change_is_rejected() {
        let s = schema();
        let mut p = pipeline();
        p.observe(&frame(&s, [1.0, 1.0, 1.0, 1.0])).unwrap();
        let other = Schema::builder().attribute("x", ["x1"]).build().unwrap();
        let mut b = LeafFrame::builder(&other);
        b.push(&[ElementId(0)], 1.0, 0.0);
        let err = p.observe(&b.build()).unwrap_err();
        assert!(matches!(err, PipelineError::SchemaChanged));
    }

    #[test]
    fn history_is_bounded() {
        let s = schema();
        let mut p = LocalizationPipeline::new(
            PipelineConfig {
                history_len: 7,
                warmup: 3,
                ..PipelineConfig::default()
            },
            MovingAverage::new(3),
            RapMinerLocalizer::default(),
        );
        for _ in 0..50 {
            p.observe(&frame(&s, [10.0, 10.0, 10.0, 10.0])).unwrap();
        }
        assert!(p.total_history.len() <= 7);
        assert!(p.history.values().all(|h| h.len() <= 7));
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let ok = PipelineConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases: [(PipelineConfig, &str); 6] = [
            (
                PipelineConfig {
                    history_len: 0,
                    ..ok
                },
                "history_len",
            ),
            (PipelineConfig { warmup: 0, ..ok }, "warmup"),
            (PipelineConfig { k: 0, ..ok }, "k"),
            (
                PipelineConfig {
                    alarm_threshold: f64::NAN,
                    ..ok
                },
                "alarm_threshold",
            ),
            (
                PipelineConfig {
                    alarm_threshold: -0.1,
                    ..ok
                },
                "alarm_threshold",
            ),
            (
                PipelineConfig {
                    leaf_threshold: f64::INFINITY,
                    ..ok
                },
                "leaf_threshold",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().expect_err(field);
            assert!(
                err.to_string().contains(field),
                "error {err} should name {field}"
            );
        }
    }

    #[test]
    fn try_new_returns_error_not_panic() {
        let err = LocalizationPipeline::try_new(
            PipelineConfig {
                warmup: 0,
                ..PipelineConfig::default()
            },
            MovingAverage::new(3),
            RapMinerLocalizer::default(),
        )
        .expect_err("zero warmup must be rejected");
        assert_eq!(err, ConfigError::ZeroField { field: "warmup" });
    }

    #[test]
    fn state_snapshot_restores_and_alarms_identically() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        let snap = p.state_snapshot();
        // Deterministic serialization: leaf keys sorted.
        let keys: Vec<_> = snap.history.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);

        let mut restored = LocalizationPipeline::try_restore(
            PipelineConfig {
                warmup: 5,
                ..PipelineConfig::default()
            },
            MovingAverage::new(5),
            RapMinerLocalizer::default(),
            &snap,
        )
        .expect("same config restores");
        assert_eq!(restored.steps_observed(), p.steps_observed());

        let anomalous = frame(&s, [5.0, 5.0, 100.0, 100.0]);
        let a = p.observe(&anomalous).unwrap().expect("alarm");
        let b = restored.observe(&anomalous).unwrap().expect("alarm");
        assert_eq!(a.step, b.step);
        assert_eq!(a.total_deviation.to_bits(), b.total_deviation.to_bits());
        assert_eq!(
            a.raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score.to_bits()))
                .collect::<Vec<_>>(),
            b.raps
                .iter()
                .map(|r| (r.combination.to_string(), r.score.to_bits()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_restore_rejects_a_shrunk_history_window() {
        let s = schema();
        let mut p = pipeline();
        for _ in 0..20 {
            p.observe(&frame(&s, [1.0, 1.0, 1.0, 1.0])).unwrap();
        }
        let snap = p.state_snapshot();
        assert!(LocalizationPipeline::try_restore(
            PipelineConfig {
                history_len: 5,
                ..PipelineConfig::default()
            },
            MovingAverage::new(5),
            RapMinerLocalizer::default(),
            &snap,
        )
        .is_none());
    }

    #[test]
    fn pipeline_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LocalizationPipeline<MovingAverage, RapMinerLocalizer>>();
        assert_send::<LocalizationPipeline<MovingAverage, Box<dyn Localizer>>>();
    }

    #[test]
    #[should_panic(expected = "alarm_threshold")]
    fn bad_config_rejected() {
        LocalizationPipeline::new(
            PipelineConfig {
                alarm_threshold: 0.0,
                ..PipelineConfig::default()
            },
            MovingAverage::new(3),
            RapMinerLocalizer::default(),
        );
    }

    /// A localizer that burns wall-clock time at its preemption points,
    /// standing in for a pathological cuboid lattice.
    #[derive(Debug)]
    struct SlowLocalizer {
        delay: Duration,
    }

    impl Localizer for SlowLocalizer {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn localize(
            &self,
            frame: &LeafFrame,
            _k: usize,
        ) -> baselines::Result<Vec<baselines::ScoredCombination>> {
            std::thread::sleep(self.delay);
            Ok(vec![baselines::ScoredCombination {
                combination: mdkpi::Combination::root(frame.schema()),
                score: 1.0,
            }])
        }
        fn localize_explained_with_cancel(
            &self,
            frame: &LeafFrame,
            k: usize,
            cancel: &dyn Fn() -> bool,
        ) -> baselines::Result<baselines::Explained> {
            // Poll like rapminer does between layers: sleep, then check.
            std::thread::sleep(self.delay);
            if cancel() {
                return Ok(baselines::Explained {
                    results: Vec::new(),
                    trace: None,
                });
            }
            self.localize_explained(frame, k)
        }
    }

    fn slow_pipeline(
        deadline: Option<Duration>,
        delay: Duration,
    ) -> LocalizationPipeline<MovingAverage, SlowLocalizer> {
        LocalizationPipeline::new(
            PipelineConfig {
                warmup: 5,
                localize_deadline: deadline,
                ..PipelineConfig::default()
            },
            MovingAverage::new(5),
            SlowLocalizer { delay },
        )
    }

    #[test]
    fn deadline_marks_slow_incident_and_keeps_pipeline_alive() {
        let s = schema();
        let mut p = slow_pipeline(Some(Duration::from_millis(5)), Duration::from_millis(30));
        for _ in 0..10 {
            assert!(p
                .observe(&frame(&s, [100.0, 100.0, 100.0, 100.0]))
                .unwrap()
                .is_none());
        }
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("alarm still fires under deadline");
        assert!(report.deadline_exceeded, "30ms localize vs 5ms budget");
        assert!(report.raps.is_empty(), "cancelled before any layer");
        assert!(report.summary().contains("(deadline exceeded)"));
        // the pipeline keeps observing normally afterwards
        assert!(p
            .observe(&frame(&s, [100.0, 100.0, 100.0, 100.0]))
            .unwrap()
            .is_some_and(|r| r.deadline_exceeded));
    }

    #[test]
    fn generous_deadline_is_not_marked() {
        let s = schema();
        let mut p = slow_pipeline(Some(Duration::from_secs(30)), Duration::from_millis(1));
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("alarm");
        assert!(!report.deadline_exceeded);
        assert!(!report.raps.is_empty());
    }

    #[test]
    fn deadline_marks_cancel_ignoring_localizer_by_elapsed_time() {
        // `localize` (no cancel support) via the default explained path:
        // the hook is never polled, but elapsed-vs-budget still marks it.
        struct Oblivious(Duration);
        impl Localizer for Oblivious {
            fn name(&self) -> &'static str {
                "oblivious"
            }
            fn localize(
                &self,
                frame: &LeafFrame,
                _k: usize,
            ) -> baselines::Result<Vec<baselines::ScoredCombination>> {
                std::thread::sleep(self.0);
                Ok(vec![baselines::ScoredCombination {
                    combination: mdkpi::Combination::root(frame.schema()),
                    score: 1.0,
                }])
            }
        }
        let s = schema();
        let mut p = LocalizationPipeline::new(
            PipelineConfig {
                warmup: 5,
                localize_deadline: Some(Duration::from_millis(5)),
                ..PipelineConfig::default()
            },
            MovingAverage::new(5),
            Oblivious(Duration::from_millis(30)),
        );
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        let report = p
            .observe(&frame(&s, [5.0, 5.0, 100.0, 100.0]))
            .unwrap()
            .expect("alarm");
        assert!(report.deadline_exceeded);
        // the run-to-completion localizer still returned its full answer
        assert_eq!(report.raps.len(), 1);
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let err = PipelineConfig {
            localize_deadline: Some(Duration::ZERO),
            ..PipelineConfig::default()
        }
        .validate()
        .expect_err("zero deadline must be rejected");
        assert!(err.to_string().contains("localize_deadline"));
    }

    #[test]
    fn traffic_surge_also_alarms() {
        // negative deviation (actual above forecast) must trigger too
        let s = schema();
        let mut p = pipeline();
        for _ in 0..10 {
            p.observe(&frame(&s, [100.0, 100.0, 100.0, 100.0])).unwrap();
        }
        let report = p
            .observe(&frame(&s, [500.0, 500.0, 100.0, 100.0]))
            .unwrap()
            .expect("surge alarm");
        assert!(report.total_deviation < 0.0);
        assert_eq!(report.raps[0].combination.to_string(), "(a1, *)");
    }
}
