//! # detect — streaming anomaly detection over multi-dimensional KPI frames
//!
//! The paper's pipeline *starts* with detection: the overall KPI of a
//! multi-dimensional stream is watched continuously, and localization runs
//! the moment an anomaly fires. This crate is that front half, built for a
//! long-running daemon rather than an offline study:
//!
//! * **Incremental forecaster state** ([`IncEwma`], [`IncHoltWinters`]):
//!   every leaf keeps `O(1)`-sized state that is updated in `O(1)` per
//!   observation — no history buffer, no per-frame refit. The additive
//!   Holt-Winters variant carries level, trend and one seasonal slot per
//!   phase of the configured period.
//! * **Ring-buffered residual windows** ([`ResidualWindow`]): forecast
//!   residuals from normal operation accumulate in a bounded ring with
//!   running sum/sum-of-squares, so the residual mean and standard
//!   deviation are `O(1)` reads. A minimum-sample warmup gate keeps the
//!   detector silent until the estimates mean something.
//! * **σ-tiered severity** ([`Severity`]): `warn` at 3–4σ, `high` at 4–5σ,
//!   `critical` above 5σ.
//! * **Frame-level aggregation** ([`FrameDetector`]): one detector per
//!   leaf plus one for the overall KPI. The aggregate frame anomaly score
//!   is the overall KPI's σ-score; a detection fires when it crosses the
//!   configured threshold *and* the relative deviation is material
//!   (`min_deviation` suppresses hair-trigger alarms on near-zero-variance
//!   series).
//!
//! The detector is a three-state machine per tenant:
//! `warmup → steady → triggered`. In `triggered` the baselines of the
//! overall KPI and of the anomalous leaves are *held* (the forecaster
//! absorbs its own prediction instead of the anomalous value), so a
//! sustained incident does not poison the notion of normal; a bounded
//! `max_triggered` escape hatch re-absorbs after a configurable number of
//! consecutive anomalous frames so a permanent level shift eventually
//! becomes the new normal.
//!
//! # Example
//!
//! ```
//! use detect::{DetectorConfig, FrameDetector, Severity};
//! use mdkpi::{LeafFrame, Schema};
//!
//! let schema = Schema::builder()
//!     .attribute("loc", ["L1", "L2"])
//!     .build()
//!     .unwrap();
//! let frame = |v1: f64, v2: f64| {
//!     let mut b = LeafFrame::builder(&schema);
//!     b.push_named(&[("loc", "L1")], v1, 0.0).unwrap();
//!     b.push_named(&[("loc", "L2")], v2, 0.0).unwrap();
//!     b.build()
//! };
//! let config = DetectorConfig {
//!     min_samples: 8,
//!     ..DetectorConfig::default()
//! };
//! let mut detector = FrameDetector::new(config).unwrap();
//! for _ in 0..50 {
//!     let d = detector.observe(&frame(100.0, 200.0));
//!     assert!(!d.triggered); // steady traffic never fires
//! }
//! let d = detector.observe(&frame(10.0, 20.0)); // 90% drop
//! assert!(d.triggered);
//! assert_eq!(d.severity, Some(Severity::Critical));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod forecast;
mod frame;
mod residual;
mod severity;

pub use config::{DetectorConfig, DetectorConfigError};
pub use forecast::{ForecasterSnapshot, IncEwma, IncHoltWinters, LeafForecaster};
pub use frame::{
    DetectorSnapshot, DetectorState, FrameDetection, FrameDetector, LeafDetector, LeafSnapshot,
};
pub use residual::{ResidualSnapshot, ResidualWindow};
pub use severity::Severity;
