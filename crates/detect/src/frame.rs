//! Frame-level detection: one incremental detector per leaf plus one for
//! the overall KPI, combined into an aggregate anomaly score and a
//! `warmup → steady → triggered` state machine.

use std::collections::HashMap;

use mdkpi::{ElementId, LeafFrame};

use crate::config::{DetectorConfig, DetectorConfigError};
use crate::forecast::{ForecasterSnapshot, LeafForecaster};
use crate::residual::{ResidualSnapshot, ResidualWindow};
use crate::severity::Severity;

/// Guard against division by zero in relative deviations (the paper's
/// Eq. 4 ε).
const EPS: f64 = 1e-9;

/// Per-leaf σ floor for the "is this *leaf* anomalous" call that decides
/// which leaves get their baseline held and which rows are labelled for
/// localization. Matches the `warn` tier floor.
const LEAF_SIGMA: f64 = 3.0;

/// How many of the highest-scoring leaves a [`FrameDetection`] names.
const TOP_LEAVES: usize = 8;

/// One leaf's incremental detector: forecaster state plus a residual ring.
///
/// All state is `O(residual_window)`-bounded and every update is `O(1)` —
/// there is no history buffer and no refit.
#[derive(Debug, Clone)]
pub struct LeafDetector {
    forecaster: LeafForecaster,
    residuals: ResidualWindow,
}

impl LeafDetector {
    /// Fresh (cold) detector state for one leaf.
    pub fn new(config: &DetectorConfig) -> Self {
        LeafDetector {
            forecaster: LeafForecaster::from_config(config),
            residuals: ResidualWindow::new(config.residual_window),
        }
    }

    /// Whether enough residuals accumulated for σ-scores to mean anything.
    pub fn is_warm(&self, min_samples: usize) -> bool {
        self.residuals.len() >= min_samples
    }

    /// One-step-ahead forecast; `None` on cold state.
    pub fn forecast_next(&self) -> Option<f64> {
        self.forecaster.forecast_next()
    }

    /// σ-score of observation `x` against the residual distribution;
    /// `None` while cold or during warmup. Never panics and never returns
    /// a non-finite value.
    pub fn score(&self, x: f64, config: &DetectorConfig) -> Option<f64> {
        if !self.is_warm(config.min_samples) {
            return None;
        }
        let f = self.forecaster.forecast_next()?;
        let floor = (config.sigma_floor_ratio * f.abs()).max(EPS);
        let std = self.residuals.std().max(floor);
        let z = ((x - f - self.residuals.mean()) / std).abs();
        z.is_finite().then_some(z)
    }

    /// Absorb a normal observation: record its residual, then advance the
    /// forecaster.
    pub fn absorb(&mut self, x: f64) {
        if let Some(f) = self.forecaster.forecast_next() {
            self.residuals.push(x - f);
        }
        self.forecaster.update(x);
    }

    /// Hold the baseline through an anomalous observation: the forecaster
    /// absorbs its own prediction and the residual ring is untouched.
    pub fn hold(&mut self) {
        self.forecaster.hold();
    }

    /// Capture this leaf's state verbatim for checkpointing.
    pub fn snapshot(&self) -> LeafSnapshot {
        LeafSnapshot {
            forecaster: self.forecaster.snapshot(),
            residuals: self.residuals.snapshot(),
        }
    }

    /// Rebuild a leaf from a snapshot under `config`; `None` when the
    /// snapshot no longer matches the configured model shape.
    pub fn restore(config: &DetectorConfig, snap: &LeafSnapshot) -> Option<Self> {
        Some(LeafDetector {
            forecaster: LeafForecaster::restore(config, &snap.forecaster)?,
            residuals: ResidualWindow::restore(config.residual_window, &snap.residuals)?,
        })
    }
}

/// A verbatim capture of one [`LeafDetector`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSnapshot {
    /// Forecaster model state.
    pub forecaster: ForecasterSnapshot,
    /// Residual-ring contents and running moments.
    pub residuals: ResidualSnapshot,
}

/// Where the detector's state machine currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorState {
    /// Accumulating the first `min_samples` residuals; detections are
    /// gated off.
    Warmup,
    /// Baseline established, nothing anomalous in flight.
    Steady,
    /// An aggregate-score excursion is in progress; baselines are held.
    Triggered,
}

impl DetectorState {
    /// The lowercase phase name used on the wire (rapd's `debug` verb).
    pub fn as_str(self) -> &'static str {
        match self {
            DetectorState::Warmup => "warmup",
            DetectorState::Steady => "steady",
            DetectorState::Triggered => "triggered",
        }
    }

    /// Inverse of [`DetectorState::as_str`], for checkpoint decoding.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warmup" => Some(DetectorState::Warmup),
            "steady" => Some(DetectorState::Steady),
            "triggered" => Some(DetectorState::Triggered),
            _ => None,
        }
    }
}

/// What one [`FrameDetector::observe`] call concluded.
#[derive(Debug, Clone)]
pub struct FrameDetection {
    /// 0-based observation index.
    pub step: usize,
    /// Aggregate frame anomaly score: the overall KPI's σ-score
    /// (`0.0` during warmup).
    pub score: f64,
    /// Relative deviation of the overall KPI from its forecast,
    /// `(f − v) / (f + ε)` (Eq. 4; `0.0` during warmup).
    pub deviation: f64,
    /// σ-tier of `score`; `None` below the `warn` floor.
    pub severity: Option<Severity>,
    /// Whether *this frame* is the rising edge of a detection — the
    /// moment localization should run. At most one rising edge per
    /// excursion.
    pub triggered: bool,
    /// State after this observation.
    pub state: DetectorState,
    /// Per-row σ-scores aligned with the observed frame's rows; `None`
    /// for rows whose leaf detector is still warming up.
    pub row_scores: Vec<Option<f64>>,
    /// Per-row one-step-ahead forecasts from each leaf's baseline,
    /// aligned with the observed frame's rows; `None` for cold leaves.
    /// These are the forecasts the σ-scores were computed against —
    /// downstream localization labels rows with them.
    pub row_forecasts: Vec<Option<f64>>,
    /// The highest-scoring leaves `(combination, σ-score)`, best first,
    /// capped at a small fixed count. Deterministic: ties break on the
    /// combination string.
    pub leaf_scores: Vec<(String, f64)>,
}

impl FrameDetection {
    /// Row labels for localization: a row is anomalous when its leaf
    /// σ-score clears the `warn` floor.
    pub fn row_labels(&self) -> Vec<bool> {
        self.row_scores
            .iter()
            .map(|z| z.map(|z| z >= LEAF_SIGMA).unwrap_or(false))
            .collect()
    }
}

/// A verbatim capture of a whole [`FrameDetector`], produced by
/// [`FrameDetector::snapshot`] and consumed by [`FrameDetector::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSnapshot {
    /// Observations consumed so far.
    pub steps: usize,
    /// State-machine position.
    pub state: DetectorState,
    /// Consecutive anomalous frames in the current excursion.
    pub triggered_frames: usize,
    /// The overall-KPI detector.
    pub total: LeafSnapshot,
    /// Per-leaf detectors, sorted by element key.
    pub leaves: Vec<(Vec<ElementId>, LeafSnapshot)>,
}

/// The per-tenant streaming detector: per-leaf incremental state plus an
/// overall-KPI detector and the `warmup → steady → triggered` machine.
///
/// A fresh instance is always safe to observe into — a respawned shard
/// worker rebuilds one cold and it silently re-warms from the live stream
/// (no detections until `min_samples` residuals accumulate, no panics).
#[derive(Debug, Clone)]
pub struct FrameDetector {
    config: DetectorConfig,
    total: LeafDetector,
    leaves: HashMap<Vec<ElementId>, LeafDetector>,
    state: DetectorState,
    /// Consecutive anomalous frames in the current excursion.
    triggered_frames: usize,
    steps: usize,
}

impl FrameDetector {
    /// Create with a validated config.
    pub fn new(config: DetectorConfig) -> Result<Self, DetectorConfigError> {
        config.validate()?;
        Ok(FrameDetector {
            total: LeafDetector::new(&config),
            leaves: HashMap::new(),
            state: DetectorState::Warmup,
            triggered_frames: 0,
            steps: 0,
            config,
        })
    }

    /// The validated config this detector runs with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Current state-machine position.
    pub fn state(&self) -> DetectorState {
        self.state
    }

    /// Observations consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Distinct leaves with detector state.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Capture the whole detector verbatim for checkpointing. Leaves are
    /// emitted sorted by element key so the snapshot serializes to
    /// deterministic bytes regardless of hash-map iteration order.
    pub fn snapshot(&self) -> DetectorSnapshot {
        let mut leaves: Vec<(Vec<ElementId>, LeafSnapshot)> = self
            .leaves
            .iter()
            .map(|(k, d)| (k.clone(), d.snapshot()))
            .collect();
        leaves.sort_by(|a, b| a.0.cmp(&b.0));
        DetectorSnapshot {
            steps: self.steps,
            state: self.state,
            triggered_frames: self.triggered_frames,
            total: self.total.snapshot(),
            leaves,
        }
    }

    /// Rebuild a detector from a snapshot so that, fed the same stream,
    /// it behaves bit-identically to the detector the snapshot was taken
    /// from. Returns `None` when `config` is invalid or any piece of the
    /// snapshot no longer matches the configured model shape — callers
    /// fall back to a cold start (which silently re-warms) rather than
    /// resuming from mismatched state.
    pub fn restore(config: DetectorConfig, snap: &DetectorSnapshot) -> Option<Self> {
        config.validate().ok()?;
        let total = LeafDetector::restore(&config, &snap.total)?;
        let mut leaves = HashMap::with_capacity(snap.leaves.len());
        for (key, leaf) in &snap.leaves {
            leaves.insert(key.clone(), LeafDetector::restore(&config, leaf)?);
        }
        Some(FrameDetector {
            total,
            leaves,
            state: snap.state,
            triggered_frames: snap.triggered_frames,
            steps: snap.steps,
            config,
        })
    }

    /// Consume one raw (unlabelled) frame and decide whether it is the
    /// rising edge of an anomaly.
    ///
    /// Per frame the cost is `O(rows)` — each row does an `O(1)` state
    /// update — independent of how long the stream has run.
    pub fn observe(&mut self, frame: &LeafFrame) -> FrameDetection {
        let step = self.steps;
        self.steps += 1;
        if frame.is_empty() {
            // Nothing to learn from and nothing to alarm on; leave every
            // baseline untouched.
            return FrameDetection {
                step,
                score: 0.0,
                deviation: 0.0,
                severity: None,
                triggered: false,
                state: self.state,
                row_scores: Vec::new(),
                row_forecasts: Vec::new(),
                leaf_scores: Vec::new(),
            };
        }

        let total_v = frame.total_v();
        let score = self.total.score(total_v, &self.config).unwrap_or(0.0);
        let deviation = match self.total.forecast_next() {
            Some(f) => (f - total_v) / (f + EPS),
            None => 0.0,
        };
        let warm = self.total.is_warm(self.config.min_samples);

        // Per-row scores and forecasts against each leaf's own baseline.
        let mut row_scores = Vec::with_capacity(frame.num_rows());
        let mut row_forecasts = Vec::with_capacity(frame.num_rows());
        for row in frame.iter() {
            let leaf = self.leaves.get(row.elements());
            row_scores.push(leaf.and_then(|d| d.score(row.v(), &self.config)));
            row_forecasts.push(leaf.and_then(|d| d.forecast_next()));
        }

        let anomalous = warm
            && score >= self.config.sigma_threshold
            && deviation.abs() >= self.config.min_deviation;

        // State transition + choose absorb vs hold.
        let (triggered, absorb_frame) = if !warm {
            self.state = DetectorState::Warmup;
            self.triggered_frames = 0;
            (false, true)
        } else if anomalous {
            self.triggered_frames += 1;
            if self.triggered_frames >= self.config.max_triggered {
                // Sustained excursion: give up holding, absorb the new
                // level as normal.
                self.state = DetectorState::Steady;
                self.triggered_frames = 0;
                (false, true)
            } else {
                let rising = self.state != DetectorState::Triggered;
                self.state = DetectorState::Triggered;
                (rising, false)
            }
        } else {
            self.state = DetectorState::Steady;
            self.triggered_frames = 0;
            (false, true)
        };

        // Update baselines. On anomalous frames the overall KPI and the
        // anomalous leaves hold; healthy leaves keep learning.
        if absorb_frame {
            self.total.absorb(total_v);
        } else {
            self.total.hold();
        }
        for (i, row) in frame.iter().enumerate() {
            let leaf = self
                .leaves
                .entry(row.elements().to_vec())
                .or_insert_with(|| LeafDetector::new(&self.config));
            let leaf_anomalous = row_scores[i].map(|z| z >= LEAF_SIGMA).unwrap_or(false);
            if absorb_frame || !leaf_anomalous {
                leaf.absorb(row.v());
            } else {
                leaf.hold();
            }
        }

        // Top leaves by score, deterministic order.
        let mut top: Vec<(String, f64)> = row_scores
            .iter()
            .enumerate()
            .filter_map(|(i, z)| z.map(|z| (frame.combination(i).to_string(), z)))
            .collect();
        top.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        top.truncate(TOP_LEAVES);

        FrameDetection {
            step,
            score,
            deviation,
            severity: if anomalous {
                Severity::from_sigma(score)
            } else {
                None
            },
            triggered,
            state: self.state,
            row_scores,
            row_forecasts,
            leaf_scores: top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("loc", ["L1", "L2", "L3"])
            .build()
            .expect("valid schema")
    }

    fn frame(schema: &Schema, scale: f64) -> LeafFrame {
        let mut b = LeafFrame::builder(schema);
        b.push_named(&[("loc", "L1")], 100.0 * scale, 0.0)
            .expect("valid row");
        b.push_named(&[("loc", "L2")], 200.0 * scale, 0.0)
            .expect("valid row");
        b.push_named(&[("loc", "L3")], 300.0 * scale, 0.0)
            .expect("valid row");
        b.build()
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            min_samples: 10,
            residual_window: 32,
            ..DetectorConfig::default()
        }
    }

    #[test]
    fn warmup_never_fires_before_min_samples() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        // Even a gigantic swing inside warmup must not trigger.
        for i in 0..config().min_samples {
            let scale = if i % 2 == 0 { 1.0 } else { 100.0 };
            let det = d.observe(&frame(&s, scale));
            assert!(!det.triggered, "triggered during warmup at step {i}");
            assert_eq!(det.state, DetectorState::Warmup);
            assert_eq!(det.severity, None);
        }
    }

    #[test]
    fn steady_traffic_then_drop_triggers_once_with_severity() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..50 {
            let det = d.observe(&frame(&s, 1.0));
            assert!(!det.triggered);
        }
        assert_eq!(d.state(), DetectorState::Steady);
        // 80% drop: rising edge, critical, leaves scored.
        let det = d.observe(&frame(&s, 0.2));
        assert!(det.triggered);
        assert_eq!(det.state, DetectorState::Triggered);
        assert_eq!(det.severity, Some(Severity::Critical));
        assert!(det.score > 5.0);
        assert!(det.deviation > 0.5);
        assert_eq!(det.row_labels(), vec![true, true, true]);
        assert_eq!(det.leaf_scores.len(), 3);
        // Second anomalous frame: still triggered, but no new rising edge.
        let det = d.observe(&frame(&s, 0.2));
        assert!(!det.triggered);
        assert_eq!(det.state, DetectorState::Triggered);
        // Recovery: back to steady, then a later episode re-triggers.
        for _ in 0..5 {
            let det = d.observe(&frame(&s, 1.0));
            assert!(!det.triggered);
        }
        assert_eq!(d.state(), DetectorState::Steady);
        let det = d.observe(&frame(&s, 0.3));
        assert!(det.triggered, "second episode must re-trigger");
    }

    #[test]
    fn held_baseline_survives_a_sustained_incident() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..50 {
            d.observe(&frame(&s, 1.0));
        }
        // 20 anomalous frames (under max_triggered): baseline must not
        // drift toward the outage, so recovery is instant.
        for _ in 0..20 {
            d.observe(&frame(&s, 0.2));
        }
        let det = d.observe(&frame(&s, 1.0));
        assert_eq!(det.state, DetectorState::Steady);
        assert!(det.score < 3.0, "recovered frame scored {}", det.score);
    }

    #[test]
    fn sustained_shift_is_absorbed_after_max_triggered() {
        let s = schema();
        let cfg = DetectorConfig {
            max_triggered: 8,
            ..config()
        };
        let mut d = FrameDetector::new(cfg).expect("valid config");
        for _ in 0..50 {
            d.observe(&frame(&s, 1.0));
        }
        // A permanent level shift: after max_triggered frames the detector
        // must stop holding and eventually return to steady.
        let mut steady_again = false;
        for _ in 0..200 {
            let det = d.observe(&frame(&s, 0.4));
            if det.state == DetectorState::Steady {
                steady_again = true;
            }
        }
        assert!(steady_again, "level shift never became the new normal");
    }

    #[test]
    fn cold_state_never_panics_and_rewars_silently() {
        let s = schema();
        // Simulates a respawned shard worker: brand-new detector fed an
        // anomalous stream mid-incident.
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..5 {
            let det = d.observe(&frame(&s, 0.2));
            assert!(!det.triggered);
            assert_eq!(det.state, DetectorState::Warmup);
        }
        // It warms against whatever it sees and only then may alarm.
        for _ in 0..30 {
            d.observe(&frame(&s, 0.2));
        }
        assert_eq!(d.state(), DetectorState::Steady);
    }

    #[test]
    fn empty_frames_are_inert() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..30 {
            d.observe(&frame(&s, 1.0));
        }
        let before_state = d.state();
        let det = d.observe(&LeafFrame::builder(&s).build());
        assert!(!det.triggered);
        assert_eq!(det.state, before_state);
        assert!(det.row_scores.is_empty());
    }

    #[test]
    fn new_leaves_mid_stream_warm_independently() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        let partial = |scale: f64| {
            let mut b = LeafFrame::builder(&s);
            b.push_named(&[("loc", "L1")], 100.0 * scale, 0.0)
                .expect("valid row");
            b.push_named(&[("loc", "L2")], 200.0 * scale, 0.0)
                .expect("valid row");
            b.build()
        };
        for _ in 0..40 {
            d.observe(&partial(1.0));
        }
        assert_eq!(d.leaf_count(), 2);
        // A small third leaf appears (≈1% of the total, below
        // min_deviation): its row must score None (cold) without
        // disturbing the frame-level state.
        let mut b = LeafFrame::builder(&s);
        b.push_named(&[("loc", "L1")], 100.0, 0.0)
            .expect("valid row");
        b.push_named(&[("loc", "L2")], 200.0, 0.0)
            .expect("valid row");
        b.push_named(&[("loc", "L3")], 3.0, 0.0).expect("valid row");
        let det = d.observe(&b.build());
        assert_eq!(det.row_scores[2], None);
        assert!(!det.triggered);
        assert_eq!(d.leaf_count(), 3);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let s = schema();
        let cfg = config();
        let mut d = FrameDetector::new(cfg).expect("valid config");
        // Warm up, then land the snapshot mid-excursion so trigger/hold
        // state is non-trivial.
        for i in 0..40 {
            let scale = 1.0 + 0.01 * ((i % 5) as f64);
            d.observe(&frame(&s, scale));
        }
        d.observe(&frame(&s, 0.2));
        assert_eq!(d.state(), DetectorState::Triggered);

        let snap = d.snapshot();
        let mut restored = FrameDetector::restore(cfg, &snap).expect("matching config restores");
        assert_eq!(restored.state(), DetectorState::Triggered);
        assert_eq!(restored.steps(), d.steps());
        assert_eq!(restored.leaf_count(), d.leaf_count());

        // Feed both the same continuation — recovery, steady, a second
        // episode — and require bit-identical detections throughout.
        let scales = [0.2, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.3, 0.3, 1.0];
        for scale in scales {
            let f = frame(&s, scale);
            let a = d.observe(&f);
            let b = restored.observe(&f);
            assert_eq!(a.step, b.step);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.deviation.to_bits(), b.deviation.to_bits());
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.triggered, b.triggered);
            assert_eq!(a.state, b.state);
            assert_eq!(
                a.row_scores
                    .iter()
                    .map(|z| z.map(f64::to_bits))
                    .collect::<Vec<_>>(),
                b.row_scores
                    .iter()
                    .map(|z| z.map(f64::to_bits))
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.leaf_scores, b.leaf_scores);
        }
    }

    #[test]
    fn snapshot_leaves_are_sorted_for_determinism() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..5 {
            d.observe(&frame(&s, 1.0));
        }
        let snap = d.snapshot();
        let keys: Vec<_> = snap.leaves.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn restore_rejects_a_reconfigured_detector() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..20 {
            d.observe(&frame(&s, 1.0));
        }
        let snap = d.snapshot();
        // Seasonality flipped on: every forecaster shape mismatches.
        let seasonal = DetectorConfig {
            seasonal_period: 12,
            ..config()
        };
        assert!(FrameDetector::restore(seasonal, &snap).is_none());
        // Residual window shrank below the held samples.
        let shrunk = DetectorConfig {
            min_samples: 2,
            residual_window: 2,
            ..config()
        };
        assert!(FrameDetector::restore(shrunk, &snap).is_none());
        // Invalid config never restores.
        let invalid = DetectorConfig {
            min_samples: 0,
            ..config()
        };
        assert!(FrameDetector::restore(invalid, &snap).is_none());
    }

    #[test]
    fn detector_state_parse_round_trips() {
        for state in [
            DetectorState::Warmup,
            DetectorState::Steady,
            DetectorState::Triggered,
        ] {
            assert_eq!(DetectorState::parse(state.as_str()), Some(state));
        }
        assert_eq!(DetectorState::parse("bogus"), None);
    }

    #[test]
    fn scores_are_finite_on_zero_variance_streams() {
        let s = schema();
        let mut d = FrameDetector::new(config()).expect("valid config");
        for _ in 0..100 {
            let det = d.observe(&frame(&s, 1.0));
            assert!(det.score.is_finite());
            assert!(det.deviation.is_finite());
            for z in det.row_scores.iter().flatten() {
                assert!(z.is_finite());
            }
        }
    }
}
