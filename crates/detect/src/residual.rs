//! Bounded ring of forecast residuals with `O(1)` mean/σ reads.

use std::collections::VecDeque;

/// A fixed-capacity ring of recent residuals with running sum and
/// sum-of-squares, so mean and standard deviation are `O(1)` per read and
/// pushes are `O(1)` amortized.
///
/// Incrementally subtracting evicted values from the running sums
/// accumulates floating-point drift over very long streams, so the sums
/// are rebuilt exactly from the buffer once every `4 × capacity` pushes —
/// an `O(capacity)` pass amortized to `O(1)` per push.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualWindow {
    buf: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    sumsq: f64,
    pushes_since_rebuild: usize,
}

impl ResidualWindow {
    /// Create with the ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ResidualWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            sumsq: 0.0,
            pushes_since_rebuild: 0,
        }
    }

    /// Append one residual, evicting the oldest when full. Non-finite
    /// residuals are ignored — they would poison the running sums forever.
    pub fn push(&mut self, r: f64) {
        if !r.is_finite() {
            return;
        }
        if self.buf.len() == self.capacity {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
                self.sumsq -= old * old;
            }
        }
        self.buf.push_back(r);
        self.sum += r;
        self.sumsq += r * r;
        self.pushes_since_rebuild += 1;
        if self.pushes_since_rebuild >= 4 * self.capacity {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.sum = self.buf.iter().sum();
        self.sumsq = self.buf.iter().map(|r| r * r).sum();
        self.pushes_since_rebuild = 0;
    }

    /// Number of residuals currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Mean of the held residuals; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Population standard deviation of the held residuals; `0.0` when
    /// empty. Clamped at zero against floating-point cancellation.
    pub fn std(&self) -> f64 {
        let n = self.buf.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.sum / n as f64;
        let var = (self.sumsq / n as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Capture the internal state verbatim for checkpointing.
    ///
    /// The running sums are recorded exactly as held, *not* recomputed
    /// from the buffer: the incremental sums carry floating-point drift
    /// relative to a fresh rebuild, and a restore that recomputed them
    /// would diverge bit-for-bit from the uninterrupted process.
    pub fn snapshot(&self) -> ResidualSnapshot {
        ResidualSnapshot {
            buf: self.buf.iter().copied().collect(),
            sum: self.sum,
            sumsq: self.sumsq,
            pushes_since_rebuild: self.pushes_since_rebuild,
        }
    }

    /// Rebuild a window from a snapshot so that its future behaviour is
    /// bit-identical to the window the snapshot was taken from. Returns
    /// `None` when the snapshot cannot fit `capacity` (the configured
    /// window shrank since the snapshot was written).
    pub fn restore(capacity: usize, snap: &ResidualSnapshot) -> Option<Self> {
        if capacity == 0 || snap.buf.len() > capacity {
            return None;
        }
        let mut buf = VecDeque::with_capacity(capacity);
        buf.extend(snap.buf.iter().copied());
        Some(ResidualWindow {
            buf,
            capacity,
            sum: snap.sum,
            sumsq: snap.sumsq,
            pushes_since_rebuild: snap.pushes_since_rebuild,
        })
    }
}

/// A verbatim capture of a [`ResidualWindow`]'s state, produced by
/// [`ResidualWindow::snapshot`] and consumed by
/// [`ResidualWindow::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSnapshot {
    /// Ring contents, oldest first.
    pub buf: Vec<f64>,
    /// Running sum, exactly as held at snapshot time.
    pub sum: f64,
    /// Running sum of squares, exactly as held at snapshot time.
    pub sumsq: f64,
    /// Pushes since the last exact rebuild.
    pub pushes_since_rebuild: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_match_direct_computation() {
        let mut w = ResidualWindow::new(8);
        let xs = [1.0, -2.0, 0.5, 3.0, -1.5];
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.std() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn eviction_keeps_only_the_window() {
        let mut w = ResidualWindow::new(3);
        for x in [100.0, 1.0, 2.0, 3.0] {
            w.push(x);
        }
        assert_eq!(w.len(), 3);
        assert!((w.mean() - 2.0).abs() < 1e-12); // the 100 was evicted
    }

    #[test]
    fn zero_variance_series_reports_zero_std() {
        let mut w = ResidualWindow::new(16);
        for _ in 0..100 {
            w.push(5.0);
        }
        assert!((w.mean() - 5.0).abs() < 1e-9);
        assert!(w.std().abs() < 1e-9);
        assert!(w.std() >= 0.0); // never NaN or negative from cancellation
    }

    #[test]
    fn non_finite_residuals_are_dropped() {
        let mut w = ResidualWindow::new(4);
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        assert!(w.is_empty());
        w.push(1.0);
        assert_eq!(w.len(), 1);
        assert!(w.mean().is_finite());
    }

    #[test]
    fn long_stream_stays_accurate_across_rebuilds() {
        let mut w = ResidualWindow::new(10);
        // Tens of rebuild cycles with a known tail.
        for i in 0..1000 {
            w.push((i % 7) as f64);
        }
        let tail: Vec<f64> = (990..1000).map(|i| (i % 7) as f64).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        ResidualWindow::new(0);
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let mut w = ResidualWindow::new(10);
        // Land mid-way between rebuilds so the drifted sums differ from a
        // fresh recomputation.
        for i in 0..37 {
            w.push((i as f64) * 0.1 - 1.3);
        }
        let snap = w.snapshot();
        let mut restored = ResidualWindow::restore(10, &snap).expect("snapshot fits");
        assert_eq!(w, restored);
        // Continue both and compare the exact bits of every statistic.
        for i in 0..100 {
            let x = (i as f64).sin();
            w.push(x);
            restored.push(x);
            assert_eq!(w.mean().to_bits(), restored.mean().to_bits());
            assert_eq!(w.std().to_bits(), restored.std().to_bits());
        }
        assert_eq!(w, restored);
    }

    #[test]
    fn restore_rejects_a_shrunk_capacity() {
        let mut w = ResidualWindow::new(8);
        for i in 0..8 {
            w.push(i as f64);
        }
        let snap = w.snapshot();
        assert!(ResidualWindow::restore(4, &snap).is_none());
        assert!(ResidualWindow::restore(0, &snap).is_none());
        assert!(ResidualWindow::restore(16, &snap).is_some());
    }
}
