//! Incremental forecaster state: `O(1)` memory and `O(1)` update per
//! observation, in contrast to `timeseries::Forecaster` implementations
//! which re-fit over the full history slice on every call.

use crate::config::DetectorConfig;

/// Incremental exponentially weighted moving average.
///
/// `level ← α·x + (1−α)·level`; the one-step-ahead forecast is the current
/// level. Unseeded until the first update.
#[derive(Debug, Clone, PartialEq)]
pub struct IncEwma {
    alpha: f64,
    level: Option<f64>,
}

impl IncEwma {
    /// Create with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        IncEwma { alpha, level: None }
    }

    /// One-step-ahead forecast; `None` until the first update.
    pub fn forecast_next(&self) -> Option<f64> {
        self.level
    }

    /// Absorb one observation.
    pub fn update(&mut self, x: f64) {
        self.level = Some(match self.level {
            None => x,
            Some(level) => self.alpha * x + (1.0 - self.alpha) * level,
        });
    }
}

/// Incremental additive Holt-Winters (triple exponential smoothing).
///
/// Keeps a level, a trend, and `period` seasonal slots; each update touches
/// exactly one slot, so the per-observation cost is `O(1)` regardless of
/// how long the stream has run. Seasonal slots start at zero — the model
/// behaves like damped EWMA-with-trend until a season's worth of structure
/// accumulates, which is exactly the silent-warmup behaviour the detector
/// wants.
#[derive(Debug, Clone, PartialEq)]
pub struct IncHoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    level: Option<f64>,
    trend: f64,
    seasonal: Vec<f64>,
    /// Phase of the *next* observation.
    idx: usize,
}

impl IncHoltWinters {
    /// Create with smoothing factors for level (`alpha`), trend (`beta`)
    /// and seasonality (`gamma`), plus the season length.
    ///
    /// # Panics
    ///
    /// Panics unless all factors are in `(0, 1]` and `period > 0`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(v > 0.0 && v <= 1.0, "{name} must be in (0, 1], got {v}");
        }
        assert!(period > 0, "period must be positive");
        IncHoltWinters {
            alpha,
            beta,
            gamma,
            level: None,
            trend: 0.0,
            seasonal: vec![0.0; period],
            idx: 0,
        }
    }

    /// One-step-ahead forecast (`level + trend + seasonal[next phase]`);
    /// `None` until the first update.
    pub fn forecast_next(&self) -> Option<f64> {
        self.level
            .map(|level| level + self.trend + self.seasonal[self.idx])
    }

    /// Absorb one observation.
    pub fn update(&mut self, x: f64) {
        let s = self.seasonal[self.idx];
        match self.level {
            None => self.level = Some(x),
            Some(prev) => {
                let level = self.alpha * (x - s) + (1.0 - self.alpha) * (prev + self.trend);
                self.trend = self.beta * (level - prev) + (1.0 - self.beta) * self.trend;
                self.seasonal[self.idx] = self.gamma * (x - level) + (1.0 - self.gamma) * s;
                self.level = Some(level);
            }
        }
        self.idx = (self.idx + 1) % self.seasonal.len();
    }
}

/// The per-leaf forecaster the detector actually runs: EWMA when no
/// seasonal period is configured, additive Holt-Winters otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum LeafForecaster {
    /// Plain incremental EWMA (no seasonality).
    Ewma(IncEwma),
    /// Incremental additive Holt-Winters.
    HoltWinters(IncHoltWinters),
}

impl LeafForecaster {
    /// Build the forecaster a [`DetectorConfig`] asks for.
    pub fn from_config(config: &DetectorConfig) -> Self {
        if config.seasonal_period == 0 {
            LeafForecaster::Ewma(IncEwma::new(config.ewma_alpha))
        } else {
            LeafForecaster::HoltWinters(IncHoltWinters::new(
                config.ewma_alpha,
                config.hw_beta,
                config.hw_gamma,
                config.seasonal_period,
            ))
        }
    }

    /// One-step-ahead forecast; `None` until the first update.
    pub fn forecast_next(&self) -> Option<f64> {
        match self {
            LeafForecaster::Ewma(f) => f.forecast_next(),
            LeafForecaster::HoltWinters(f) => f.forecast_next(),
        }
    }

    /// Absorb one observation.
    pub fn update(&mut self, x: f64) {
        match self {
            LeafForecaster::Ewma(f) => f.update(x),
            LeafForecaster::HoltWinters(f) => f.update(x),
        }
    }

    /// Hold the baseline: absorb the model's own forecast instead of an
    /// anomalous observation, so a sustained incident does not drag the
    /// notion of normal toward the outage.
    pub fn hold(&mut self) {
        if let Some(f) = self.forecast_next() {
            self.update(f);
        }
    }

    /// Capture the model state verbatim for checkpointing. Smoothing
    /// factors are not recorded — they come back from the
    /// [`DetectorConfig`] at restore time, which also guards against
    /// restoring into a reconfigured detector.
    pub fn snapshot(&self) -> ForecasterSnapshot {
        match self {
            LeafForecaster::Ewma(f) => ForecasterSnapshot::Ewma { level: f.level },
            LeafForecaster::HoltWinters(f) => ForecasterSnapshot::HoltWinters {
                level: f.level,
                trend: f.trend,
                seasonal: f.seasonal.clone(),
                idx: f.idx,
            },
        }
    }

    /// Rebuild a forecaster from a snapshot under `config`. Returns
    /// `None` when the snapshot's shape no longer matches the config
    /// (model kind flipped, seasonal period changed) — the caller falls
    /// back to a cold start.
    pub fn restore(config: &DetectorConfig, snap: &ForecasterSnapshot) -> Option<Self> {
        match snap {
            ForecasterSnapshot::Ewma { level } => {
                if config.seasonal_period != 0 {
                    return None;
                }
                let mut f = IncEwma::new(config.ewma_alpha);
                f.level = *level;
                Some(LeafForecaster::Ewma(f))
            }
            ForecasterSnapshot::HoltWinters {
                level,
                trend,
                seasonal,
                idx,
            } => {
                if config.seasonal_period == 0
                    || seasonal.len() != config.seasonal_period
                    || *idx >= seasonal.len()
                {
                    return None;
                }
                let mut f = IncHoltWinters::new(
                    config.ewma_alpha,
                    config.hw_beta,
                    config.hw_gamma,
                    config.seasonal_period,
                );
                f.level = *level;
                f.trend = *trend;
                f.seasonal = seasonal.clone();
                f.idx = *idx;
                Some(LeafForecaster::HoltWinters(f))
            }
        }
    }
}

/// A verbatim capture of one [`LeafForecaster`]'s model state, produced
/// by [`LeafForecaster::snapshot`] and consumed by
/// [`LeafForecaster::restore`].
#[derive(Debug, Clone, PartialEq)]
pub enum ForecasterSnapshot {
    /// Plain EWMA state.
    Ewma {
        /// Current level; `None` while unseeded.
        level: Option<f64>,
    },
    /// Additive Holt-Winters state.
    HoltWinters {
        /// Current level; `None` while unseeded.
        level: Option<f64>,
        /// Current trend component.
        trend: f64,
        /// One seasonal slot per phase of the period.
        seasonal: Vec<f64>,
        /// Phase of the next observation.
        idx: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_matches_hand_computed_values() {
        // α = 0.5 over [10, 20, 14]:
        //   level₀ = 10
        //   level₁ = 0.5·20 + 0.5·10 = 15
        //   level₂ = 0.5·14 + 0.5·15 = 14.5
        let mut f = IncEwma::new(0.5);
        assert_eq!(f.forecast_next(), None);
        f.update(10.0);
        assert_eq!(f.forecast_next(), Some(10.0));
        f.update(20.0);
        assert_eq!(f.forecast_next(), Some(15.0));
        f.update(14.0);
        assert_eq!(f.forecast_next(), Some(14.5));
    }

    #[test]
    fn holt_winters_matches_hand_computed_values() {
        // α = 0.5, β = 0.5, γ = 0.5, period 2, inputs [10, 14, 12].
        //   t=0: seed level = 10, trend = 0, seasonal = [0, 0], idx → 1
        //   t=1 (x=14, s=seasonal[1]=0):
        //     level  = 0.5·(14−0) + 0.5·(10+0)   = 12
        //     trend  = 0.5·(12−10) + 0.5·0       = 1
        //     s[1]   = 0.5·(14−12) + 0.5·0       = 1
        //     idx → 0; forecast = 12 + 1 + s[0]=0 = 13
        //   t=2 (x=12, s=seasonal[0]=0):
        //     level  = 0.5·(12−0) + 0.5·(12+1)   = 12.5
        //     trend  = 0.5·(12.5−12) + 0.5·1     = 0.75
        //     s[0]   = 0.5·(12−12.5) + 0.5·0     = −0.25
        //     idx → 1; forecast = 12.5 + 0.75 + s[1]=1 = 14.25
        let mut f = IncHoltWinters::new(0.5, 0.5, 0.5, 2);
        assert_eq!(f.forecast_next(), None);
        f.update(10.0);
        assert_eq!(f.forecast_next(), Some(10.0));
        f.update(14.0);
        assert_eq!(f.forecast_next(), Some(13.0));
        f.update(12.0);
        assert_eq!(f.forecast_next(), Some(14.25));
    }

    #[test]
    fn both_are_nan_free_on_constant_series() {
        let mut ewma = IncEwma::new(0.3);
        let mut hw = IncHoltWinters::new(0.3, 0.1, 0.3, 7);
        for _ in 0..500 {
            ewma.update(42.0);
            hw.update(42.0);
            assert!(ewma.forecast_next().unwrap().is_finite());
            assert!(hw.forecast_next().unwrap().is_finite());
        }
        assert!((ewma.forecast_next().unwrap() - 42.0).abs() < 1e-9);
        assert!((hw.forecast_next().unwrap() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn both_are_nan_free_on_zero_series() {
        let mut ewma = IncEwma::new(0.5);
        let mut hw = IncHoltWinters::new(0.5, 0.5, 0.5, 3);
        for _ in 0..100 {
            ewma.update(0.0);
            hw.update(0.0);
        }
        assert_eq!(ewma.forecast_next(), Some(0.0));
        assert_eq!(hw.forecast_next(), Some(0.0));
    }

    #[test]
    fn holt_winters_learns_a_periodic_pattern() {
        let pattern = [10.0, 30.0, 20.0, 40.0];
        let mut f = IncHoltWinters::new(0.3, 0.05, 0.4, pattern.len());
        for t in 0..400 {
            f.update(pattern[t % pattern.len()]);
        }
        // After 100 seasons the next forecast must be close to the next
        // phase value (t = 400 → phase 0 → 10.0).
        let fc = f.forecast_next().unwrap();
        assert!((fc - 10.0).abs() < 1.0, "forecast {fc} too far from 10");
    }

    #[test]
    fn hold_keeps_the_baseline_fixed() {
        let mut f = LeafForecaster::Ewma(IncEwma::new(0.5));
        f.update(100.0);
        let before = f.forecast_next();
        for _ in 0..10 {
            f.hold();
        }
        assert_eq!(f.forecast_next(), before);
    }

    #[test]
    fn from_config_picks_the_right_model() {
        let ewma_config = DetectorConfig {
            seasonal_period: 0,
            ..DetectorConfig::default()
        };
        assert!(matches!(
            LeafForecaster::from_config(&ewma_config),
            LeafForecaster::Ewma(_)
        ));
        let hw_config = DetectorConfig {
            seasonal_period: 12,
            ..DetectorConfig::default()
        };
        assert!(matches!(
            LeafForecaster::from_config(&hw_config),
            LeafForecaster::HoltWinters(_)
        ));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        IncEwma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn holt_winters_rejects_zero_period() {
        IncHoltWinters::new(0.5, 0.5, 0.5, 0);
    }

    #[test]
    fn snapshot_restore_round_trips_both_models() {
        let ewma_config = DetectorConfig {
            seasonal_period: 0,
            ..DetectorConfig::default()
        };
        let hw_config = DetectorConfig {
            seasonal_period: 4,
            ..DetectorConfig::default()
        };
        for config in [ewma_config, hw_config] {
            let mut f = LeafForecaster::from_config(&config);
            for i in 0..23 {
                f.update(10.0 + (i as f64).cos() * 3.0);
            }
            let snap = f.snapshot();
            let mut restored =
                LeafForecaster::restore(&config, &snap).expect("matching config restores");
            for i in 0..50 {
                let x = 12.0 + (i as f64).sin();
                f.update(x);
                restored.update(x);
                assert_eq!(
                    f.forecast_next().map(f64::to_bits),
                    restored.forecast_next().map(f64::to_bits),
                    "forecasts diverged after restore"
                );
            }
        }
    }

    #[test]
    fn restore_rejects_a_mismatched_shape() {
        let ewma_config = DetectorConfig {
            seasonal_period: 0,
            ..DetectorConfig::default()
        };
        let hw_config = DetectorConfig {
            seasonal_period: 4,
            ..DetectorConfig::default()
        };
        let ewma_snap = LeafForecaster::from_config(&ewma_config).snapshot();
        let hw_snap = LeafForecaster::from_config(&hw_config).snapshot();
        // Kind flipped.
        assert!(LeafForecaster::restore(&hw_config, &ewma_snap).is_none());
        assert!(LeafForecaster::restore(&ewma_config, &hw_snap).is_none());
        // Period changed.
        let other_period = DetectorConfig {
            seasonal_period: 7,
            ..DetectorConfig::default()
        };
        assert!(LeafForecaster::restore(&other_period, &hw_snap).is_none());
    }

    #[test]
    fn unseeded_snapshot_restores_unseeded() {
        let config = DetectorConfig::default();
        let f = LeafForecaster::from_config(&config);
        let snap = f.snapshot();
        let restored = LeafForecaster::restore(&config, &snap).expect("restores");
        assert_eq!(restored.forecast_next(), None);
    }
}
