use std::fmt;

/// Tunables of the streaming detector.
///
/// The σ severity tiers themselves (3/4/5) are fixed by convention — what
/// is configurable is when a detection *fires* (`sigma_threshold`,
/// `min_deviation`), how the per-leaf baseline forecasts
/// (`ewma_alpha` / `seasonal_period`), and how much evidence must
/// accumulate before the detector is allowed to speak (`min_samples`,
/// `residual_window`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Residual samples required before any detection may fire. Also the
    /// warmup length after a cold start (process restart, respawned shard
    /// worker): the detector re-warms silently instead of alarming on an
    /// unseeded baseline.
    pub min_samples: usize,
    /// EWMA smoothing factor in `(0, 1]` for the level component (both the
    /// plain EWMA forecaster and the Holt-Winters level).
    pub ewma_alpha: f64,
    /// Season length in observations; `0` disables seasonality and every
    /// leaf runs a plain incremental EWMA. With a period `p > 0` each leaf
    /// runs incremental additive Holt-Winters with `p` seasonal slots.
    pub seasonal_period: usize,
    /// Holt-Winters trend smoothing factor in `(0, 1]`. Ignored when
    /// `seasonal_period == 0`.
    pub hw_beta: f64,
    /// Holt-Winters seasonal smoothing factor in `(0, 1]`. Ignored when
    /// `seasonal_period == 0`.
    pub hw_gamma: f64,
    /// Capacity of the per-leaf residual ring (recent normal-operation
    /// residuals used to estimate the residual mean and σ).
    pub residual_window: usize,
    /// Aggregate σ-score at which a detection fires (the paper's alarm on
    /// the overall KPI). Severity tiers above it are fixed: 3–4σ `warn`,
    /// 4–5σ `high`, >5σ `critical`.
    pub sigma_threshold: f64,
    /// Minimum relative deviation `|f − v| / (f + ε)` of the overall KPI
    /// for a detection to fire. On a near-noiseless series σ is tiny and a
    /// pure σ-gate would alarm on measurement jitter; this floor keeps
    /// detections material.
    pub min_deviation: f64,
    /// Consecutive triggered frames after which the detector gives up
    /// holding the baseline and absorbs the new level (a sustained shift
    /// becomes the new normal instead of alarming forever).
    pub max_triggered: usize,
    /// Relative σ floor: the effective residual σ is at least this
    /// fraction of the forecast magnitude, so σ-scores stay finite and
    /// sober on (near-)constant series.
    pub sigma_floor_ratio: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_samples: 30,
            ewma_alpha: 0.3,
            seasonal_period: 0,
            hw_beta: 0.05,
            hw_gamma: 0.3,
            residual_window: 240,
            sigma_threshold: 4.0,
            min_deviation: 0.02,
            max_triggered: 60,
            sigma_floor_ratio: 0.001,
        }
    }
}

impl DetectorConfig {
    /// Check every field; returns the first violation.
    pub fn validate(&self) -> Result<(), DetectorConfigError> {
        if self.min_samples == 0 {
            return Err(DetectorConfigError::ZeroMinSamples);
        }
        for (name, v) in [("ewma_alpha", self.ewma_alpha)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(DetectorConfigError::FactorOutOfRange { name, value: v });
            }
        }
        if self.seasonal_period > 0 {
            for (name, v) in [("hw_beta", self.hw_beta), ("hw_gamma", self.hw_gamma)] {
                if !(v > 0.0 && v <= 1.0) {
                    return Err(DetectorConfigError::FactorOutOfRange { name, value: v });
                }
            }
        }
        if self.residual_window < self.min_samples {
            return Err(DetectorConfigError::WindowSmallerThanWarmup {
                window: self.residual_window,
                min_samples: self.min_samples,
            });
        }
        if !(self.sigma_threshold.is_finite() && self.sigma_threshold > 0.0) {
            return Err(DetectorConfigError::BadThreshold {
                value: self.sigma_threshold,
            });
        }
        if !(self.min_deviation.is_finite() && self.min_deviation >= 0.0) {
            return Err(DetectorConfigError::BadMinDeviation {
                value: self.min_deviation,
            });
        }
        if self.max_triggered == 0 {
            return Err(DetectorConfigError::ZeroMaxTriggered);
        }
        if !(self.sigma_floor_ratio.is_finite() && self.sigma_floor_ratio >= 0.0) {
            return Err(DetectorConfigError::BadSigmaFloor {
                value: self.sigma_floor_ratio,
            });
        }
        Ok(())
    }
}

/// A rejected [`DetectorConfig`] field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorConfigError {
    /// `min_samples` must be positive: a zero warmup would let the first
    /// observation alarm against an empty baseline.
    ZeroMinSamples,
    /// A smoothing factor left `(0, 1]`.
    FactorOutOfRange {
        /// Which factor.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The residual ring cannot hold the warmup's worth of samples.
    WindowSmallerThanWarmup {
        /// Configured ring capacity.
        window: usize,
        /// Configured warmup.
        min_samples: usize,
    },
    /// `sigma_threshold` must be a positive finite number.
    BadThreshold {
        /// The offending value.
        value: f64,
    },
    /// `min_deviation` must be a non-negative finite number.
    BadMinDeviation {
        /// The offending value.
        value: f64,
    },
    /// `max_triggered` must be positive.
    ZeroMaxTriggered,
    /// `sigma_floor_ratio` must be a non-negative finite number.
    BadSigmaFloor {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DetectorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorConfigError::ZeroMinSamples => {
                write!(f, "min_samples must be positive")
            }
            DetectorConfigError::FactorOutOfRange { name, value } => {
                write!(f, "{name} must be in (0, 1], got {value}")
            }
            DetectorConfigError::WindowSmallerThanWarmup {
                window,
                min_samples,
            } => write!(
                f,
                "residual_window ({window}) must be >= min_samples ({min_samples})"
            ),
            DetectorConfigError::BadThreshold { value } => {
                write!(
                    f,
                    "sigma_threshold must be positive and finite, got {value}"
                )
            }
            DetectorConfigError::BadMinDeviation { value } => write!(
                f,
                "min_deviation must be non-negative and finite, got {value}"
            ),
            DetectorConfigError::ZeroMaxTriggered => {
                write!(f, "max_triggered must be positive")
            }
            DetectorConfigError::BadSigmaFloor { value } => write!(
                f,
                "sigma_floor_ratio must be non-negative and finite, got {value}"
            ),
        }
    }
}

impl std::error::Error for DetectorConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(DetectorConfig::default().validate(), Ok(()));
    }

    #[test]
    fn each_field_is_checked() {
        let ok = DetectorConfig::default();
        let cases: Vec<(DetectorConfig, DetectorConfigError)> = vec![
            (
                DetectorConfig {
                    min_samples: 0,
                    ..ok
                },
                DetectorConfigError::ZeroMinSamples,
            ),
            (
                DetectorConfig {
                    ewma_alpha: 1.5,
                    ..ok
                },
                DetectorConfigError::FactorOutOfRange {
                    name: "ewma_alpha",
                    value: 1.5,
                },
            ),
            (
                DetectorConfig {
                    seasonal_period: 4,
                    hw_beta: 0.0,
                    ..ok
                },
                DetectorConfigError::FactorOutOfRange {
                    name: "hw_beta",
                    value: 0.0,
                },
            ),
            (
                DetectorConfig {
                    residual_window: 10,
                    min_samples: 20,
                    ..ok
                },
                DetectorConfigError::WindowSmallerThanWarmup {
                    window: 10,
                    min_samples: 20,
                },
            ),
            (
                DetectorConfig {
                    sigma_threshold: f64::NAN,
                    ..ok
                },
                DetectorConfigError::BadThreshold { value: f64::NAN },
            ),
            (
                DetectorConfig {
                    min_deviation: -0.1,
                    ..ok
                },
                DetectorConfigError::BadMinDeviation { value: -0.1 },
            ),
            (
                DetectorConfig {
                    max_triggered: 0,
                    ..ok
                },
                DetectorConfigError::ZeroMaxTriggered,
            ),
        ];
        for (config, want) in cases {
            let got = config.validate().unwrap_err();
            // NaN != NaN: compare the discriminant via Display instead.
            assert_eq!(got.to_string(), want.to_string());
        }
    }

    #[test]
    fn hw_factors_ignored_without_seasonality() {
        let config = DetectorConfig {
            seasonal_period: 0,
            hw_beta: 0.0,
            hw_gamma: 9.0,
            ..DetectorConfig::default()
        };
        assert_eq!(config.validate(), Ok(()));
    }

    #[test]
    fn errors_render() {
        let e = DetectorConfigError::WindowSmallerThanWarmup {
            window: 5,
            min_samples: 9,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("9"));
    }
}
