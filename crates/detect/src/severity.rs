//! σ-tiered severity of a detection.

use std::fmt;

/// How far outside normal a detection landed, in residual σ units.
///
/// The tiers are fixed: `warn` at 3–4σ, `high` at 4–5σ, `critical` above
/// 5σ. Anything below 3σ is not a detection at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// 3–4σ: worth a look, not a page.
    Warn,
    /// 4–5σ: actionable.
    High,
    /// >5σ: page.
    Critical,
}

impl Severity {
    /// Classify a σ-score; `None` below the 3σ floor (or non-finite).
    pub fn from_sigma(z: f64) -> Option<Severity> {
        if !z.is_finite() || z < 3.0 {
            None
        } else if z < 4.0 {
            Some(Severity::Warn)
        } else if z < 5.0 {
            Some(Severity::High)
        } else {
            Some(Severity::Critical)
        }
    }

    /// Stable lowercase name, used as the `severity` metric label and in
    /// incident JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }

    /// All severities, mildest first — the fixed label set of the
    /// `rapd_detections_total{severity}` metric family.
    pub fn all() -> [Severity; 3] {
        [Severity::Warn, Severity::High, Severity::Critical]
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_follow_the_sigma_bands() {
        assert_eq!(Severity::from_sigma(2.99), None);
        assert_eq!(Severity::from_sigma(3.0), Some(Severity::Warn));
        assert_eq!(Severity::from_sigma(3.99), Some(Severity::Warn));
        assert_eq!(Severity::from_sigma(4.0), Some(Severity::High));
        assert_eq!(Severity::from_sigma(4.99), Some(Severity::High));
        assert_eq!(Severity::from_sigma(5.0), Some(Severity::Critical));
        assert_eq!(Severity::from_sigma(50.0), Some(Severity::Critical));
    }

    #[test]
    fn non_finite_scores_are_never_a_detection() {
        assert_eq!(Severity::from_sigma(f64::NAN), None);
        assert_eq!(Severity::from_sigma(f64::INFINITY), None);
        assert_eq!(Severity::from_sigma(f64::NEG_INFINITY), None);
    }

    #[test]
    fn ordering_matches_urgency() {
        assert!(Severity::Warn < Severity::High);
        assert!(Severity::High < Severity::Critical);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Severity::all().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["warn", "high", "critical"]);
        assert_eq!(Severity::Critical.to_string(), "critical");
    }
}
