use mdkpi::Combination;

/// Micro-averaged precision and recall of predicted RAP sets against ground
/// truth, summed over cases: `(Σ TP / Σ |pred|, Σ TP / Σ |truth|)`.
///
/// A prediction is a true positive iff it *exactly equals* a ground-truth
/// combination (the protocol used by HotSpot/Squeeze/RAPMiner — no partial
/// credit for ancestors or descendants).
///
/// Returns `(0, 0)` when both sides are empty.
pub fn precision_recall(cases: &[(Vec<Combination>, Vec<Combination>)]) -> (f64, f64) {
    let mut tp = 0usize;
    let mut pred_total = 0usize;
    let mut truth_total = 0usize;
    for (pred, truth) in cases {
        pred_total += pred.len();
        truth_total += truth.len();
        tp += pred.iter().filter(|p| truth.contains(p)).count();
    }
    let precision = if pred_total == 0 {
        0.0
    } else {
        tp as f64 / pred_total as f64
    };
    let recall = if truth_total == 0 {
        0.0
    } else {
        tp as f64 / truth_total as f64
    };
    (precision, recall)
}

/// The paper's Eq. 6 F1-score from micro-averaged precision and recall.
///
/// ```
/// use eval::f1_score;
/// assert_eq!(f1_score(1.0, 1.0), 1.0);
/// assert_eq!(f1_score(0.0, 0.0), 0.0);
/// assert!((f1_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn f1_score(precision: f64, recall: f64) -> f64 {
    if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// The paper's Eq. 7 **RC@k**: over all anomalies `t`, the fraction of
/// ground-truth RAPs appearing among the top-`k` recommendations,
///
/// ```text
/// RC@k = Σ_t Σ_{i<=k} [Pred_t^i ∈ Real_t]  /  Σ_t |Real_t|
/// ```
///
/// `cases` holds `(ranked predictions, truth)` per anomaly; only the first
/// `k` predictions of each case count.
pub fn rc_at_k(cases: &[(Vec<Combination>, Vec<Combination>)], k: usize) -> f64 {
    let mut hits = 0usize;
    let mut truth_total = 0usize;
    for (pred, truth) in cases {
        truth_total += truth.len();
        hits += pred.iter().take(k).filter(|p| truth.contains(p)).count();
    }
    if truth_total == 0 {
        0.0
    } else {
        hits as f64 / truth_total as f64
    }
}

/// Recall@k broken down by the *layer* (dimensionality) of the
/// ground-truth RAP: for each layer present in the truth sets, the fraction
/// of that layer's RAPs recovered within the top-`k` predictions, plus the
/// layer's truth count.
///
/// This quantifies per-method blind spots the paper narrates — Adtributor
/// recovering only 1-dimensional causes, RAPMiner's cost/recall varying
/// with RAP depth — and backs the §V-F remark that RAPMD contains "many
/// 3-dimensional RAPs".
pub fn rc_by_truth_layer(
    cases: &[(Vec<Combination>, Vec<Combination>)],
    k: usize,
) -> Vec<(usize, f64, usize)> {
    use std::collections::BTreeMap;
    let mut hits: BTreeMap<usize, usize> = BTreeMap::new();
    let mut totals: BTreeMap<usize, usize> = BTreeMap::new();
    for (pred, truth) in cases {
        for t in truth {
            let layer = t.layer();
            *totals.entry(layer).or_insert(0) += 1;
            if pred.iter().take(k).any(|p| p == t) {
                *hits.entry(layer).or_insert(0) += 1;
            }
        }
    }
    totals
        .into_iter()
        .map(|(layer, total)| {
            let h = hits.get(&layer).copied().unwrap_or(0);
            (layer, h as f64 / total as f64, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap()
    }

    fn c(s: &Schema, spec: &str) -> Combination {
        s.parse_combination(spec).unwrap()
    }

    #[test]
    fn exact_match_protocol() {
        let s = schema();
        let cases = vec![(
            vec![c(&s, "a=a1"), c(&s, "a=a2&b=b1")],
            vec![c(&s, "a=a1"), c(&s, "a=a3")],
        )];
        let (p, r) = precision_recall(&cases);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
        assert_eq!(f1_score(p, r), 0.5);
    }

    #[test]
    fn ancestors_get_no_partial_credit() {
        let s = schema();
        // predicting the parent of the truth is a miss
        let cases = vec![(vec![c(&s, "a=a1")], vec![c(&s, "a=a1&b=b1")])];
        let (p, r) = precision_recall(&cases);
        assert_eq!((p, r), (0.0, 0.0));
    }

    #[test]
    fn micro_average_pools_cases() {
        let s = schema();
        let cases = vec![
            (vec![c(&s, "a=a1")], vec![c(&s, "a=a1")]),
            (vec![c(&s, "a=a2")], vec![c(&s, "a=a3")]),
        ];
        let (p, r) = precision_recall(&cases);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn rc_at_k_counts_only_top_k() {
        let s = schema();
        let cases = vec![(
            vec![c(&s, "a=a2"), c(&s, "a=a1"), c(&s, "a=a3")],
            vec![c(&s, "a=a1"), c(&s, "a=a3")],
        )];
        assert_eq!(rc_at_k(&cases, 1), 0.0); // top-1 = a2 (miss)
        assert_eq!(rc_at_k(&cases, 2), 0.5); // a1 found
        assert_eq!(rc_at_k(&cases, 3), 1.0); // both found
        assert_eq!(rc_at_k(&cases, 99), 1.0);
    }

    #[test]
    fn rc_pools_over_anomalies() {
        let s = schema();
        let cases = vec![
            (vec![c(&s, "a=a1")], vec![c(&s, "a=a1")]),
            (vec![c(&s, "a=a2")], vec![c(&s, "a=a1"), c(&s, "a=a3")]),
        ];
        // 1 hit of 3 total truths
        assert!((rc_at_k(&cases, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(precision_recall(&[]), (0.0, 0.0));
        assert_eq!(rc_at_k(&[], 3), 0.0);
        let s = schema();
        let cases = vec![(Vec::new(), vec![c(&s, "a=a1")])];
        let (p, r) = precision_recall(&cases);
        assert_eq!((p, r), (0.0, 0.0));
    }

    #[test]
    fn layer_breakdown_partitions_truths() {
        let s = schema();
        // layer-1 truth recovered, layer-2 truth missed
        let cases = vec![(vec![c(&s, "a=a1")], vec![c(&s, "a=a1"), c(&s, "a=a2&b=b1")])];
        let breakdown = rc_by_truth_layer(&cases, 3);
        assert_eq!(breakdown, vec![(1, 1.0, 1), (2, 0.0, 1)]);
        // the counts sum to the total number of truths
        let total: usize = breakdown.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 2);
        assert!(rc_by_truth_layer(&[], 3).is_empty());
    }

    #[test]
    fn layer_breakdown_aggregates_to_overall_rc() {
        // the truth-count-weighted mean of per-layer recalls equals RC@k
        let s = schema();
        let cases = vec![
            (
                vec![c(&s, "a=a1"), c(&s, "a=a2&b=b1")],
                vec![c(&s, "a=a1"), c(&s, "a=a3"), c(&s, "a=a2&b=b1")],
            ),
            (vec![c(&s, "b=b2")], vec![c(&s, "b=b2")]),
        ];
        for k in 1..=3 {
            let overall = rc_at_k(&cases, k);
            let breakdown = rc_by_truth_layer(&cases, k);
            let weighted: f64 = breakdown.iter().map(|(_, rc, n)| rc * *n as f64).sum();
            let total: usize = breakdown.iter().map(|(_, _, n)| n).sum();
            assert!(
                (overall - weighted / total as f64).abs() < 1e-12,
                "k={k}: breakdown disagrees with overall"
            );
        }
    }

    #[test]
    fn layer_breakdown_respects_k() {
        let s = schema();
        let cases = vec![(
            vec![c(&s, "a=a2"), c(&s, "a=a1")], // truth at rank 2
            vec![c(&s, "a=a1")],
        )];
        assert_eq!(rc_by_truth_layer(&cases, 1)[0].1, 0.0);
        assert_eq!(rc_by_truth_layer(&cases, 2)[0].1, 1.0);
    }
}
