use std::fmt;

/// A small column-aligned table for experiment binaries: renders as GitHub
/// markdown (also readable as plain text).
///
/// # Example
///
/// ```
/// use eval::Table;
///
/// let mut t = Table::new(["method", "F1"]);
/// t.row(["rapminer", "0.98"]);
/// t.row(["squeeze", "0.95"]);
/// let text = t.to_string();
/// assert!(text.contains("| rapminer |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Write the table as CSV (header row first), for feeding plots.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_csv<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        let mut w = writer;
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(w, "{}", line(&self.headers))?;
        for row in &self.rows {
            writeln!(w, "{}", line(row))?;
        }
        Ok(())
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["method", "RC@3"]);
        t.row(["rapminer", "0.85"]).row(["fp", "0.72"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| method"));
        assert!(lines[1].starts_with("|---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_output_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with, comma", "quo\"te"]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",\"quo\"\"te\"");
    }
}
