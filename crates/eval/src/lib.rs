//! # eval — evaluation harness for anomaly localization
//!
//! Implements the paper's evaluation protocol (§V-B):
//!
//! * **F1-score** over RAP sets ([`precision_recall`], [`f1_score`]). On
//!   the Squeeze dataset the number of returned results is fixed to the
//!   true RAP count of each case, exactly as the paper does;
//! * **RC@k** (Eq. 7, [`rc_at_k`]): the fraction of ground-truth RAPs
//!   recovered within the top-`k` recommendations, summed over a whole
//!   dataset;
//! * a timed runner that feeds every case of a dataset to a
//!   [`baselines::Localizer`], in parallel across worker threads, and
//!   aggregates effectiveness plus mean wall-clock localization time
//!   (§V-F measures efficiency as "average running time in identifying the
//!   RAPs");
//! * plain-text/markdown report tables for the experiment binaries.
//!
//! # Example
//!
//! ```
//! use datasets::{SqueezeGenerator, SqueezeGenConfig};
//! use baselines::RapMinerLocalizer;
//! use eval::evaluate_f1;
//!
//! let ds = SqueezeGenerator::new(SqueezeGenConfig {
//!     attribute_sizes: vec![4, 4, 4],
//!     cases_per_group: 1,
//!     ..SqueezeGenConfig::default()
//! }).generate(5);
//! let outcome = evaluate_f1(&RapMinerLocalizer::default(), &ds.cases);
//! assert!(outcome.f1 > 0.9); // clean B0 data is easy for rapminer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detection;
mod matching;
mod report;
mod runner;

pub use detection::{evaluate_detection, DetectionOutcome, InjectionWindow};
pub use matching::{f1_score, precision_recall, rc_at_k, rc_by_truth_layer};
pub use report::Table;
pub use runner::{evaluate_f1, evaluate_rc, CaseOutcome, F1Outcome, RcOutcome};
