use std::time::Instant;

use baselines::Localizer;
use datasets::LocalizationCase;
use mdkpi::Combination;

use crate::matching::{f1_score, precision_recall, rc_at_k};

/// Per-case localization record: the ranked predictions and the wall-clock
/// seconds spent producing them.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case id.
    pub case_id: String,
    /// Ranked predictions (best first).
    pub predictions: Vec<Combination>,
    /// Wall-clock localization time in seconds.
    pub seconds: f64,
}

/// Aggregated F1 evaluation (the Squeeze-dataset protocol).
#[derive(Debug, Clone)]
pub struct F1Outcome {
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// The paper's Eq. 6 F1-score.
    pub f1: f64,
    /// Mean per-case localization seconds.
    pub mean_seconds: f64,
    /// Per-case records, in case order.
    pub cases: Vec<CaseOutcome>,
}

/// Aggregated RC@k evaluation (the RAPMD protocol).
#[derive(Debug, Clone)]
pub struct RcOutcome {
    /// `RC@k` for each requested `k`, in the same order.
    pub rc: Vec<(usize, f64)>,
    /// Mean per-case localization seconds.
    pub mean_seconds: f64,
    /// Per-case records, in case order.
    pub cases: Vec<CaseOutcome>,
}

/// Run one localizer over the cases with the F1 protocol: each case asks
/// for exactly `|truth|` results (the paper: "we keep the number of
/// returned results of the algorithm the same as the actual number of
/// RAPs").
///
/// Localization failures (e.g. a method that needs labels on an unlabelled
/// frame) count as empty predictions rather than aborting the sweep — a
/// method that cannot answer scores zero, as in the paper's comparisons.
pub fn evaluate_f1<L: Localizer + ?Sized>(localizer: &L, cases: &[LocalizationCase]) -> F1Outcome {
    let outcomes = run_cases(localizer, cases, |case| case.truth.len());
    let pairs: Vec<(Vec<Combination>, Vec<Combination>)> = outcomes
        .iter()
        .zip(cases)
        .map(|(o, c)| (o.predictions.clone(), c.truth.clone()))
        .collect();
    let (precision, recall) = precision_recall(&pairs);
    F1Outcome {
        precision,
        recall,
        f1: f1_score(precision, recall),
        mean_seconds: mean_seconds(&outcomes),
        cases: outcomes,
    }
}

/// Run one localizer over the cases with the RC@k protocol: each case asks
/// for `max(ks)` results; `RC@k` is reported for every requested `k`.
pub fn evaluate_rc<L: Localizer + ?Sized>(
    localizer: &L,
    cases: &[LocalizationCase],
    ks: &[usize],
) -> RcOutcome {
    let k_max = ks.iter().copied().max().unwrap_or(0);
    let outcomes = run_cases(localizer, cases, |_| k_max);
    let pairs: Vec<(Vec<Combination>, Vec<Combination>)> = outcomes
        .iter()
        .zip(cases)
        .map(|(o, c)| (o.predictions.clone(), c.truth.clone()))
        .collect();
    RcOutcome {
        rc: ks.iter().map(|&k| (k, rc_at_k(&pairs, k))).collect(),
        mean_seconds: mean_seconds(&outcomes),
        cases: outcomes,
    }
}

fn mean_seconds(outcomes: &[CaseOutcome]) -> f64 {
    if outcomes.is_empty() {
        0.0
    } else {
        outcomes.iter().map(|o| o.seconds).sum::<f64>() / outcomes.len() as f64
    }
}

/// Run every case through the localizer, fanned out over a work-stealing
/// pool sized to the machine. The pool's map preserves case order, so the
/// outcome vector lines up with the input regardless of which worker
/// finished first — and stealing keeps cores busy even when one group's
/// cases are much slower than another's (static chunking serialized on the
/// slowest chunk).
fn run_cases<L: Localizer + ?Sized>(
    localizer: &L,
    cases: &[LocalizationCase],
    k_for: impl Fn(&LocalizationCase) -> usize + Sync,
) -> Vec<CaseOutcome> {
    par::Pool::new(0).map(cases, |_, case| {
        let k = k_for(case);
        let start = Instant::now();
        let predictions = localizer
            .localize(&case.frame, k)
            .map(|scored| scored.into_iter().map(|s| s.combination).collect())
            .unwrap_or_default();
        CaseOutcome {
            case_id: case.id.clone(),
            predictions,
            seconds: start.elapsed().as_secs_f64(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::RapMinerLocalizer;
    use datasets::{SqueezeGenConfig, SqueezeGenerator};

    fn tiny_dataset() -> datasets::Dataset {
        SqueezeGenerator::new(SqueezeGenConfig {
            attribute_sizes: vec![4, 4, 4],
            cases_per_group: 1,
            ..SqueezeGenConfig::default()
        })
        .generate(33)
    }

    #[test]
    fn f1_protocol_requests_truth_count() {
        let ds = tiny_dataset();
        let outcome = evaluate_f1(&RapMinerLocalizer::default(), &ds.cases);
        assert_eq!(outcome.cases.len(), ds.cases.len());
        for (o, c) in outcome.cases.iter().zip(&ds.cases) {
            assert!(o.predictions.len() <= c.truth.len());
            assert!(o.seconds >= 0.0);
        }
        assert!(
            outcome.f1 > 0.8,
            "clean B0 should be easy, got {}",
            outcome.f1
        );
        assert!(outcome.mean_seconds > 0.0);
    }

    #[test]
    fn rc_protocol_reports_each_k() {
        let ds = tiny_dataset();
        let outcome = evaluate_rc(&RapMinerLocalizer::default(), &ds.cases, &[3, 4, 5]);
        assert_eq!(outcome.rc.len(), 3);
        assert_eq!(outcome.rc[0].0, 3);
        // RC@k is monotone in k
        assert!(outcome.rc[0].1 <= outcome.rc[1].1 + 1e-12);
        assert!(outcome.rc[1].1 <= outcome.rc[2].1 + 1e-12);
        for (_, rc) in &outcome.rc {
            assert!((0.0..=1.0).contains(rc));
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        // order preservation: case ids must line up with input order
        let ds = tiny_dataset();
        let outcome = evaluate_f1(&RapMinerLocalizer::default(), &ds.cases);
        let ids: Vec<&str> = outcome.cases.iter().map(|c| c.case_id.as_str()).collect();
        let expected: Vec<&str> = ds.cases.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn failing_localizer_scores_zero_instead_of_aborting() {
        struct Broken;
        impl Localizer for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn localize(
                &self,
                _: &mdkpi::LeafFrame,
                _: usize,
            ) -> baselines::Result<Vec<baselines::ScoredCombination>> {
                Err(baselines::Error::UnlabelledFrame { method: "broken" })
            }
        }
        let ds = tiny_dataset();
        let outcome = evaluate_f1(&Broken, &ds.cases);
        assert_eq!(outcome.f1, 0.0);
        assert!(outcome.cases.iter().all(|c| c.predictions.is_empty()));
    }

    #[test]
    fn empty_case_list_is_fine() {
        let outcome = evaluate_f1(&RapMinerLocalizer::default(), &[]);
        assert_eq!(outcome.f1, 0.0);
        assert_eq!(outcome.mean_seconds, 0.0);
    }
}
