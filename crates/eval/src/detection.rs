//! Detection evaluation: precision/recall of trigger steps against
//! ground-truth injection windows, plus trigger latency.
//!
//! The protocol mirrors how operators judge a detector: every injected
//! failure should produce a trigger *within its match window* (recall),
//! no trigger should fire outside every window (false triggers /
//! precision), and matched triggers should fire close to the injection
//! start (latency, in steps).

use crate::report::Table;

/// One ground-truth injection for matching: `(start step, match window)`.
/// A trigger at step `t` matches when `start <= t < start + window`.
pub type InjectionWindow = (usize, usize);

/// The outcome of scoring one detector run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// Injections with at least one trigger inside their window.
    pub detected: usize,
    /// Total ground-truth injections.
    pub injections: usize,
    /// Triggers that fall inside no injection window.
    pub false_triggers: Vec<usize>,
    /// Total triggers scored.
    pub triggers: usize,
    /// `(injection start, latency)` for each detected injection, in
    /// injection order: latency is `first matching trigger − start`.
    pub latencies: Vec<(usize, usize)>,
    /// Injection starts that no trigger matched.
    pub missed: Vec<usize>,
}

impl DetectionOutcome {
    /// Fraction of injections detected; `1.0` when there were none.
    pub fn recall(&self) -> f64 {
        if self.injections == 0 {
            1.0
        } else {
            self.detected as f64 / self.injections as f64
        }
    }

    /// Fraction of triggers that matched an injection; `1.0` when there
    /// were no triggers.
    pub fn precision(&self) -> f64 {
        if self.triggers == 0 {
            1.0
        } else {
            (self.triggers - self.false_triggers.len()) as f64 / self.triggers as f64
        }
    }

    /// Mean trigger latency in steps over the detected injections;
    /// `0.0` when nothing was detected.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().map(|(_, l)| *l as f64).sum::<f64>() / self.latencies.len() as f64
        }
    }

    /// Worst trigger latency in steps; `0` when nothing was detected.
    pub fn max_latency(&self) -> usize {
        self.latencies.iter().map(|(_, l)| *l).max().unwrap_or(0)
    }

    /// The detection report as a [`Table`], one row per injection in step
    /// order — deterministic, no wall-clock columns.
    pub fn table(&self) -> Table {
        let mut table = Table::new(["injection_step", "detected", "latency_steps"]);
        let mut rows: Vec<(usize, Option<usize>)> = Vec::new();
        for &(start, latency) in &self.latencies {
            rows.push((start, Some(latency)));
        }
        for &start in &self.missed {
            rows.push((start, None));
        }
        rows.sort_by_key(|(start, _)| *start);
        for (start, latency) in rows {
            match latency {
                Some(l) => table.row([start.to_string(), "yes".into(), l.to_string()]),
                None => table.row([start.to_string(), "no".into(), "-".into()]),
            };
        }
        table
    }
}

/// Score `triggers` (detection rising-edge steps, any order) against the
/// ground-truth `injections`.
///
/// An injection counts as detected when at least one trigger lands in
/// `[start, start + window)`; its latency is the earliest such trigger
/// minus `start`. A trigger inside no window is a false trigger. One
/// trigger can match multiple overlapping windows (rare; generators keep
/// windows disjoint).
pub fn evaluate_detection(injections: &[InjectionWindow], triggers: &[usize]) -> DetectionOutcome {
    let mut sorted_triggers: Vec<usize> = triggers.to_vec();
    sorted_triggers.sort_unstable();

    let mut latencies = Vec::new();
    let mut missed = Vec::new();
    for &(start, window) in injections {
        let hit = sorted_triggers
            .iter()
            .find(|&&t| t >= start && t < start + window);
        match hit {
            Some(&t) => latencies.push((start, t - start)),
            None => missed.push(start),
        }
    }
    let false_triggers: Vec<usize> = sorted_triggers
        .iter()
        .copied()
        .filter(|&t| {
            !injections
                .iter()
                .any(|&(start, window)| t >= start && t < start + window)
        })
        .collect();

    DetectionOutcome {
        detected: latencies.len(),
        injections: injections.len(),
        false_triggers,
        triggers: sorted_triggers.len(),
        latencies,
        missed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection_scores_one() {
        let injections = [(100, 10), (200, 10)];
        let outcome = evaluate_detection(&injections, &[101, 203]);
        assert_eq!(outcome.recall(), 1.0);
        assert_eq!(outcome.precision(), 1.0);
        assert_eq!(outcome.latencies, vec![(100, 1), (200, 3)]);
        assert_eq!(outcome.mean_latency(), 2.0);
        assert_eq!(outcome.max_latency(), 3);
        assert!(outcome.missed.is_empty());
        assert!(outcome.false_triggers.is_empty());
    }

    #[test]
    fn misses_and_false_triggers_are_counted() {
        let injections = [(100, 5), (200, 5)];
        // 102 matches the first; 150 matches nothing; the second is missed.
        let outcome = evaluate_detection(&injections, &[102, 150]);
        assert_eq!(outcome.detected, 1);
        assert_eq!(outcome.recall(), 0.5);
        assert_eq!(outcome.false_triggers, vec![150]);
        assert_eq!(outcome.precision(), 0.5);
        assert_eq!(outcome.missed, vec![200]);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let injections = [(10, 5)]; // matches steps 10..14
        assert_eq!(evaluate_detection(&injections, &[9]).detected, 0);
        assert_eq!(evaluate_detection(&injections, &[10]).detected, 1);
        assert_eq!(evaluate_detection(&injections, &[14]).detected, 1);
        assert_eq!(evaluate_detection(&injections, &[15]).detected, 0);
    }

    #[test]
    fn earliest_matching_trigger_sets_latency() {
        let outcome = evaluate_detection(&[(10, 10)], &[18, 12, 15]);
        assert_eq!(outcome.latencies, vec![(10, 2)]);
        // The extra in-window triggers are not false triggers.
        assert!(outcome.false_triggers.is_empty());
        assert_eq!(outcome.precision(), 1.0);
    }

    #[test]
    fn empty_cases_are_well_defined() {
        let none = evaluate_detection(&[], &[]);
        assert_eq!(none.recall(), 1.0);
        assert_eq!(none.precision(), 1.0);
        assert_eq!(none.mean_latency(), 0.0);
        let quiet = evaluate_detection(&[(5, 2)], &[]);
        assert_eq!(quiet.recall(), 0.0);
        assert_eq!(quiet.precision(), 1.0);
    }

    #[test]
    fn table_lists_every_injection_in_step_order() {
        let outcome = evaluate_detection(&[(200, 5), (100, 5)], &[201]);
        let table = outcome.table();
        assert_eq!(table.len(), 2);
        let mut csv = Vec::new();
        table.write_csv(&mut csv).expect("write csv");
        let text = String::from_utf8(csv).expect("utf8");
        assert!(text.contains("100,no,-"));
        assert!(text.contains("200,yes,1"));
    }
}
