//! # criterion (shim)
//!
//! A minimal wall-clock benchmarking harness standing in for the
//! `criterion` crate API this workspace's benches use. Each benchmark is
//! warmed up once, then timed over `sample_size` batches; the mean and
//! fastest batch are printed as plain text. No statistics, plots, or
//! baseline comparisons — just stable relative ordering.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkLabel {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times closures handed to `iter`.
pub struct Bencher {
    iters: u64,
    last: Duration,
}

impl Bencher {
    /// Time `f` over the configured batch size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm caches, outside the timed region
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl IntoBenchmarkLabel, f: F) {
        let sample_size = self.sample_size;
        run_bench(&name.into_label(), sample_size, f);
    }
}

/// A group of benchmarks sharing a prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure receiving a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut timed_batches = 0u32;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: 1,
            last: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.last);
        total += b.last;
        timed_batches += 1;
    }
    let mean = total / timed_batches.max(1);
    println!("  {label}: mean {mean:?}, best {best:?} over {timed_batches} samples");
}

/// Bundle benchmark functions into one runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            runs += 1;
        }
        c.bench_function("standalone", |b| b.iter(|| black_box("s".len())));
        assert_eq!(runs, 1);
    }
}
