//! # rand (shim)
//!
//! A self-contained stand-in for the parts of the `rand` crate this
//! workspace uses, so the build has zero external dependencies. The
//! generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, statistically solid for
//! simulation and testing, and **not** cryptographically secure.
//!
//! Covered surface: `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool, gen}`, `rngs::StdRng`, and `seq::SliceRandom::{choose,
//! shuffle}`. Streams differ from upstream `rand`; only determinism per
//! seed is promised, not bit-compatibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // take the top 53 bits — the low bits of some generators are weaker
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// A sample of the type's full-range ("standard") distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Full-range sampling for `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one full-range sample.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (shim for `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100)
            .any(|_| StdRng::seed_from_u64(7).gen_range(0..u64::MAX) != c.gen_range(0..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0) || true));
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
