//! # proptest (shim)
//!
//! A compact property-testing harness standing in for the `proptest`
//! crate's macro and strategy surface used by this workspace. Each
//! `proptest!` test runs its body against `ProptestConfig::cases`
//! independently sampled inputs; the generator is seeded from the test
//! name, so failures are reproducible run-to-run.
//!
//! Differences from upstream: no shrinking (the failing case is reported
//! verbatim), no persistence files, and streams are not bit-compatible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Harness configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator: the sampling core of every strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`, resampling otherwise.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({}): rejection rate too high", self.whence);
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A `Vec` of strategies samples element-wise into a `Vec` of values.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Full-range generation for primitives, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen::<u64>() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.gen::<u64>() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric, wide dynamic range
        let mag = rng.gen::<f64>() * 1e9;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full range of `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Strategy sub-modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Acceptable size specifications for [`vec`].
        pub trait SizeRange {
            /// Sample a concrete length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A `Vec` whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.5) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }

        /// `Some` of the inner strategy about half the time, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    /// Sampling helper types.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};
        use rand::Rng;

        /// An index into a collection of as-yet-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length.
            ///
            /// # Panics
            ///
            /// Panics when `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.gen::<u64>())
            }
        }
    }
}

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Drive one property: `cases` iterations of sample-then-check.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the case number and the failure message.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // stable per-test seed: failures reproduce across runs
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(msg) = f(&mut rng) {
            panic!(
                "property `{name}` failed on case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Declare property tests: each `fn name(bindings in strategies) { body }`
/// item becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                #[allow(unused_mut)]
                let mut __check = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __check()
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!` but failing the current property case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Like `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r,
            ));
        }
    }};
}

/// Like `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            ));
        }
    }};
}

/// Skip the current case when an assumption does not hold. This shim
/// treats a violated assumption as a silently passing case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..100, 1..=8),
            flag in any::<bool>(),
            opt in prop::option::of(1usize..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(v.iter().all(|&x| x < 100));
            let doubled = Just(7u32).prop_map(|x| x * 2);
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            prop_assert_eq!(doubled.sample(&mut rng), 14);
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
            let _ = flag;
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (len, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u8..10, n..=n))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn sample_index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        super::run_property(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err("nope".to_string())
        });
    }
}
