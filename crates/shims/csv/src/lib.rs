//! # csv (shim)
//!
//! A small RFC-4180 reader/writer standing in for the `csv` crate so the
//! workspace builds with zero external dependencies. Supports quoted
//! fields (including embedded commas, quotes and newlines), CRLF and LF
//! line endings, and the crate's default headers-on behavior: the first
//! record is the header row and is not yielded by [`Reader::records`].

#![forbid(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// A CSV read/write failure (I/O or malformed quoting).
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// One parsed CSV record: a list of string fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringRecord {
    fields: Vec<String>,
}

impl StringRecord {
    /// The field at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&str> {
        self.fields.get(index).map(String::as_str)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate over the fields in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(String::as_str)
    }
}

/// Parse a full CSV document into records (quote-aware).
fn parse_document(text: &str) -> Result<Vec<StringRecord>, Error> {
    let mut records = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any_char_in_record = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => {
                in_quotes = true;
                any_char_in_record = true;
            }
            ',' => {
                fields.push(std::mem::take(&mut field));
                any_char_in_record = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                if any_char_in_record || !field.is_empty() {
                    fields.push(std::mem::take(&mut field));
                    records.push(StringRecord {
                        fields: std::mem::take(&mut fields),
                    });
                }
                any_char_in_record = false;
            }
            '\n' => {
                if any_char_in_record || !field.is_empty() {
                    fields.push(std::mem::take(&mut field));
                    records.push(StringRecord {
                        fields: std::mem::take(&mut fields),
                    });
                }
                any_char_in_record = false;
            }
            other => {
                field.push(other);
                any_char_in_record = true;
            }
        }
    }
    if in_quotes {
        return Err(Error::new("unterminated quoted field"));
    }
    if any_char_in_record || !field.is_empty() || !fields.is_empty() {
        fields.push(field);
        records.push(StringRecord { fields });
    }
    Ok(records)
}

/// A CSV reader with headers enabled (first record = header row).
///
/// The underlying reader is consumed eagerly at construction; this shim
/// targets the workspace's file-sized inputs, not unbounded streams.
pub struct Reader<R> {
    records: Vec<StringRecord>,
    parse_error: Option<String>,
    headers: StringRecord,
    _marker: std::marker::PhantomData<R>,
}

impl Reader<File> {
    /// Open a CSV file at `path`.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened or read.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        Ok(Self::build(File::open(path.as_ref())?))
    }
}

impl<R: Read> Reader<R> {
    /// Wrap any reader. Parse failures surface from [`Reader::headers`] /
    /// [`Reader::records`], mirroring the upstream crate's lazy errors.
    pub fn from_reader(rdr: R) -> Self {
        Self::build(rdr)
    }

    fn build(mut rdr: R) -> Self {
        let mut text = String::new();
        let (records, parse_error) = match rdr.read_to_string(&mut text) {
            Err(e) => (Vec::new(), Some(e.to_string())),
            Ok(_) => match parse_document(&text) {
                Ok(records) => (records, None),
                Err(e) => (Vec::new(), Some(e.to_string())),
            },
        };
        let headers = records.first().cloned().unwrap_or_default();
        Reader {
            records,
            parse_error,
            headers,
            _marker: std::marker::PhantomData,
        }
    }

    /// The header row (the document's first record).
    ///
    /// # Errors
    ///
    /// Fails when the input could not be read or parsed.
    pub fn headers(&mut self) -> Result<&StringRecord, Error> {
        match &self.parse_error {
            Some(msg) => Err(Error::new(msg.clone())),
            None => Ok(&self.headers),
        }
    }

    /// Iterate over the data records (everything after the header row).
    pub fn records(&mut self) -> Records<'_> {
        Records {
            inner: self.records.iter().skip(1),
            parse_error: self.parse_error.clone(),
        }
    }
}

/// Iterator over data records; a parse failure is yielded once as an error.
pub struct Records<'r> {
    inner: std::iter::Skip<std::slice::Iter<'r, StringRecord>>,
    parse_error: Option<String>,
}

impl Iterator for Records<'_> {
    type Item = Result<StringRecord, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(msg) = self.parse_error.take() {
            return Some(Err(Error::new(msg)));
        }
        self.inner.next().map(|r| Ok(r.clone()))
    }
}

/// A CSV writer that quotes fields only when needed.
pub struct Writer<W: Write> {
    out: W,
}

impl Writer<File> {
    /// Create (truncating) a CSV file at `path`.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Self, Error> {
        Ok(Writer {
            out: File::create(path.as_ref())?,
        })
    }
}

impl<W: Write> Writer<W> {
    /// Wrap any writer.
    pub fn from_writer(out: W) -> Self {
        Writer { out }
    }

    /// Write one record, quoting fields containing separators or quotes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_record<I>(&mut self, record: I) -> Result<(), Error>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut line = String::new();
        for (i, fieldref) in record.into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let field = fieldref.as_ref();
            if field.contains(['"', ',', '\n', '\r']) {
                line.push('"');
                for c in field.chars() {
                    if c == '"' {
                        line.push('"');
                    }
                    line.push(c);
                }
                line.push('"');
            } else {
                line.push_str(field);
            }
        }
        line.push('\n');
        self.out.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Flush the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&mut self) -> Result<(), Error> {
        self.out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_records_split() {
        let mut rdr = Reader::from_reader("a,b\n1,2\n3,4\n".as_bytes());
        assert_eq!(
            rdr.headers().unwrap().iter().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        let rows: Vec<StringRecord> = rdr.records().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), Some("1"));
        assert_eq!(rows[1].get(1), Some("4"));
    }

    #[test]
    fn quoted_fields_roundtrip() {
        let mut buf = Vec::new();
        {
            let mut w = Writer::from_writer(&mut buf);
            w.write_record(["plain", "with,comma", "with\"quote", "multi\nline"])
                .unwrap();
            w.write_record(["x", "y", "z", "w"]).unwrap();
            w.flush().unwrap();
        }
        let mut rdr = Reader::from_reader(buf.as_slice());
        let header = rdr.headers().unwrap().clone();
        assert_eq!(header.get(1), Some("with,comma"));
        assert_eq!(header.get(2), Some("with\"quote"));
        assert_eq!(header.get(3), Some("multi\nline"));
        assert_eq!(rdr.records().count(), 1);
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let mut rdr = Reader::from_reader("a,b\r\n1,2\r\n3,4".as_bytes());
        let rows: Vec<_> = rdr.records().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(1), Some("4"));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let mut rdr = Reader::from_reader("a,b\n\"oops,2\n".as_bytes());
        assert!(rdr.headers().is_err());
        assert!(rdr.records().next().unwrap().is_err());
    }

    #[test]
    fn empty_input_yields_nothing() {
        let mut rdr = Reader::from_reader("".as_bytes());
        assert!(rdr.headers().unwrap().is_empty());
        assert_eq!(rdr.records().count(), 0);
    }
}
