//! # rand_distr (shim)
//!
//! Zero-dependency stand-in for the `rand_distr` distributions this
//! workspace samples: [`Normal`] and [`LogNormal`], via the Box–Muller
//! transform. Streams differ from upstream; determinism per seed holds.

#![forbid(unsafe_code)]

use std::f64::consts::TAU;
use std::fmt;

use rand::RngCore;

/// A sampleable probability distribution.
pub trait Distribution<T> {
    /// Draw one sample using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters (NaN or negative scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Draw one standard-normal sample (Box–Muller, cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Errors
    ///
    /// Fails when either parameter is NaN or `std_dev` is negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if mean.is_nan() || std_dev.is_nan() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Errors
    ///
    /// Fails when either parameter is NaN or `sigma` is negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if mu.is_nan() || sigma.is_nan() || sigma < 0.0 {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_with_matching_median() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(f64::total_cmp);
        let median = samples[5000];
        assert!((median - 1.0f64.exp()).abs() < 0.2, "median {median}");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
