use mdkpi::{Combination, LeafFrame, Schema};

/// One localization case: a labelled leaf table at one (simulated)
/// timestamp plus the ground-truth root anomaly patterns a localizer must
/// recover.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationCase {
    /// Stable identifier (used for file names and reports).
    pub id: String,
    /// Optional evaluation group tag — the Squeeze dataset's
    /// `(dimension, count)` groups render as `"(d,r)"`; RAPMD cases carry
    /// the empty string (it is evaluated ungrouped, §V-E2).
    pub group: String,
    /// The leaf table: `v`, `f` and per-leaf anomaly labels.
    pub frame: LeafFrame,
    /// The ground-truth RAP set.
    pub truth: Vec<Combination>,
}

impl LocalizationCase {
    /// The number of ground-truth RAPs.
    pub fn num_raps(&self) -> usize {
        self.truth.len()
    }
}

/// A named collection of localization cases sharing one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (`"squeeze-b0"`, `"rapmd"`, …).
    pub name: String,
    /// The shared attribute schema.
    pub schema: Schema,
    /// The cases, in generation order.
    pub cases: Vec<LocalizationCase>,
}

impl Dataset {
    /// Cases belonging to one evaluation group.
    pub fn group<'a>(&'a self, group: &'a str) -> impl Iterator<Item = &'a LocalizationCase> + 'a {
        self.cases.iter().filter(move |c| c.group == group)
    }

    /// The distinct group tags, in first-appearance order.
    pub fn group_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cases {
            if !seen.contains(&c.group) {
                seen.push(c.group.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    fn tiny_case(id: &str, group: &str) -> LocalizationCase {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .build()
            .unwrap();
        let mut b = LeafFrame::builder(&schema);
        b.push_labelled(&[mdkpi::ElementId(0)], 1.0, 10.0, true);
        b.push_labelled(&[mdkpi::ElementId(1)], 10.0, 10.0, false);
        let frame = b.build();
        let truth = vec![schema.parse_combination("a=a1").unwrap()];
        LocalizationCase {
            id: id.to_string(),
            group: group.to_string(),
            frame,
            truth,
        }
    }

    #[test]
    fn groups_filter_and_enumerate() {
        let c1 = tiny_case("1", "(1,1)");
        let schema = c1.frame.schema().clone();
        let ds = Dataset {
            name: "t".into(),
            schema,
            cases: vec![
                tiny_case("1", "(1,1)"),
                tiny_case("2", "(1,2)"),
                tiny_case("3", "(1,1)"),
            ],
        };
        assert_eq!(ds.group("(1,1)").count(), 2);
        assert_eq!(
            ds.group_names(),
            vec!["(1,1)".to_string(), "(1,2)".to_string()]
        );
        assert_eq!(ds.cases[0].num_raps(), 1);
    }
}
