use mdkpi::{AttrId, Combination, Cuboid, CuboidLattice, ElementId, LeafFrame, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::case::{Dataset, LocalizationCase};

/// Configuration of the Squeeze-dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SqueezeGenConfig {
    /// Element counts of the attributes (the published dataset uses a few
    /// attributes with tens of elements; the default keeps cases around
    /// 2 000 leaves so full sweeps stay fast).
    pub attribute_sizes: Vec<usize>,
    /// Cases generated per `(dimension, count)` group.
    pub cases_per_group: usize,
    /// Anomaly magnitude range, one draw per case (vertical assumption:
    /// all leaves under the case's RAPs share it; horizontal assumption:
    /// it varies across cases).
    pub dev_range: (f64, f64),
    /// Relative forecast noise on normal leaves (B0 ≈ none).
    pub noise: f64,
    /// Per-leaf label-flip probability, modelling imperfect upstream
    /// anomaly detection. The published dataset's noise levels map to
    /// `0.0` (B0) through increasing values (B1–B3); the paper evaluates
    /// at B0 because noise only degrades the detection stage, not the
    /// localization logic — the `noise_ablation` bench demonstrates that.
    pub label_noise: f64,
}

impl Default for SqueezeGenConfig {
    fn default() -> Self {
        SqueezeGenConfig {
            attribute_sizes: vec![10, 8, 6, 5],
            cases_per_group: 10,
            dev_range: (0.2, 0.8),
            noise: 0.01,
            label_noise: 0.0,
        }
    }
}

/// Generator reproducing the published Squeeze semi-synthetic dataset's
/// construction (§V-A of the RAPMiner paper):
///
/// * cases are grouped by `(d, r)` with `d` the RAP dimension and `r` the
///   RAP count, both in `{1, 2, 3}`;
/// * all RAPs of one case live in one randomly chosen `d`-dimensional
///   cuboid and are pairwise distinct;
/// * one anomaly magnitude per case (drawn from `dev_range`) is applied to
///   every leaf under the RAPs — `v = f(1 − Dev)` — encoding the vertical
///   assumption RAPMiner criticizes;
/// * B0 noise level: normal leaves carry only tiny forecast noise, and the
///   ground-truth labels are exact.
///
/// # Example
///
/// ```
/// use datasets::{SqueezeGenerator, SqueezeGenConfig};
/// let gen = SqueezeGenerator::new(SqueezeGenConfig {
///     cases_per_group: 1,
///     ..SqueezeGenConfig::default()
/// });
/// let ds = gen.generate(7);
/// assert_eq!(ds.cases.len(), 9);
/// assert_eq!(ds.cases[0].group, "(1,1)");
/// ```
#[derive(Debug, Clone)]
pub struct SqueezeGenerator {
    config: SqueezeGenConfig,
}

impl SqueezeGenConfig {
    /// A preset shaped like the published dataset's family **A** (five
    /// attributes with larger element counts — bigger cases, slower
    /// sweeps).
    pub fn dataset_a() -> Self {
        SqueezeGenConfig {
            attribute_sizes: vec![12, 10, 8, 6, 5],
            ..SqueezeGenConfig::default()
        }
    }

    /// A preset shaped like the published dataset's family **B** (four
    /// attributes, the default).
    pub fn dataset_b() -> Self {
        SqueezeGenConfig::default()
    }
}

impl SqueezeGenerator {
    /// Create with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty schema spec, fewer than 3 attributes (groups go
    /// up to 3-dimensional RAPs), an invalid dev range, or zero cases.
    pub fn new(config: SqueezeGenConfig) -> Self {
        assert!(
            config.attribute_sizes.len() >= 3,
            "need at least 3 attributes for (3, r) groups"
        );
        assert!(
            config.attribute_sizes.iter().all(|&s| s >= 3),
            "attributes need >= 3 elements to host up to 3 disjoint RAPs"
        );
        assert!(
            config.dev_range.0 > 0.0
                && config.dev_range.0 <= config.dev_range.1
                && config.dev_range.1 < 1.0,
            "dev_range must satisfy 0 < lo <= hi < 1"
        );
        assert!(
            config.cases_per_group > 0,
            "cases_per_group must be positive"
        );
        assert!(
            (0.0..1.0).contains(&config.label_noise),
            "label_noise must be in [0, 1)"
        );
        SqueezeGenerator { config }
    }

    /// The schema this generator builds cases over.
    pub fn schema(&self) -> Schema {
        let mut b = Schema::builder();
        for (i, n) in self.config.attribute_sizes.iter().enumerate() {
            b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
        }
        b.build().expect("config validated in new()")
    }

    /// Generate the full dataset (9 groups × `cases_per_group` cases),
    /// deterministically in `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let schema = self.schema();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50EE_7E00);
        let mut cases = Vec::new();
        for d in 1..=3usize {
            for r in 1..=3usize {
                for c in 0..self.config.cases_per_group {
                    let case_id = format!("squeeze_d{d}_r{r}_{c:03}");
                    cases.push(self.generate_case(&schema, d, r, &case_id, &mut rng));
                }
            }
        }
        Dataset {
            name: "squeeze-b0".to_string(),
            schema,
            cases,
        }
    }

    fn generate_case(
        &self,
        schema: &Schema,
        d: usize,
        r: usize,
        id: &str,
        rng: &mut StdRng,
    ) -> LocalizationCase {
        // choose a random d-dimensional cuboid
        let lattice = CuboidLattice::full(schema);
        let cuboid = *lattice
            .layer(d)
            .choose(rng)
            .expect("layer d exists for d <= num_attrs");
        // choose r distinct RAPs in it, pairwise differing in EVERY
        // concrete attribute so they never jointly alias a coarser pattern
        let truth = pick_disjoint_raps(schema, cuboid, r, rng);
        // one magnitude per case
        let dev = rng.gen_range(self.config.dev_range.0..=self.config.dev_range.1);

        // full grid of leaves with lognormal-ish forecasts
        let n = schema.num_attributes();
        let sizes: Vec<u32> = (0..n)
            .map(|i| schema.attribute(AttrId(i as u16)).len() as u32)
            .collect();
        let mut builder = LeafFrame::builder(schema);
        let mut counters = vec![0u32; n];
        loop {
            let elements: Vec<ElementId> = counters.iter().map(|&c| ElementId(c)).collect();
            let f = 10.0 * (1.0 + rng.gen_range(0.0f64..9.0));
            let anomalous = truth.iter().any(|t| t.matches_leaf(&elements));
            let v = if anomalous {
                f * (1.0 - dev)
            } else {
                f * (1.0 + rng.gen_range(-self.config.noise..=self.config.noise))
            };
            let observed = if self.config.label_noise > 0.0 && rng.gen_bool(self.config.label_noise)
            {
                !anomalous
            } else {
                anomalous
            };
            builder.push_labelled(&elements, v, f, observed);
            let mut i = n;
            let done = loop {
                if i == 0 {
                    break true;
                }
                i -= 1;
                counters[i] += 1;
                if counters[i] < sizes[i] {
                    break false;
                }
                counters[i] = 0;
            };
            if done {
                break;
            }
        }
        LocalizationCase {
            id: id.to_string(),
            group: format!("({d},{r})"),
            frame: builder.build(),
            truth,
        }
    }
}

/// Pick `r` RAPs in `cuboid` whose element choices differ pairwise in every
/// concrete attribute (so the union never covers a whole attribute and no
/// coarser pattern aliases them).
fn pick_disjoint_raps(
    schema: &Schema,
    cuboid: Cuboid,
    r: usize,
    rng: &mut StdRng,
) -> Vec<Combination> {
    let attrs: Vec<AttrId> = cuboid.attrs().collect();
    // per attribute: r distinct elements (leaving at least one unused)
    let mut choices: Vec<Vec<ElementId>> = Vec::with_capacity(attrs.len());
    for &a in &attrs {
        let len = schema.attribute(a).len() as u32;
        debug_assert!(
            len as usize > r,
            "attribute too small for {r} disjoint raps"
        );
        let mut elems: Vec<u32> = (0..len).collect();
        elems.shuffle(rng);
        choices.push(elems[..r].iter().map(|&e| ElementId(e)).collect());
    }
    (0..r)
        .map(|i| {
            Combination::from_pairs(
                schema,
                attrs.iter().enumerate().map(|(ai, &a)| (a, choices[ai][i])),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SqueezeGenConfig {
        SqueezeGenConfig {
            attribute_sizes: vec![5, 4, 4],
            cases_per_group: 2,
            ..SqueezeGenConfig::default()
        }
    }

    #[test]
    fn presets_are_valid_configs() {
        let a = SqueezeGenerator::new(SqueezeGenConfig {
            cases_per_group: 1,
            ..SqueezeGenConfig::dataset_a()
        });
        assert_eq!(a.schema().num_attributes(), 5);
        let b = SqueezeGenerator::new(SqueezeGenConfig {
            cases_per_group: 1,
            ..SqueezeGenConfig::dataset_b()
        });
        assert_eq!(b.schema().num_attributes(), 4);
        // family A really generates 5-attribute cases
        let ds = a.generate(3);
        assert_eq!(ds.schema.num_attributes(), 5);
        assert_eq!(ds.cases.len(), 9);
    }

    #[test]
    fn generates_nine_groups() {
        let ds = SqueezeGenerator::new(small_config()).generate(1);
        assert_eq!(ds.cases.len(), 18);
        let groups = ds.group_names();
        assert_eq!(groups.len(), 9);
        assert!(groups.contains(&"(2,3)".to_string()));
    }

    #[test]
    fn group_structure_matches_tag() {
        let ds = SqueezeGenerator::new(small_config()).generate(2);
        for case in &ds.cases {
            let (d, r) = parse_group(&case.group);
            assert_eq!(case.truth.len(), r, "case {}", case.id);
            assert!(
                case.truth.iter().all(|t| t.layer() == d),
                "case {}",
                case.id
            );
            // all in the same cuboid
            let cuboid = case.truth[0].cuboid();
            assert!(case.truth.iter().all(|t| t.cuboid() == cuboid));
            // pairwise distinct
            let set: std::collections::HashSet<_> = case.truth.iter().collect();
            assert_eq!(set.len(), case.truth.len());
        }
    }

    #[test]
    fn labels_match_truth_coverage_exactly() {
        let ds = SqueezeGenerator::new(small_config()).generate(3);
        for case in &ds.cases {
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                assert_eq!(
                    case.frame.label(i),
                    Some(covered),
                    "case {} row {i}",
                    case.id
                );
            }
        }
    }

    #[test]
    fn vertical_assumption_holds() {
        // every anomalous leaf of one case shares the same relative
        // deviation (up to floating-point noise)
        let ds = SqueezeGenerator::new(small_config()).generate(4);
        for case in ds.cases.iter().take(6) {
            let devs: Vec<f64> = (0..case.frame.num_rows())
                .filter(|&i| case.frame.label(i) == Some(true))
                .map(|i| (case.frame.f(i) - case.frame.v(i)) / case.frame.f(i))
                .collect();
            assert!(!devs.is_empty());
            let first = devs[0];
            assert!(
                devs.iter().all(|d| (d - first).abs() < 1e-9),
                "case {} violates the vertical assumption",
                case.id
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SqueezeGenerator::new(small_config()).generate(9);
        let b = SqueezeGenerator::new(small_config()).generate(9);
        assert_eq!(a, b);
        let c = SqueezeGenerator::new(small_config()).generate(10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least 3 attributes")]
    fn too_few_attributes_rejected() {
        SqueezeGenerator::new(SqueezeGenConfig {
            attribute_sizes: vec![5, 5],
            ..SqueezeGenConfig::default()
        });
    }

    #[test]
    fn label_noise_flips_roughly_expected_fraction() {
        let clean = SqueezeGenerator::new(small_config()).generate(8);
        let noisy = SqueezeGenerator::new(SqueezeGenConfig {
            label_noise: 0.2,
            ..small_config()
        })
        .generate(8);
        let mut flipped = 0usize;
        let mut total = 0usize;
        for case in &noisy.cases {
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                total += 1;
                if case.frame.label(i) != Some(covered) {
                    flipped += 1;
                }
            }
        }
        let rate = flipped as f64 / total as f64;
        assert!(
            (0.15..0.25).contains(&rate),
            "flip rate {rate} far from configured 0.2"
        );
        // clean generation flips nothing
        for case in &clean.cases {
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                assert_eq!(case.frame.label(i), Some(covered));
            }
        }
    }

    #[test]
    #[should_panic(expected = "label_noise")]
    fn bad_label_noise_rejected() {
        SqueezeGenerator::new(SqueezeGenConfig {
            label_noise: 1.0,
            ..SqueezeGenConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "dev_range")]
    fn bad_dev_range_rejected() {
        SqueezeGenerator::new(SqueezeGenConfig {
            dev_range: (0.9, 0.2),
            ..SqueezeGenConfig::default()
        });
    }

    fn parse_group(g: &str) -> (usize, usize) {
        let inner = g.trim_start_matches('(').trim_end_matches(')');
        let (d, r) = inner.split_once(',').unwrap();
        (d.parse().unwrap(), r.parse().unwrap())
    }
}
