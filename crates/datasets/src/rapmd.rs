use cdnsim::{CdnTopology, TrafficConfig, TrafficModel};
use mdkpi::{Combination, CuboidLattice, ElementId, LeafFrame, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::case::{Dataset, LocalizationCase};

/// Configuration of the RAPMD generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RapmdConfig {
    /// Number of injected failures (the paper extracts 105 time points
    /// from 35 days × 3 points/day).
    pub num_failures: usize,
    /// Maximum RAPs per failure (*Randomness 1*: uniform in `1..=max`).
    pub max_raps: usize,
    /// Per-leaf deviation range under a RAP (*Randomness 2*).
    pub dev_anomalous: (f64, f64),
    /// Per-leaf deviation range for normal leaves (*Randomness 2*).
    pub dev_normal: (f64, f64),
    /// Use the paper's full 33×4×4×20 topology (10 560 leaves); disable for
    /// a small topology in tests.
    pub paper_topology: bool,
    /// Per-leaf label-flip probability modelling imperfect detection
    /// (0.0 = the paper's exact-label setting).
    pub label_noise: f64,
}

impl Default for RapmdConfig {
    fn default() -> Self {
        RapmdConfig {
            num_failures: 105,
            max_raps: 3,
            dev_anomalous: (0.1, 0.9),
            dev_normal: (-0.02, 0.09),
            paper_topology: true,
            label_noise: 0.0,
        }
    }
}

/// Generator of **RAPMD** (§V-A): failures injected into CDN background
/// traffic.
///
/// The paper's background is 35 days of proprietary ISP CDN KPIs; here the
/// [`cdnsim`] traffic model provides statistically similar sparse,
/// heavy-tailed, seasonal background (see `DESIGN.md` for the substitution
/// argument). Injection follows the paper exactly:
///
/// * **Randomness 1** — each failure has `1..=3` RAPs, each independently
///   of any dimension and any cuboid, no RAP an ancestor of another;
/// * **Randomness 2** — every most-fine-grained leaf under a RAP draws its
///   own `Dev ∈ [0.1, 0.9]`; every normal leaf draws
///   `Dev ∈ [−0.02, 0.09]`; the forecast is reconstructed from the actual
///   value via Eq. 5, `f = (v + Dev·ε) / (1 − Dev)`, so the relative
///   deviations are exact.
///
/// Labels are produced by the Eq. 4 deviation detector at threshold 0.095,
/// which separates the two ranges by construction.
///
/// # Example
///
/// ```
/// use datasets::{RapmdGenerator, RapmdConfig};
/// let config = RapmdConfig {
///     num_failures: 3,
///     paper_topology: false, // small topology for the doc test
///     ..RapmdConfig::default()
/// };
/// let ds = RapmdGenerator::new(config).generate(1);
/// assert_eq!(ds.cases.len(), 3);
/// assert!(ds.cases.iter().all(|c| (1..=3).contains(&c.truth.len())));
/// ```
#[derive(Debug, Clone)]
pub struct RapmdGenerator {
    config: RapmdConfig,
}

/// Eq. 4's ε guarding division by zero.
const EPS: f64 = 1e-9;

impl RapmdGenerator {
    /// Create with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero failures, zero max RAPs, or deviation ranges that
    /// overlap / leave `Dev = 1` reachable.
    pub fn new(config: RapmdConfig) -> Self {
        assert!(config.num_failures > 0, "num_failures must be positive");
        assert!(config.max_raps > 0, "max_raps must be positive");
        let (alo, ahi) = config.dev_anomalous;
        let (nlo, nhi) = config.dev_normal;
        assert!(alo <= ahi && ahi < 1.0, "anomalous dev range invalid");
        assert!(nlo <= nhi && nhi < 1.0, "normal dev range invalid");
        assert!(
            nhi < alo,
            "normal and anomalous deviation ranges must not overlap"
        );
        assert!(
            (0.0..1.0).contains(&config.label_noise),
            "label_noise must be in [0, 1)"
        );
        RapmdGenerator { config }
    }

    /// Generate the dataset deterministically in `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let topology = if self.config.paper_topology {
            CdnTopology::paper(seed)
        } else {
            CdnTopology::small(seed)
        };
        let schema = topology.schema().clone();
        let model = TrafficModel::new(topology, TrafficConfig::default(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4A9D_D000);

        // the paper samples 105 random timestamps out of ~35 days
        let minutes_total = 35 * 24 * 60;
        let mut cases = Vec::with_capacity(self.config.num_failures);
        for fail_idx in 0..self.config.num_failures {
            let minute = rng.gen_range(0..minutes_total);
            let background = model.snapshot(minute);
            let case = self.inject(&schema, background, fail_idx, &mut rng);
            cases.push(case);
        }
        Dataset {
            name: "rapmd".to_string(),
            schema,
            cases,
        }
    }

    /// Inject one failure into a background snapshot.
    fn inject(
        &self,
        schema: &Schema,
        background: LeafFrame,
        fail_idx: usize,
        rng: &mut StdRng,
    ) -> LocalizationCase {
        // Randomness 1: 1..=max_raps RAPs, arbitrary dimensions, none an
        // ancestor of another, each covering at least one background leaf.
        let num_raps = rng.gen_range(1..=self.config.max_raps);
        let truth = self.pick_raps(schema, &background, num_raps, rng);

        // Randomness 2: per-leaf deviations; forecast from Eq. 5.
        let (alo, ahi) = self.config.dev_anomalous;
        let (nlo, nhi) = self.config.dev_normal;
        let mut builder = LeafFrame::builder(schema);
        let mut labels = Vec::with_capacity(background.num_rows());
        for i in 0..background.num_rows() {
            let elements = background.row_elements(i);
            let anomalous = truth.iter().any(|t| t.matches_leaf(elements));
            let dev = if anomalous {
                rng.gen_range(alo..=ahi)
            } else {
                rng.gen_range(nlo..=nhi)
            };
            let v = background.v(i);
            // Eq. 5: f = (v + Dev·ε) / (1 − Dev) so that (f − v)/(f + ε) = Dev
            let f = (v + dev * EPS) / (1.0 - dev);
            builder.push(elements, v, f);
            let observed = if self.config.label_noise > 0.0 && rng.gen_bool(self.config.label_noise)
            {
                !anomalous
            } else {
                anomalous
            };
            labels.push(observed);
        }
        let mut frame = builder.build();
        frame
            .set_labels(labels)
            .expect("labels built alongside rows");
        LocalizationCase {
            id: format!("rapmd_{fail_idx:03}"),
            group: String::new(),
            frame,
            truth,
        }
    }

    /// Pick RAPs for one failure per Randomness 1.
    fn pick_raps(
        &self,
        schema: &Schema,
        background: &LeafFrame,
        num_raps: usize,
        rng: &mut StdRng,
    ) -> Vec<Combination> {
        let lattice = CuboidLattice::full(schema);
        let mut truth: Vec<Combination> = Vec::new();
        let mut attempts = 0usize;
        while truth.len() < num_raps {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "could not place {num_raps} RAPs; background too sparse"
            );
            // any dimension, any cuboid
            let layer = rng.gen_range(1..=lattice.num_layers());
            let cuboid = *lattice.layer(layer).choose(rng).expect("non-empty layer");
            let candidate = Combination::from_pairs(
                schema,
                cuboid.attrs().map(|a| {
                    let len = schema.attribute(a).len() as u32;
                    (a, ElementId(rng.gen_range(0..len)))
                }),
            );
            // must cover at least one background leaf
            if background.rows_matching(&candidate).is_empty() {
                continue;
            }
            // no RAP may generalize another (an "ancestor RAP" would make
            // the descendant invalid by Definition 1)
            if truth
                .iter()
                .any(|t| t.generalizes(&candidate) || candidate.generalizes(t))
            {
                continue;
            }
            truth.push(candidate);
        }
        truth
    }
}

/// The threshold separating RAPMD's two deviation ranges (used by
/// evaluation pipelines that re-detect instead of trusting the stored
/// labels).
pub const RAPMD_DETECTION_THRESHOLD: f64 = 0.095;

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::deviation;

    fn small() -> RapmdConfig {
        RapmdConfig {
            num_failures: 5,
            paper_topology: false,
            ..RapmdConfig::default()
        }
    }

    #[test]
    fn generates_requested_failures() {
        let ds = RapmdGenerator::new(small()).generate(11);
        assert_eq!(ds.cases.len(), 5);
        assert_eq!(ds.name, "rapmd");
        for case in &ds.cases {
            assert!((1..=3).contains(&case.truth.len()));
            assert!(case.frame.num_anomalous() > 0, "case {} empty", case.id);
        }
    }

    #[test]
    fn randomness2_dev_ranges_hold_exactly() {
        let ds = RapmdGenerator::new(small()).generate(12);
        for case in &ds.cases {
            for i in 0..case.frame.num_rows() {
                let dev = deviation(case.frame.v(i), case.frame.f(i));
                match case.frame.label(i) {
                    Some(true) => assert!(
                        (0.1 - 1e-9..=0.9 + 1e-9).contains(&dev),
                        "case {} row {i}: anomalous dev {dev}",
                        case.id
                    ),
                    Some(false) => assert!(
                        (-0.02 - 1e-9..=0.09 + 1e-9).contains(&dev),
                        "case {} row {i}: normal dev {dev}",
                        case.id
                    ),
                    None => panic!("unlabelled row"),
                }
            }
        }
    }

    #[test]
    fn labels_match_truth_coverage() {
        let ds = RapmdGenerator::new(small()).generate(13);
        for case in &ds.cases {
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                assert_eq!(case.frame.label(i), Some(covered));
            }
        }
    }

    #[test]
    fn anomaly_magnitudes_vary_within_one_failure() {
        // the defining difference from the Squeeze dataset
        let ds = RapmdGenerator::new(small()).generate(14);
        let mut checked = 0;
        for case in &ds.cases {
            let devs: Vec<f64> = (0..case.frame.num_rows())
                .filter(|&i| case.frame.label(i) == Some(true))
                .map(|i| deviation(case.frame.v(i), case.frame.f(i)))
                .collect();
            if devs.len() >= 5 {
                let min = devs.iter().copied().fold(f64::MAX, f64::min);
                let max = devs.iter().copied().fold(f64::MIN, f64::max);
                assert!(
                    max - min > 0.05,
                    "case {}: deviations suspiciously uniform",
                    case.id
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no case had enough anomalous leaves");
    }

    #[test]
    fn no_rap_generalizes_another() {
        let ds = RapmdGenerator::new(small()).generate(15);
        for case in &ds.cases {
            for a in &case.truth {
                for b in &case.truth {
                    if a != b {
                        assert!(!a.generalizes(b), "{a} generalizes {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RapmdGenerator::new(small()).generate(16);
        let b = RapmdGenerator::new(small()).generate(16);
        assert_eq!(a, b);
    }

    #[test]
    fn detection_threshold_separates_ranges() {
        // the constant must sit strictly between the default normal and
        // anomalous deviation bands
        let config = RapmdConfig::default();
        assert!(RAPMD_DETECTION_THRESHOLD > config.dev_normal.1);
        assert!(RAPMD_DETECTION_THRESHOLD < config.dev_anomalous.0);
    }

    #[test]
    fn label_noise_perturbs_labels() {
        let noisy = RapmdGenerator::new(RapmdConfig {
            label_noise: 0.2,
            ..small()
        })
        .generate(55);
        let mut flipped = 0usize;
        let mut total = 0usize;
        for case in &noisy.cases {
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                total += 1;
                if case.frame.label(i) != Some(covered) {
                    flipped += 1;
                }
            }
        }
        let rate = flipped as f64 / total as f64;
        assert!((0.15..0.25).contains(&rate), "flip rate {rate}");
    }

    #[test]
    #[should_panic(expected = "label_noise")]
    fn bad_label_noise_rejected() {
        RapmdGenerator::new(RapmdConfig {
            label_noise: 1.5,
            ..RapmdConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_ranges_rejected() {
        RapmdGenerator::new(RapmdConfig {
            dev_normal: (-0.02, 0.2),
            ..RapmdConfig::default()
        });
    }
}
