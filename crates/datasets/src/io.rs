use std::fs;
use std::io::Write as _;
use std::path::Path;

use mdkpi::{format_truth, parse_truth, read_frame_csv, write_frame_csv, Error};

use crate::case::{Dataset, LocalizationCase};

/// Save a dataset into a directory: one `<case-id>.csv` per case (the
/// `mdkpi` CSV layout with labels) plus a `manifest.csv` mapping
/// `id,group,truth` (truth in the `attr=elem&…;…` notation).
///
/// The directory is created if missing; existing files with the same names
/// are overwritten.
///
/// # Errors
///
/// Propagates I/O and serialization failures.
pub fn save_dataset(dataset: &Dataset, dir: &Path) -> Result<(), Error> {
    fs::create_dir_all(dir)?;
    let mut manifest =
        csv::Writer::from_path(dir.join("manifest.csv")).map_err(|e| Error::Csv {
            message: e.to_string(),
        })?;
    manifest.write_record(["id", "group", "truth"])?;
    for case in &dataset.cases {
        let file = fs::File::create(dir.join(format!("{}.csv", case.id)))?;
        let mut writer = std::io::BufWriter::new(file);
        write_frame_csv(&case.frame, &mut writer)?;
        writer.flush()?;
        manifest.write_record([
            case.id.as_str(),
            case.group.as_str(),
            &format_truth(&case.truth),
        ])?;
    }
    manifest.flush()?;
    // dataset name marker
    fs::write(dir.join("NAME"), &dataset.name)?;
    Ok(())
}

/// Load a dataset previously written by [`save_dataset`].
///
/// Each case's schema is inferred from its CSV; the first case's schema
/// becomes the dataset schema (all cases of one dataset share the element
/// universe by construction, but sparse cases may intern fewer elements —
/// truth strings resolve by name against each case's own schema, so this
/// is safe).
///
/// # Errors
///
/// Fails on a missing/malformed manifest or any unreadable case file.
pub fn load_dataset(dir: &Path) -> Result<Dataset, Error> {
    let mut manifest =
        csv::Reader::from_path(dir.join("manifest.csv")).map_err(|e| Error::Csv {
            message: e.to_string(),
        })?;
    let name = fs::read_to_string(dir.join("NAME"))
        .unwrap_or_else(|_| "unnamed".to_string())
        .trim()
        .to_string();
    let mut cases = Vec::new();
    for record in manifest.records() {
        let record = record?;
        let id = record
            .get(0)
            .ok_or_else(|| Error::Csv {
                message: "manifest row missing id".to_string(),
            })?
            .to_string();
        let group = record.get(1).unwrap_or("").to_string();
        let truth_text = record.get(2).unwrap_or("").to_string();
        let file = fs::File::open(dir.join(format!("{id}.csv")))?;
        let frame = read_frame_csv(std::io::BufReader::new(file))?;
        let truth = parse_truth(frame.schema(), &truth_text)?;
        cases.push(LocalizationCase {
            id,
            group,
            frame,
            truth,
        });
    }
    let schema = cases
        .first()
        .map(|c| c.frame.schema().clone())
        .ok_or_else(|| Error::Csv {
            message: "dataset has no cases".to_string(),
        })?;
    Ok(Dataset {
        name,
        schema,
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SqueezeGenConfig, SqueezeGenerator};

    #[test]
    fn roundtrip_preserves_cases_and_truth() {
        let dataset = SqueezeGenerator::new(SqueezeGenConfig {
            attribute_sizes: vec![4, 4, 4],
            cases_per_group: 1,
            ..SqueezeGenConfig::default()
        })
        .generate(21);
        let dir = std::env::temp_dir().join(format!("rapminer_ds_io_{}", std::process::id()));
        save_dataset(&dataset, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();
        assert_eq!(loaded.name, dataset.name);
        assert_eq!(loaded.cases.len(), dataset.cases.len());
        for (a, b) in dataset.cases.iter().zip(&loaded.cases) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.group, b.group);
            assert_eq!(a.frame.num_rows(), b.frame.num_rows());
            assert_eq!(a.frame.num_anomalous(), b.frame.num_anomalous());
            // truth compares by rendered text (schemas are distinct objects)
            assert_eq!(mdkpi::format_truth(&a.truth), mdkpi::format_truth(&b.truth));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_directory_fails() {
        let missing = std::env::temp_dir().join("rapminer_definitely_missing_xyz");
        assert!(load_dataset(&missing).is_err());
    }
}
