//! # datasets — localization benchmarks for the RAPMiner reproduction
//!
//! Two semi-synthetic datasets drive the paper's evaluation (§V-A); this
//! crate regenerates both from their documented construction procedures:
//!
//! * [`SqueezeGenerator`] — the published Squeeze dataset's procedure:
//!   cases grouped by `(RAP dimension d, RAP count r) ∈ {1..3}²`, all RAPs
//!   of a case in one cuboid, one anomaly magnitude per case (the vertical
//!   and horizontal assumptions), noise level **B0** (clean detection);
//! * [`RapmdGenerator`] — **RAPMD**: failures injected into CDN background
//!   traffic (from the [`cdnsim`] simulator standing in for the proprietary
//!   ISP data) with *Randomness 1* (1–3 RAPs per failure, any dimensions)
//!   and *Randomness 2* (per-leaf `Dev ∈ [0.1, 0.9]` under RAPs,
//!   `Dev ∈ [−0.02, 0.09]` elsewhere; forecast set via Eq. 5);
//! * [`LocalizationCase`] / [`Dataset`] — the case model plus directory
//!   save/load in the CSV layout of `mdkpi`.
//!
//! All generation is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use datasets::{SqueezeGenerator, SqueezeGenConfig};
//!
//! let config = SqueezeGenConfig { cases_per_group: 2, ..SqueezeGenConfig::default() };
//! let dataset = SqueezeGenerator::new(config).generate(42);
//! assert_eq!(dataset.cases.len(), 2 * 9); // 9 (d, r) groups
//! let case = &dataset.cases[0];
//! assert!(!case.truth.is_empty());
//! assert!(case.frame.num_anomalous() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod io;
mod rapmd;
mod squeeze_gen;

pub use case::{Dataset, LocalizationCase};
pub use io::{load_dataset, save_dataset};
pub use rapmd::{RapmdConfig, RapmdGenerator, RAPMD_DETECTION_THRESHOLD};
pub use squeeze_gen::{SqueezeGenConfig, SqueezeGenerator};
