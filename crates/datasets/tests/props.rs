//! Property tests over the dataset generators: the construction invariants
//! of §V-A must hold for every seed and configuration.

use datasets::{RapmdConfig, RapmdGenerator, SqueezeGenConfig, SqueezeGenerator};
use proptest::prelude::*;
use timeseries::deviation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Squeeze generation: group tags match RAP structure, labels match
    /// truth coverage, and the per-case magnitude is unique (vertical
    /// assumption) for every seed.
    #[test]
    fn squeeze_invariants(seed in 0u64..1000, sizes in prop::collection::vec(4usize..=6, 3..=4)) {
        let ds = SqueezeGenerator::new(SqueezeGenConfig {
            attribute_sizes: sizes,
            cases_per_group: 1,
            ..SqueezeGenConfig::default()
        })
        .generate(seed);
        prop_assert_eq!(ds.cases.len(), 9);
        for case in &ds.cases {
            // group tag agrees with the truth set
            let inner = case.group.trim_start_matches('(').trim_end_matches(')');
            let (d, r) = inner.split_once(',').expect("tag shape");
            let (d, r): (usize, usize) = (d.parse().unwrap(), r.parse().unwrap());
            prop_assert_eq!(case.truth.len(), r);
            prop_assert!(case.truth.iter().all(|t| t.layer() == d));
            // single cuboid per case
            let cuboid = case.truth[0].cuboid();
            prop_assert!(case.truth.iter().all(|t| t.cuboid() == cuboid));
            // labels == coverage and vertical assumption
            let mut devs = Vec::new();
            for i in 0..case.frame.num_rows() {
                let covered = case
                    .truth
                    .iter()
                    .any(|t| t.matches_leaf(case.frame.row_elements(i)));
                prop_assert_eq!(case.frame.label(i), Some(covered));
                if covered {
                    devs.push((case.frame.f(i) - case.frame.v(i)) / case.frame.f(i));
                }
            }
            prop_assert!(!devs.is_empty());
            let first = devs[0];
            prop_assert!(devs.iter().all(|d| (d - first).abs() < 1e-9));
            prop_assert!((0.2 - 1e-9..=0.8 + 1e-9).contains(&first));
        }
    }

    /// RAPMD generation: Randomness 1 & 2 hold for every seed — RAP count
    /// in 1..=3, no mutual generalization, per-leaf deviations inside the
    /// configured bands, magnitudes varying within a failure.
    #[test]
    fn rapmd_invariants(seed in 0u64..1000) {
        let ds = RapmdGenerator::new(RapmdConfig {
            num_failures: 4,
            paper_topology: false,
            ..RapmdConfig::default()
        })
        .generate(seed);
        for case in &ds.cases {
            prop_assert!((1..=3).contains(&case.truth.len()));
            for a in &case.truth {
                for b in &case.truth {
                    if a != b {
                        prop_assert!(!a.generalizes(b));
                    }
                }
            }
            for i in 0..case.frame.num_rows() {
                let dev = deviation(case.frame.v(i), case.frame.f(i));
                match case.frame.label(i).expect("labelled") {
                    true => prop_assert!((0.1 - 1e-9..=0.9 + 1e-9).contains(&dev)),
                    false => prop_assert!((-0.02 - 1e-9..=0.09 + 1e-9).contains(&dev)),
                }
            }
        }
    }

    /// Disk roundtrip preserves every case for arbitrary seeds.
    #[test]
    fn save_load_roundtrip(seed in 0u64..100) {
        let ds = SqueezeGenerator::new(SqueezeGenConfig {
            attribute_sizes: vec![4, 4, 4],
            cases_per_group: 1,
            ..SqueezeGenConfig::default()
        })
        .generate(seed);
        let dir = std::env::temp_dir().join(format!(
            "rapminer_props_{}_{}",
            std::process::id(),
            seed
        ));
        datasets::save_dataset(&ds, &dir).expect("save");
        let loaded = datasets::load_dataset(&dir).expect("load");
        prop_assert_eq!(loaded.cases.len(), ds.cases.len());
        for (a, b) in ds.cases.iter().zip(&loaded.cases) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.frame.num_rows(), b.frame.num_rows());
            prop_assert_eq!(a.frame.num_anomalous(), b.frame.num_anomalous());
            prop_assert_eq!(
                mdkpi::format_truth(&a.truth),
                mdkpi::format_truth(&b.truth)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
