//! Failure-injection robustness: the paper argues that a "relatively
//! large" (not extreme) `t_conf` buys an error-tolerant search (§IV-D).
//! These tests flip labels at increasing rates and check that RAPMiner
//! degrades gracefully rather than collapsing.

use mdkpi::{Combination, ElementId, LeafFrame, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapminer::{Config, RapMiner};

/// A 4×4×4 grid with the planted RAP's descendants anomalous, then labels
/// flipped with probability `noise`.
fn noisy_frame(rap_spec: &str, noise: f64, seed: u64) -> (Schema, LeafFrame, Combination) {
    let schema = Schema::builder()
        .attribute("a", ["a1", "a2", "a3", "a4"])
        .attribute("b", ["b1", "b2", "b3", "b4"])
        .attribute("c", ["c1", "c2", "c3", "c4"])
        .build()
        .unwrap();
    let rap = schema.parse_combination(rap_spec).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = LeafFrame::builder(&schema);
    for x in 0..4u32 {
        for y in 0..4u32 {
            for z in 0..4u32 {
                let elements = [ElementId(x), ElementId(y), ElementId(z)];
                let truth = rap.matches_leaf(&elements);
                let observed = if rng.gen_bool(noise) { !truth } else { truth };
                builder.push_labelled(&elements, 1.0, 1.0, observed);
            }
        }
    }
    let frame = builder.build();
    (schema, frame, rap)
}

#[test]
fn tolerates_five_percent_label_noise() {
    let mut recovered = 0;
    let trials = 20;
    for seed in 0..trials {
        let (_, frame, rap) = noisy_frame("a=a1", 0.05, seed);
        let raps = RapMiner::new().localize(&frame, 3).expect("labelled");
        if raps.first().map(|r| &r.combination) == Some(&rap) {
            recovered += 1;
        }
    }
    assert!(
        recovered >= trials * 8 / 10,
        "only {recovered}/{trials} recoveries at 5% noise"
    );
}

#[test]
fn tolerates_noise_on_deeper_raps() {
    let mut recovered = 0;
    let trials = 20;
    for seed in 100..100 + trials {
        let (_, frame, rap) = noisy_frame("a=a2&b=b3", 0.03, seed);
        let raps = RapMiner::new().localize(&frame, 3).expect("labelled");
        if raps.iter().any(|r| r.combination == rap) {
            recovered += 1;
        }
    }
    assert!(
        recovered >= trials * 7 / 10,
        "only {recovered}/{trials} recoveries of a 2-D RAP at 3% noise"
    );
}

#[test]
fn extreme_t_conf_is_brittle_under_noise() {
    // the paper's warning: a *very* large t_conf loses error tolerance —
    // with noise, the exact RAP's confidence dips below 0.99 and the miner
    // fragments it into descendants
    let mut strict_hits = 0;
    let mut relaxed_hits = 0;
    let trials = 20;
    for seed in 200..200 + trials {
        let (_, frame, rap) = noisy_frame("a=a1", 0.08, seed);
        let strict = RapMiner::with_config(Config::new().with_t_conf(0.99).unwrap())
            .localize(&frame, 3)
            .expect("labelled");
        let relaxed = RapMiner::with_config(Config::new().with_t_conf(0.8).unwrap())
            .localize(&frame, 3)
            .expect("labelled");
        if strict.first().map(|r| &r.combination) == Some(&rap) {
            strict_hits += 1;
        }
        if relaxed.first().map(|r| &r.combination) == Some(&rap) {
            relaxed_hits += 1;
        }
    }
    assert!(
        relaxed_hits > strict_hits,
        "relaxed t_conf ({relaxed_hits}) should beat strict ({strict_hits}) under noise"
    );
}

#[test]
fn missing_leaves_do_not_break_the_search() {
    // sparse frames: drop 40% of the grid, keep labels exact
    let schema = Schema::builder()
        .attribute("a", ["a1", "a2", "a3"])
        .attribute("b", ["b1", "b2", "b3"])
        .build()
        .unwrap();
    let rap = schema.parse_combination("a=a3").unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut builder = LeafFrame::builder(&schema);
    for x in 0..3u32 {
        for y in 0..3u32 {
            if rng.gen_bool(0.4) {
                continue; // leaf never reported
            }
            let elements = [ElementId(x), ElementId(y)];
            builder.push_labelled(&elements, 1.0, 1.0, rap.matches_leaf(&elements));
        }
    }
    let frame = builder.build();
    if frame.num_anomalous() == 0 {
        return; // everything under the RAP dropped out; nothing to find
    }
    let raps = RapMiner::new().localize(&frame, 3).expect("labelled");
    assert_eq!(raps.first().map(|r| r.combination.clone()), Some(rap));
}

#[test]
fn duplicate_leaf_rows_are_tolerated() {
    // real exports sometimes repeat rows; support counting must not panic
    // and the (duplicated) anomaly still localizes
    let schema = Schema::builder()
        .attribute("a", ["a1", "a2"])
        .attribute("b", ["b1", "b2"])
        .build()
        .unwrap();
    let mut builder = LeafFrame::builder(&schema);
    for _ in 0..3 {
        builder.push_labelled(&[ElementId(0), ElementId(0)], 1.0, 9.0, true);
        builder.push_labelled(&[ElementId(0), ElementId(1)], 1.0, 9.0, true);
        builder.push_labelled(&[ElementId(1), ElementId(0)], 9.0, 9.0, false);
        builder.push_labelled(&[ElementId(1), ElementId(1)], 9.0, 9.0, false);
    }
    let frame = builder.build();
    let raps = RapMiner::new().localize(&frame, 2).expect("labelled");
    assert_eq!(raps[0].combination.to_string(), "(a1, *)");
}

#[test]
fn single_attribute_schema_works() {
    let schema = Schema::builder()
        .attribute("only", ["x", "y", "z"])
        .build()
        .unwrap();
    let mut builder = LeafFrame::builder(&schema);
    builder.push_labelled(&[ElementId(0)], 1.0, 9.0, true);
    builder.push_labelled(&[ElementId(1)], 9.0, 9.0, false);
    builder.push_labelled(&[ElementId(2)], 9.0, 9.0, false);
    let frame = builder.build();
    let raps = RapMiner::new().localize(&frame, 2).expect("labelled");
    assert_eq!(raps.len(), 1);
    assert_eq!(raps[0].combination.to_string(), "(x)");
    assert_eq!(raps[0].layer, 1);
}
