//! Property-based tests for RAPMiner's algorithmic invariants.

use mdkpi::{AttrId, Combination, ElementId, LeafFrame, LeafIndex, Schema};
use proptest::prelude::*;
use rapminer::{classification_power, Config, RapMiner};

/// A random schema with 2..=4 attributes of 2..=4 elements each (every
/// attribute has at least two elements, so no degenerate single-element
/// cuboids exist).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..=4, 2..=4).prop_map(|sizes| {
        let mut b = Schema::builder();
        for (i, n) in sizes.iter().enumerate() {
            b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
        }
        b.build().expect("valid schema")
    })
}

/// Build the full-grid leaf frame for a schema, labelling exactly the
/// descendants of `raps` anomalous.
fn planted_frame(schema: &Schema, raps: &[Combination]) -> LeafFrame {
    let n = schema.num_attributes();
    let sizes: Vec<u32> = (0..n)
        .map(|i| schema.attribute(AttrId(i as u16)).len() as u32)
        .collect();
    let mut builder = LeafFrame::builder(schema);
    let mut counters = vec![0u32; n];
    loop {
        let elements: Vec<ElementId> = counters.iter().map(|&c| ElementId(c)).collect();
        let anomalous = raps.iter().any(|r| r.matches_leaf(&elements));
        let (v, f) = if anomalous { (1.0, 10.0) } else { (10.0, 10.0) };
        builder.push_labelled(&elements, v, f, anomalous);
        // advance odometer
        let mut i = n;
        loop {
            if i == 0 {
                return builder.build();
            }
            i -= 1;
            counters[i] += 1;
            if counters[i] < sizes[i] {
                break;
            }
            counters[i] = 0;
        }
    }
}

/// A random non-root combination in the schema.
fn rap_strategy(schema: Schema) -> impl Strategy<Value = (Schema, Combination)> {
    let n = schema.num_attributes();
    let cells: Vec<_> = (0..n)
        .map(|i| {
            let len = schema.attribute(AttrId(i as u16)).len() as u32;
            prop::option::of(0..len)
        })
        .collect();
    (Just(schema), cells).prop_filter_map("non-root", |(schema, cells)| {
        if cells.iter().all(Option::is_none) {
            return None;
        }
        let combo = Combination::from_pairs(
            &schema,
            cells
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|e| (AttrId(i as u16), ElementId(e)))),
        );
        Some((schema, combo))
    })
}

proptest! {
    /// A single planted RAP over a clean full grid is recovered exactly —
    /// with redundant attribute deletion enabled.
    #[test]
    fn single_planted_rap_is_recovered(
        (schema, rap) in schema_strategy().prop_flat_map(rap_strategy),
    ) {
        let frame = planted_frame(&schema, std::slice::from_ref(&rap));
        let raps = RapMiner::new().localize(&frame, 10).expect("labelled");
        prop_assert_eq!(raps.len(), 1, "expected exactly the planted RAP");
        prop_assert_eq!(&raps[0].combination, &rap);
        prop_assert_eq!(raps[0].confidence, 1.0);
        prop_assert_eq!(raps[0].layer, rap.layer());
    }

    /// Multiple planted RAPs in the same cuboid with pairwise disjoint
    /// elements are all recovered. Planted attributes need ≥ 3 elements —
    /// otherwise two RAPs cover every element of an attribute and the
    /// complementary cuboid's patterns become an equally valid RAP set
    /// (Definition 1 does not distinguish them).
    #[test]
    fn disjoint_same_cuboid_raps_recovered(
        schema in prop::collection::vec(3usize..=4, 2..=4).prop_map(|sizes| {
            let mut b = Schema::builder();
            for (i, n) in sizes.iter().enumerate() {
                b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
            }
            b.build().expect("valid schema")
        }),
        num_raps in 2usize..=2,
        use_two_attrs in any::<bool>(),
    ) {
        // plant RAPs over the first one or two attributes with distinct
        // elements per attribute; 2 RAPs always fit (every attr has >= 2
        // elements)
        let attrs: Vec<AttrId> = if use_two_attrs && schema.num_attributes() >= 2 {
            vec![AttrId(0), AttrId(1)]
        } else {
            vec![AttrId(0)]
        };
        let raps: Vec<Combination> = (0..num_raps)
            .map(|i| {
                Combination::from_pairs(
                    &schema,
                    attrs.iter().map(|&a| (a, ElementId(i as u32))),
                )
            })
            .collect();
        let frame = planted_frame(&schema, &raps);
        let found = RapMiner::new().localize(&frame, 10).expect("labelled");
        let found_set: std::collections::HashSet<_> =
            found.iter().map(|r| r.combination.clone()).collect();
        for rap in &raps {
            prop_assert!(found_set.contains(rap), "missing {rap}, got {found_set:?}");
        }
        prop_assert_eq!(found.len(), raps.len(), "spurious candidates: {:?}", found_set);
    }

    /// Soundness on arbitrary noisy labels: every returned RAP satisfies
    /// Criteria 2 when re-checked, no RAP is an ancestor of another, and
    /// results are ranked by score.
    #[test]
    fn results_are_sound_on_noisy_labels(
        (schema, labels_seed) in schema_strategy().prop_flat_map(|s| {
            let leaves = s.num_leaves() as usize;
            (Just(s), prop::collection::vec(any::<bool>(), leaves))
        }),
    ) {
        let no_raps: [Combination; 0] = [];
        let mut frame = planted_frame(&schema, &no_raps);
        frame.set_labels(labels_seed).expect("right length");
        let config = Config::new().with_t_conf(0.7).unwrap();
        let miner = RapMiner::with_config(config);
        let raps = miner.localize(&frame, 50).expect("labelled");
        let index = LeafIndex::new(&frame);
        for r in &raps {
            prop_assert!(
                index.confidence(&r.combination) > 0.7,
                "criteria 2 violated for {}",
                r.combination
            );
            prop_assert!((r.score - r.confidence / (r.layer as f64).sqrt()).abs() < 1e-12);
        }
        for a in &raps {
            for b in &raps {
                if a.combination != b.combination {
                    prop_assert!(
                        !a.combination.is_ancestor_of(&b.combination),
                        "{} is an ancestor of {}",
                        a.combination,
                        b.combination
                    );
                }
            }
        }
        for w in raps.windows(2) {
            prop_assert!(w[0].score >= w[1].score, "ranking not descending");
        }
    }

    /// Classification power of attributes outside a planted RAP is zero on
    /// a clean full grid, and positive for attributes inside it
    /// (Insight 1 / Criteria 1).
    #[test]
    fn cp_separates_rap_attributes(
        (schema, rap) in schema_strategy().prop_flat_map(rap_strategy),
    ) {
        let frame = planted_frame(&schema, std::slice::from_ref(&rap));
        let index = LeafIndex::new(&frame);
        for attr in schema.attr_ids() {
            let cp = classification_power(&frame, &index, attr);
            prop_assert!((0.0..=1.0).contains(&cp));
            if rap.get(attr).is_some() {
                prop_assert!(cp > 0.0, "RAP attribute {attr} has zero CP");
            } else {
                prop_assert!(cp.abs() < 1e-9, "non-RAP attribute {attr} has CP {cp}");
            }
        }
    }

    /// Early-stop soundness: when the miner reports an early stop, its
    /// candidate set (before top-k truncation) covers every anomalous leaf.
    #[test]
    fn early_stop_implies_coverage(
        (schema, labels) in schema_strategy().prop_flat_map(|s| {
            let leaves = s.num_leaves() as usize;
            (Just(s), prop::collection::vec(any::<bool>(), leaves))
        }),
    ) {
        let no_raps: [Combination; 0] = [];
        let mut frame = planted_frame(&schema, &no_raps);
        frame.set_labels(labels).expect("right length");
        let miner = RapMiner::with_config(Config::new().with_t_conf(0.7).unwrap());
        let (raps, stats) = miner.localize_with_stats(&frame, usize::MAX).expect("labelled");
        if stats.early_stopped {
            for i in 0..frame.num_rows() {
                if frame.label(i) == Some(true) {
                    let covered = raps
                        .iter()
                        .any(|r| r.combination.matches_leaf(frame.row_elements(i)));
                    prop_assert!(covered, "anomalous row {i} uncovered after early stop");
                }
            }
        }
    }

    /// Ablation consistency: disabling deletion or early stop never changes
    /// the top-1 result on clean planted data.
    #[test]
    fn ablations_agree_on_clean_data(
        (schema, rap) in schema_strategy().prop_flat_map(rap_strategy),
    ) {
        let frame = planted_frame(&schema, std::slice::from_ref(&rap));
        let full = RapMiner::new().localize(&frame, 1).expect("labelled");
        let no_del = RapMiner::with_config(Config::new().with_redundant_deletion(false))
            .localize(&frame, 1)
            .expect("labelled");
        let no_stop = RapMiner::with_config(Config::new().with_early_stop(false))
            .localize(&frame, 1)
            .expect("labelled");
        prop_assert_eq!(&full[0].combination, &no_del[0].combination);
        prop_assert_eq!(&full[0].combination, &no_stop[0].combination);
    }
}
