//! Property tests for the parallel localization core: on random frames,
//! the work-stealing pool must produce output *identical* to the serial
//! algorithm — same ranked RAPs, same scores, same search counters, same
//! trace — for every thread count, including when the search is cancelled
//! part-way through.
//!
//! This is the determinism contract of `search.rs` (`DESIGN.md` §13)
//! exercised adversarially rather than on hand-picked fixtures.

use std::cell::Cell;

use mdkpi::{AttrId, Combination, ElementId, LeafFrame, Schema};
use proptest::prelude::*;
use rapminer::{Config, LocalizationTrace, RapMiner};

/// Compare everything in a trace except the wall-clock timing fields,
/// which legitimately differ between runs.
fn assert_traces_agree(a: &LocalizationTrace, b: &LocalizationTrace) -> Result<(), String> {
    prop_assert_eq!(&a.attrs, &b.attrs, "attribute CP breakdown diverged");
    prop_assert_eq!(&a.layers, &b.layers, "per-layer trace diverged");
    prop_assert_eq!(&a.candidates, &b.candidates, "candidate trace diverged");
    prop_assert_eq!(a.stats, b.stats, "search counters diverged");
    Ok(())
}

/// A random schema with 2..=4 attributes of 2..=4 elements each.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..=4, 2..=4).prop_map(|sizes| {
        let mut b = Schema::builder();
        for (i, n) in sizes.iter().enumerate() {
            b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
        }
        b.build().expect("valid schema")
    })
}

/// The full-grid frame for a schema with caller-provided labels.
fn labelled_grid(schema: &Schema, labels: Vec<bool>) -> LeafFrame {
    let n = schema.num_attributes();
    let sizes: Vec<u32> = (0..n)
        .map(|i| schema.attribute(AttrId(i as u16)).len() as u32)
        .collect();
    let mut builder = LeafFrame::builder(schema);
    let mut counters = vec![0u32; n];
    'rows: loop {
        let elements: Vec<ElementId> = counters.iter().map(|&c| ElementId(c)).collect();
        builder.push(&elements, 1.0, 10.0);
        let mut i = n;
        loop {
            if i == 0 {
                break 'rows;
            }
            i -= 1;
            counters[i] += 1;
            if counters[i] < sizes[i] {
                break;
            }
            counters[i] = 0;
        }
    }
    let mut frame = builder.build();
    frame.set_labels(labels).expect("one label per grid cell");
    frame
}

/// A random-frame strategy: random schema, random labels over its grid.
fn frame_strategy() -> impl Strategy<Value = LeafFrame> {
    schema_strategy().prop_flat_map(|s| {
        let leaves = s.num_leaves() as usize;
        prop::collection::vec(any::<bool>(), leaves)
            .prop_map(move |labels| labelled_grid(&s, labels))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel and serial localization agree exactly on random frames,
    /// for 2 and 8 worker threads, with deletion and early stop enabled.
    #[test]
    fn thread_count_never_changes_output(frame in frame_strategy()) {
        let config = Config::new().with_t_conf(0.7).unwrap();
        let serial = RapMiner::with_config(config.with_threads(1))
            .localize_traced(&frame, 10)
            .expect("labelled");
        for threads in [2usize, 8] {
            let parallel = RapMiner::with_config(config.with_threads(threads))
                .localize_traced(&frame, 10)
                .expect("labelled");
            prop_assert_eq!(&serial.0, &parallel.0, "RAPs diverged at {} threads", threads);
            assert_traces_agree(&serial.1, &parallel.1)?;
        }
    }

    /// Mid-search cancellation lands on the same layer boundary for every
    /// thread count, so even *partial* results are thread-count-invariant.
    #[test]
    fn cancellation_is_thread_count_invariant(
        frame in frame_strategy(),
        cancel_after in 0usize..=3,
    ) {
        // early stop off so deep lattices actually reach the cancel poll
        let config = Config::new()
            .with_t_conf(0.7)
            .unwrap()
            .with_early_stop(false);
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 8] {
            // fresh countdown per run: the hook trips on poll `cancel_after`
            let polls = Cell::new(0usize);
            let cancel = move || {
                let seen = polls.get();
                polls.set(seen + 1);
                seen >= cancel_after
            };
            let out = RapMiner::with_config(config.with_threads(threads))
                .localize_traced_with_cancel(&frame, 10, Some(&cancel))
                .expect("labelled");
            outputs.push(out);
        }
        let (first, rest) = outputs.split_first().expect("three runs");
        for (i, out) in rest.iter().enumerate() {
            prop_assert_eq!(&first.0, &out.0, "partial RAPs diverged (run {})", i + 1);
            assert_traces_agree(&first.1, &out.1)?;
        }
    }

    /// `localize_with_stats` (the non-traced entry) also agrees — counters
    /// included — so the cheap path is exactly as deterministic as the
    /// traced one.
    #[test]
    fn stats_path_agrees_across_threads(frame in frame_strategy()) {
        let config = Config::new().with_t_conf(0.7).unwrap();
        let (serial_raps, serial_stats) = RapMiner::with_config(config.with_threads(1))
            .localize_with_stats(&frame, 10)
            .expect("labelled");
        for threads in [2usize, 8] {
            let (raps, stats) = RapMiner::with_config(config.with_threads(threads))
                .localize_with_stats(&frame, 10)
                .expect("labelled");
            prop_assert_eq!(&serial_raps, &raps);
            prop_assert_eq!(serial_stats, stats);
        }
        // sanity: the serial result is itself well-formed
        for w in serial_raps.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        let _ = Combination::from_pairs(frame.schema(), []); // schema still usable
    }
}
