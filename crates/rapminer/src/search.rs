use mdkpi::{aggregate_labels, Bitset, Combination, CuboidLattice, LeafFrame, LeafIndex};

use crate::config::Config;
use crate::trace::{CandidateTrace, LayerTrace, LocalizationTrace};

/// One mined root anomaly pattern with its ranking metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRap {
    /// The root anomaly pattern.
    pub combination: Combination,
    /// `Confidence(ac ⇒ Anomaly)` at discovery time (Criteria 2).
    pub confidence: f64,
    /// The cuboid layer the pattern lives in (1-based).
    pub layer: usize,
    /// The paper's Eq. 3 ranking score, `confidence / √layer`.
    pub score: f64,
}

impl std::fmt::Display for MinedRap {
    /// Renders like `"(L1, *, *, Site1)  [confidence 1.00, layer 2, score 0.707]"`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}  [confidence {:.2}, layer {}, score {:.3}]",
            self.combination, self.confidence, self.layer, self.score
        )
    }
}

/// Diagnostics of one [`crate::RapMiner::localize_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Attributes removed by Algorithm 1.
    pub attrs_deleted: usize,
    /// Cuboids whose combinations were enumerated.
    pub cuboids_visited: usize,
    /// Attribute combinations evaluated against Criteria 2.
    pub combos_visited: usize,
    /// RAP candidates collected before ranking.
    pub candidates_found: usize,
    /// Whether the early stop fired (candidates covered every anomalous
    /// leaf before the lattice was exhausted).
    pub early_stopped: bool,
    /// Whether a caller-supplied cancellation hook (e.g. a localization
    /// deadline) stopped the search between layers; the results cover only
    /// the layers completed before cancellation.
    pub cancelled: bool,
}

/// The paper's Eq. 3: `RAPScore = Confidence(ac ⇒ Anomaly) / √Layer`.
///
/// Deeper (more specific) candidates are demoted because the probability of
/// being the *root* cause is negatively correlated with the layer.
///
/// # Panics
///
/// Panics if `layer` is zero (the root combination is never a candidate).
///
/// ```
/// use rapminer::rap_score;
/// assert!(rap_score(1.0, 1) > rap_score(1.0, 4));
/// assert_eq!(rap_score(0.8, 4), 0.4);
/// ```
pub fn rap_score(confidence: f64, layer: usize) -> f64 {
    assert!(layer > 0, "layer must be at least 1");
    confidence / (layer as f64).sqrt()
}

/// Algorithm 2: anomaly-confidence-guided layer-by-layer top-down search
/// over the cuboid lattice of `attrs`.
///
/// Within each cuboid only combinations that actually occur in the data are
/// evaluated (a zero-support combination has zero confidence by
/// definition), so the per-cuboid cost is `O(rows)` instead of the
/// cuboid's full Cartesian size.
///
/// `cancel` is polled once per BFS layer (the natural preemption points of
/// Algorithm 2); when it returns `true` the search stops, marks
/// [`SearchStats::cancelled`], and ranks whatever candidates the completed
/// layers produced — a partial but well-formed answer.
#[allow(clippy::too_many_arguments)] // crate-internal; mirrors Algorithm 2's inputs
pub(crate) fn top_down_search(
    frame: &LeafFrame,
    index: &LeafIndex,
    attrs: &[mdkpi::AttrId],
    config: &Config,
    k: usize,
    stats: &mut SearchStats,
    mut trace: Option<&mut LocalizationTrace>,
    cancel: Option<&dyn Fn() -> bool>,
) -> Vec<MinedRap> {
    let search_span = obs::span("rapminer.search");
    search_span.record("attrs", attrs.len());
    let anomalous = index
        .anomalous_rows()
        .expect("caller verified the frame is labelled");
    if anomalous.is_zero() || attrs.is_empty() {
        return Vec::new();
    }
    let lattice = CuboidLattice::over_attrs(attrs.iter().copied());
    let mut candidates: Vec<MinedRap> = Vec::new();
    let mut covered = Bitset::new(frame.num_rows());

    for layer in 1..=lattice.num_layers() {
        if cancel.is_some_and(|c| c()) {
            stats.cancelled = true;
            search_span.record("cancelled", true);
            break;
        }
        // fault injection: stall one layer to drive deadline tests
        obs::fail::apply("slow-localize");
        let layer_span = obs::span("rapminer.layer");
        layer_span.record("layer", layer);
        let at_entry = *stats;
        let mut stop = false;
        'cuboids: for &cuboid in lattice.layer(layer) {
            stats.cuboids_visited += 1;
            for (ac, support, anom_support) in aggregate_labels(frame, cuboid) {
                // Criteria 3: descendants of an accepted RAP are pruned.
                if candidates.iter().any(|c| c.combination.generalizes(&ac)) {
                    continue;
                }
                stats.combos_visited += 1;
                if support == 0 {
                    continue;
                }
                let confidence = anom_support as f64 / support as f64;
                // Criteria 2: the combination is anomalous.
                if confidence > config.t_conf() {
                    covered.union_with(&index.rows_matching(&ac));
                    if obs::enabled() {
                        obs::debug(
                            "rapminer.search",
                            "candidate",
                            &[
                                ("combination", obs::Value::from(ac.to_string())),
                                ("confidence", obs::Value::from(confidence)),
                                ("layer", obs::Value::from(layer)),
                            ],
                        );
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.candidates.push(CandidateTrace {
                            combination: ac.to_string(),
                            confidence,
                            layer,
                            score: rap_score(confidence, layer),
                            kept: false, // resolved after the top-k cut
                        });
                    }
                    candidates.push(MinedRap {
                        score: rap_score(confidence, layer),
                        combination: ac,
                        confidence,
                        layer,
                    });
                    stats.candidates_found += 1;
                    // Early stop: every anomalous leaf is explained.
                    if config.early_stop() && anomalous.is_subset_of(&covered) {
                        stats.early_stopped = true;
                        stop = true;
                        break 'cuboids;
                    }
                }
            }
        }
        let in_layer = LayerTrace {
            layer,
            cuboids: stats.cuboids_visited - at_entry.cuboids_visited,
            combos: stats.combos_visited - at_entry.combos_visited,
            candidates: stats.candidates_found - at_entry.candidates_found,
        };
        layer_span.record("cuboids", in_layer.cuboids);
        layer_span.record("combos", in_layer.combos);
        layer_span.record("candidates", in_layer.candidates);
        if let Some(t) = trace.as_deref_mut() {
            t.layers.push(in_layer);
        }
        if stop {
            break;
        }
    }

    // Rank by RAPScore descending; break ties deterministically by the
    // combination's total order so results are stable run-to-run.
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.combination.cmp(&b.combination))
    });
    candidates.truncate(k);
    if let Some(t) = trace {
        for c in &mut t.candidates {
            c.kept = candidates
                .iter()
                .any(|r| r.layer == c.layer && r.combination.to_string() == c.combination);
        }
    }
    search_span.record("cuboids", stats.cuboids_visited);
    search_span.record("combos", stats.combos_visited);
    search_span.record("candidates", stats.candidates_found);
    search_span.record("early_stopped", stats.early_stopped);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RapMiner;
    use mdkpi::{ElementId, Schema};

    /// The paper's Fig. 7 / Table V scenario: attributes a(3), b(2), c(2);
    /// ground-truth RAPs (a1, *, *) and (a2, b2, *).
    fn fig7_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    let anomalous = a == 0 || (a == 1 && b == 1);
                    let (v, f) = if anomalous { (1.0, 10.0) } else { (10.0, 10.0) };
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        v,
                        f,
                        anomalous,
                    );
                }
            }
        }
        builder.build()
    }

    #[test]
    fn fig7_raps_are_recovered_exactly() {
        let frame = fig7_frame();
        // Disable attribute deletion: all three attributes matter here
        // (CP of `a` is high; b participates in one RAP).
        let miner = RapMiner::with_config(Config::new().with_redundant_deletion(false));
        let raps = miner.localize(&frame, 5).unwrap();
        let found: Vec<String> = raps.iter().map(|r| r.combination.to_string()).collect();
        assert!(
            found.contains(&"(a1, *, *)".to_string()),
            "found: {found:?}"
        );
        assert!(
            found.contains(&"(a2, b2, *)".to_string()),
            "found: {found:?}"
        );
        // descendants must have been pruned, so exactly the two RAPs remain
        assert_eq!(raps.len(), 2, "found: {found:?}");
        // the shallower RAP ranks first (same confidence, smaller layer)
        assert_eq!(raps[0].combination.to_string(), "(a1, *, *)");
        assert!(raps[0].score > raps[1].score);
    }

    #[test]
    fn descendants_of_raps_are_pruned() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (raps, stats) = miner.localize_with_stats(&frame, 50).unwrap();
        // nothing below (a1, *, *) like (a1, b1, *) may appear
        for r in &raps {
            assert!(
                !r.combination.to_string().starts_with("(a1, b"),
                "unpruned descendant {}",
                r.combination
            );
        }
        assert!(stats.candidates_found >= 2);
    }

    #[test]
    fn early_stop_reduces_visited_combinations() {
        let frame = fig7_frame();
        let with_stop = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(true),
        );
        let without_stop = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (r1, s1) = with_stop.localize_with_stats(&frame, 5).unwrap();
        let (r2, s2) = without_stop.localize_with_stats(&frame, 5).unwrap();
        assert!(s1.early_stopped);
        assert!(!s2.early_stopped);
        assert!(s1.combos_visited <= s2.combos_visited);
        // same answer either way
        assert_eq!(
            r1.iter().map(|r| r.combination.clone()).collect::<Vec<_>>(),
            r2.iter().map(|r| r.combination.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_normal_frame_returns_empty() {
        let mut frame = fig7_frame();
        frame.set_labels(vec![false; frame.num_rows()]).unwrap();
        let raps = RapMiner::new().localize(&frame, 5).unwrap();
        assert!(raps.is_empty());
    }

    #[test]
    fn all_anomalous_frame_blames_a_coarse_pattern() {
        let mut frame = fig7_frame();
        frame.set_labels(vec![true; frame.num_rows()]).unwrap();
        // CP is 0 everywhere (labels are constant), so Algorithm 1 keeps
        // one fallback attribute; the search then finds layer-1 patterns
        // covering everything.
        let raps = RapMiner::new().localize(&frame, 10).unwrap();
        assert!(!raps.is_empty());
        assert!(raps.iter().all(|r| r.layer == 1));
        assert!(raps.iter().all(|r| r.confidence == 1.0));
    }

    #[test]
    fn unlabelled_frame_is_an_error() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        assert!(matches!(
            RapMiner::new().localize(&frame, 3),
            Err(crate::Error::UnlabelledFrame)
        ));
    }

    #[test]
    fn k_truncates_ranked_output() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(Config::new().with_redundant_deletion(false));
        let top1 = miner.localize(&frame, 1).unwrap();
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].combination.to_string(), "(a1, *, *)");
        let top0 = miner.localize(&frame, 0).unwrap();
        assert!(top0.is_empty());
    }

    #[test]
    fn redundant_deletion_shrinks_search() {
        // anomaly is purely (a1, *, *): b and c are redundant.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        1.0,
                        1.0,
                        a == 0,
                    );
                }
            }
        }
        let frame = builder.build();
        // disable early stop so the cuboid counts reflect the lattice sizes
        let with_del = RapMiner::with_config(Config::new().with_early_stop(false));
        let without_del = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (r1, s1) = with_del.localize_with_stats(&frame, 3).unwrap();
        let (r2, s2) = without_del.localize_with_stats(&frame, 3).unwrap();
        assert_eq!(s1.attrs_deleted, 2);
        assert!(s1.cuboids_visited < s2.cuboids_visited);
        assert_eq!(r1[0].combination.to_string(), "(a1, *, *)");
        assert_eq!(r2[0].combination.to_string(), "(a1, *, *)");
    }

    #[test]
    fn confidence_threshold_gates_noisy_patterns() {
        // (a1, *) has 3 of 4 leaves anomalous: conf = 0.75.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3", "b4"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..4u32 {
                let anomalous = a == 0 && b < 3;
                builder.push_labelled(&[ElementId(a), ElementId(b)], 1.0, 1.0, anomalous);
            }
        }
        let frame = builder.build();
        // strict threshold: (a1, *) is rejected, the three leaves win
        let strict = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_t_conf(0.8)
                .unwrap(),
        );
        let raps = strict.localize(&frame, 10).unwrap();
        assert!(raps.iter().all(|r| r.layer == 2), "got {raps:?}");
        assert_eq!(raps.len(), 3);
        // tolerant threshold: (a1, *) is accepted and covers everything
        let tolerant = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_t_conf(0.7)
                .unwrap(),
        );
        let raps = tolerant.localize(&frame, 10).unwrap();
        assert_eq!(raps.len(), 1);
        assert_eq!(raps[0].combination.to_string(), "(a1, *)");
        assert!((raps[0].confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rap_score_matches_eq3() {
        assert!((rap_score(0.9, 2) - 0.9 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "layer")]
    fn rap_score_rejects_layer_zero() {
        rap_score(1.0, 0);
    }

    #[test]
    fn traced_run_matches_stats_and_output() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (raps, trace) = miner.localize_traced(&frame, 5).unwrap();
        let (plain, stats) = miner.localize_with_stats(&frame, 5).unwrap();
        assert_eq!(raps, plain, "tracing must not change the answer");
        assert_eq!(trace.stats, stats);
        assert!(trace.is_consistent(), "trace: {trace:?}");
        let kept = trace.candidates.iter().filter(|c| c.kept).count();
        assert_eq!(kept, raps.len());
        assert_eq!(trace.attrs.len(), 3, "all attrs get a CP entry");
        assert!(trace.attrs.iter().all(|a| !a.deleted));
        assert!(trace.cp_seconds >= 0.0 && trace.search_seconds >= 0.0);
        // every accepted candidate carries its discovery confidence
        for c in &trace.candidates {
            assert!(c.confidence > miner.config().t_conf());
            assert!((c.score - rap_score(c.confidence, c.layer)).abs() < 1e-12);
        }
    }

    #[test]
    fn traced_run_reports_deleted_attributes() {
        // anomaly is purely (a1, *, *): b and c are redundant.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        1.0,
                        1.0,
                        a == 0,
                    );
                }
            }
        }
        let frame = builder.build();
        let (raps, trace) = RapMiner::new().localize_traced(&frame, 3).unwrap();
        assert_eq!(raps[0].combination.to_string(), "(a1, *, *)");
        assert_eq!(trace.deleted_attributes(), vec!["b", "c"]);
        assert_eq!(trace.stats.attrs_deleted, 2);
        assert!(trace.is_consistent(), "trace: {trace:?}");
        assert!(!trace.layers.is_empty());
        // kept attr leads and has the highest CP
        assert_eq!(trace.attrs[0].attribute, "a");
        assert!(trace.attrs[0].cp > trace.attrs[1].cp);
    }

    #[test]
    fn cancellation_between_layers_yields_partial_results() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        // cancel immediately: no layers run, no candidates, flag set
        let (raps, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&|| true))
            .unwrap();
        assert!(raps.is_empty());
        assert!(trace.stats.cancelled);
        assert!(trace.layers.is_empty());
        assert!(trace.is_consistent(), "trace: {trace:?}");
        // cancel after the first poll: exactly one layer completes and its
        // candidates are still ranked and returned
        let calls = std::cell::Cell::new(0u32);
        let cancel = move || {
            let n = calls.get();
            calls.set(n + 1);
            n >= 1
        };
        let (raps, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&cancel))
            .unwrap();
        assert!(trace.stats.cancelled);
        assert_eq!(trace.layers.len(), 1);
        assert!(
            raps.iter()
                .any(|r| r.combination.to_string() == "(a1, *, *)"),
            "layer-1 RAP must survive cancellation: {raps:?}"
        );
        assert!(trace.is_consistent(), "trace: {trace:?}");
        // a hook that never fires leaves the run unmarked
        let (_, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&|| false))
            .unwrap();
        assert!(!trace.stats.cancelled);
    }

    #[test]
    fn results_are_deterministic() {
        let frame = fig7_frame();
        let miner = RapMiner::new();
        let a = miner.localize(&frame, 5).unwrap();
        let b = miner.localize(&frame, 5).unwrap();
        assert_eq!(a, b);
    }
}
