use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use mdkpi::{AttrId, Bitset, Combination, Cuboid, CuboidLattice, ElementId, LeafFrame, LeafIndex};

use crate::config::Config;
use crate::trace::{CandidateTrace, LayerTrace, LocalizationTrace};

/// Combinations whose support came from the support-count memo (a parent
/// bitset ANDed with one posting — layers ≥ 2). Process-wide, cumulative.
static MEMO_SERVED: AtomicU64 = AtomicU64::new(0);
/// Combinations whose support was read from scratch off the index postings
/// (layer 1, where no memo exists yet). Process-wide, cumulative.
static MEMO_SCRATCH: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide support-count memo counters, serving rapd's
/// `debug` introspection verb.
///
/// These are diagnostics only: they are **never** part of localization
/// output or [`SearchStats`], so the byte-identical determinism guarantee
/// across thread counts is unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Combinations evaluated via the memo (one bitset AND per child).
    pub served: u64,
    /// Combinations evaluated from scratch (layer-1 posting scans).
    pub scratch: u64,
}

impl MemoStats {
    /// Fraction of evaluated combinations the memo served, in `[0, 1]`
    /// (`0.0` before any search has run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.served + self.scratch;
        if total == 0 {
            0.0
        } else {
            self.served as f64 / total as f64
        }
    }
}

/// Snapshot the process-wide [`MemoStats`] counters.
pub fn memo_stats() -> MemoStats {
    MemoStats {
        served: MEMO_SERVED.load(Ordering::Relaxed),
        scratch: MEMO_SCRATCH.load(Ordering::Relaxed),
    }
}

/// One mined root anomaly pattern with its ranking metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRap {
    /// The root anomaly pattern.
    pub combination: Combination,
    /// `Confidence(ac ⇒ Anomaly)` at discovery time (Criteria 2).
    pub confidence: f64,
    /// The cuboid layer the pattern lives in (1-based).
    pub layer: usize,
    /// The paper's Eq. 3 ranking score, `confidence / √layer`.
    pub score: f64,
}

impl std::fmt::Display for MinedRap {
    /// Renders like `"(L1, *, *, Site1)  [confidence 1.00, layer 2, score 0.707]"`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}  [confidence {:.2}, layer {}, score {:.3}]",
            self.combination, self.confidence, self.layer, self.score
        )
    }
}

/// Diagnostics of one [`crate::RapMiner::localize_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Attributes removed by Algorithm 1.
    pub attrs_deleted: usize,
    /// Cuboids whose combinations were enumerated.
    pub cuboids_visited: usize,
    /// Attribute combinations evaluated against Criteria 2.
    pub combos_visited: usize,
    /// RAP candidates collected before ranking.
    pub candidates_found: usize,
    /// Whether the early stop fired (candidates covered every anomalous
    /// leaf before the lattice was exhausted).
    pub early_stopped: bool,
    /// Whether a caller-supplied cancellation hook (e.g. a localization
    /// deadline) stopped the search between layers; the results cover only
    /// the layers completed before cancellation.
    pub cancelled: bool,
}

/// The paper's Eq. 3: `RAPScore = Confidence(ac ⇒ Anomaly) / √Layer`.
///
/// Deeper (more specific) candidates are demoted because the probability of
/// being the *root* cause is negatively correlated with the layer.
///
/// # Panics
///
/// Panics if `layer` is zero (the root combination is never a candidate).
///
/// ```
/// use rapminer::rap_score;
/// assert!(rap_score(1.0, 1) > rap_score(1.0, 4));
/// assert_eq!(rap_score(0.8, 4), 0.4);
/// ```
pub fn rap_score(confidence: f64, layer: usize) -> f64 {
    assert!(layer > 0, "layer must be at least 1");
    confidence / (layer as f64).sqrt()
}

/// Evaluation outcome of one visited combination: produced by a worker,
/// consumed — in deterministic combination order — by the serial replay.
struct ComboOutcome {
    combination: Combination,
    support: usize,
    anom_support: usize,
    /// `rows_matching(combination)`, kept only when this cuboid seeds the
    /// next layer's enumeration (the support-count memo).
    rows: Option<Bitset>,
}

/// The enumeration source of one work unit — a contiguous slice of one
/// cuboid's support-positive combination space.
enum UnitSource<'a> {
    /// Layer 1: elements `[lo, hi)` of the cuboid's single attribute. The
    /// postings themselves are the matching-row sets; no AND is needed.
    Elements(AttrId, u32, u32),
    /// Deeper layers: each surviving parent combination of the cuboid's
    /// prefix parent, extended with every element of the cuboid's largest
    /// attribute — one bitset AND per child instead of a fresh group-by
    /// scan over every leaf row (the support-count cache).
    Parents(&'a [(Combination, Bitset)], AttrId),
}

/// One deterministic work unit of a layer.
struct WorkUnit<'a> {
    cuboid_pos: usize,
    keep_rows: bool,
    source: UnitSource<'a>,
}

/// The previous layer's visited-but-not-accepted combinations with their
/// matching-row bitsets, grouped by cuboid.
type Memo = HashMap<Cuboid, Vec<(Combination, Bitset)>>;

/// A cuboid's prefix parent (every attribute but its largest) plus that
/// largest attribute. Extending the prefix parent's combinations over the
/// largest attribute enumerates exactly the cuboid's support-positive
/// combinations, in `Combination::cmp` order: the prefix's concrete
/// positions all precede the appended one, so (parent order, element order)
/// is the combination's lexicographic cell order.
fn split_largest(cuboid: Cuboid) -> (Cuboid, AttrId) {
    let attrs: Vec<AttrId> = cuboid.attrs().collect();
    let (&last, prefix) = attrs.split_last().expect("cuboids are non-root");
    (Cuboid::from_attrs(prefix.iter().copied()), last)
}

/// Slice a layer's cuboids into work units of roughly `chunk`-sized runs of
/// enumeration sources (elements for layer 1, memo parents deeper), so the
/// pool can balance cuboids of very different sizes.
fn build_units<'a>(
    cuboids: &[Cuboid],
    layer: usize,
    memo: &'a Memo,
    prefixes: &HashSet<Cuboid>,
    frame: &LeafFrame,
    threads: usize,
) -> Vec<WorkUnit<'a>> {
    // ~8 units per worker: enough slack for stealing to smooth out skew,
    // few enough that per-unit overhead stays negligible. Chunk boundaries
    // never affect results — the replay flattens units in input order.
    const UNITS_PER_WORKER: usize = 8;
    let single_attr = |c: Cuboid| c.attrs().next().expect("cuboids are non-root");
    let sizes: Vec<usize> = cuboids
        .iter()
        .map(|&c| {
            if layer == 1 {
                frame.schema().attribute(single_attr(c)).len()
            } else {
                memo.get(&split_largest(c).0).map_or(0, Vec::len)
            }
        })
        .collect();
    let total: usize = sizes.iter().sum();
    let chunk = total
        .div_ceil(threads.saturating_mul(UNITS_PER_WORKER).max(1))
        .max(1);

    let mut units = Vec::new();
    for (pos, (&cuboid, &len)) in cuboids.iter().zip(&sizes).enumerate() {
        let keep_rows = prefixes.contains(&cuboid);
        let mut lo = 0;
        while lo < len {
            let hi = (lo + chunk).min(len);
            let source = if layer == 1 {
                UnitSource::Elements(single_attr(cuboid), lo as u32, hi as u32)
            } else {
                let (prefix, last) = split_largest(cuboid);
                let parents = memo.get(&prefix).expect("len > 0 implies entry");
                UnitSource::Parents(&parents[lo..hi], last)
            };
            units.push(WorkUnit {
                cuboid_pos: pos,
                keep_rows,
                source,
            });
            lo = hi;
        }
    }
    units
}

/// Evaluate one work unit: enumerate its support-positive combinations in
/// `Combination::cmp` order, prune against the frozen candidate snapshot
/// (Criteria 3 — only earlier layers' candidates can generalize this
/// layer's combinations, so the snapshot equals what the serial loop would
/// have consulted), and count support/anomalous support from bitsets.
///
/// Workers touch no shared mutable state: stats, traces, debug events, and
/// coverage all happen in the caller's serial replay.
fn evaluate_unit(
    unit: &WorkUnit<'_>,
    frame: &LeafFrame,
    index: &LeafIndex,
    anomalous: &Bitset,
    prior: &[MinedRap],
) -> Vec<ComboOutcome> {
    let mut out = Vec::new();
    let pruned = |ac: &Combination| prior.iter().any(|c| c.combination.generalizes(ac));
    match unit.source {
        UnitSource::Elements(attr, lo, hi) => {
            for e in (lo..hi).map(ElementId) {
                let posting = index.posting(attr, e);
                if posting.is_zero() {
                    continue; // zero support: never occurs in the data
                }
                let ac = Combination::from_pairs(frame.schema(), [(attr, e)]);
                if pruned(&ac) {
                    continue;
                }
                out.push(ComboOutcome {
                    support: posting.count(),
                    anom_support: posting.intersection_count(anomalous),
                    rows: unit.keep_rows.then(|| posting.clone()),
                    combination: ac,
                });
            }
        }
        UnitSource::Parents(parents, last) => {
            let elements: Vec<ElementId> = frame.schema().attribute(last).element_ids().collect();
            for (q, q_rows) in parents {
                for &e in &elements {
                    let mut rows = q_rows.clone();
                    rows.intersect_with(index.posting(last, e));
                    if rows.is_zero() {
                        continue;
                    }
                    let ac = q.with_cell(last, Some(e));
                    if pruned(&ac) {
                        continue;
                    }
                    out.push(ComboOutcome {
                        support: rows.count(),
                        anom_support: rows.intersection_count(anomalous),
                        rows: unit.keep_rows.then_some(rows),
                        combination: ac,
                    });
                }
            }
        }
    }
    out
}

/// Algorithm 2: anomaly-confidence-guided layer-by-layer top-down search
/// over the cuboid lattice of `attrs`.
///
/// Within each cuboid only combinations that actually occur in the data are
/// evaluated (a zero-support combination has zero confidence by
/// definition): layer 1 reads them straight off the index postings, deeper
/// layers extend the previous layer's surviving combinations via the
/// support-count memo, one bitset AND per child.
///
/// Each layer is evaluated by `pool` in parallel work units and then
/// **replayed serially in combination order** — counters, traces, debug
/// events, coverage, and the early stop all happen in the replay, so the
/// output is byte-identical to the serial algorithm for every thread count
/// (the determinism argument lives in `DESIGN.md` §13).
///
/// `cancel` is polled once per BFS layer (the natural preemption points of
/// Algorithm 2, and the layer barriers of the parallel evaluation); when it
/// returns `true` the search stops, marks [`SearchStats::cancelled`], and
/// ranks whatever candidates the completed layers produced — a partial but
/// well-formed answer.
#[allow(clippy::too_many_arguments)] // crate-internal; mirrors Algorithm 2's inputs
pub(crate) fn top_down_search(
    frame: &LeafFrame,
    index: &LeafIndex,
    attrs: &[mdkpi::AttrId],
    config: &Config,
    k: usize,
    stats: &mut SearchStats,
    mut trace: Option<&mut LocalizationTrace>,
    cancel: Option<&dyn Fn() -> bool>,
    pool: &par::Pool,
) -> Vec<MinedRap> {
    let search_span = obs::span("rapminer.search");
    search_span.record("attrs", attrs.len());
    let anomalous = index
        .anomalous_rows()
        .expect("caller verified the frame is labelled");
    if anomalous.is_zero() || attrs.is_empty() {
        return Vec::new();
    }
    let lattice = CuboidLattice::over_attrs(attrs.iter().copied());
    let mut candidates: Vec<MinedRap> = Vec::new();
    let mut covered = Bitset::new(frame.num_rows());
    let mut memo: Memo = HashMap::new();

    for layer in 1..=lattice.num_layers() {
        if cancel.is_some_and(|c| c()) {
            stats.cancelled = true;
            search_span.record("cancelled", true);
            break;
        }
        // fault injection: stall one layer to drive deadline tests
        obs::fail::apply("slow-localize");
        let layer_span = obs::span("rapminer.layer");
        layer_span.record("layer", layer);
        let at_entry = *stats;
        let mut stop = false;

        let cuboids = lattice.layer(layer);
        // Only cuboids that seed next layer's enumeration need their
        // survivors' row bitsets carried across the layer barrier.
        let prefixes: HashSet<Cuboid> = if layer < lattice.num_layers() {
            lattice
                .layer(layer + 1)
                .iter()
                .map(|&c| split_largest(c).0)
                .collect()
        } else {
            HashSet::new()
        };
        let units = build_units(cuboids, layer, &memo, &prefixes, frame, pool.threads());
        // Parallel half of the layer. Workers read the frozen candidate
        // snapshot; distinct same-layer combinations can never generalize
        // each other, so the snapshot equals serial's incremental check.
        let outcomes = pool.map(&units, |_, unit| {
            evaluate_unit(unit, frame, index, anomalous, &candidates)
        });
        let mut per_cuboid: Vec<Vec<ComboOutcome>> =
            (0..cuboids.len()).map(|_| Vec::new()).collect();
        for (unit, outs) in units.iter().zip(outcomes) {
            per_cuboid[unit.cuboid_pos].extend(outs);
        }

        // Serial replay: identical control flow to the serial algorithm,
        // including where exactly the early stop lands mid-layer.
        let mut next_memo: Memo = HashMap::new();
        'cuboids: for (pos, &cuboid) in cuboids.iter().enumerate() {
            stats.cuboids_visited += 1;
            for outcome in per_cuboid[pos].drain(..) {
                stats.combos_visited += 1;
                let ComboOutcome {
                    combination: ac,
                    support,
                    anom_support,
                    rows,
                } = outcome;
                let confidence = anom_support as f64 / support as f64;
                // Criteria 2: the combination is anomalous.
                if confidence > config.t_conf() {
                    match &rows {
                        Some(r) => covered.union_with(r),
                        None => covered.union_with(&index.rows_matching(&ac)),
                    }
                    if obs::event_enabled(obs::Level::Debug) {
                        obs::debug(
                            "rapminer.search",
                            "candidate",
                            &[
                                ("combination", obs::Value::from(ac.to_string())),
                                ("confidence", obs::Value::from(confidence)),
                                ("layer", obs::Value::from(layer)),
                            ],
                        );
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.candidates.push(CandidateTrace {
                            combination: ac.to_string(),
                            confidence,
                            layer,
                            score: rap_score(confidence, layer),
                            kept: false, // resolved after the top-k cut
                        });
                    }
                    candidates.push(MinedRap {
                        score: rap_score(confidence, layer),
                        combination: ac,
                        confidence,
                        layer,
                    });
                    stats.candidates_found += 1;
                    // Early stop: every anomalous leaf is explained.
                    if config.early_stop() && anomalous.is_subset_of(&covered) {
                        stats.early_stopped = true;
                        stop = true;
                        break 'cuboids;
                    }
                } else if let Some(rows) = rows {
                    // Not anomalous: a live parent for the next layer.
                    // Accepted combinations are excluded, which prunes
                    // their whole subtree exactly as Criteria 3 requires.
                    next_memo.entry(cuboid).or_default().push((ac, rows));
                }
            }
        }
        memo = next_memo;
        let in_layer = LayerTrace {
            layer,
            cuboids: stats.cuboids_visited - at_entry.cuboids_visited,
            combos: stats.combos_visited - at_entry.combos_visited,
            candidates: stats.candidates_found - at_entry.candidates_found,
        };
        // Memo accounting: layer 1 enumerates from postings, deeper layers
        // from memoized parent bitsets. Side channel only — see MemoStats.
        if layer == 1 {
            MEMO_SCRATCH.fetch_add(in_layer.combos as u64, Ordering::Relaxed);
        } else {
            MEMO_SERVED.fetch_add(in_layer.combos as u64, Ordering::Relaxed);
        }
        layer_span.record("cuboids", in_layer.cuboids);
        layer_span.record("combos", in_layer.combos);
        layer_span.record("candidates", in_layer.candidates);
        if let Some(t) = trace.as_deref_mut() {
            t.layers.push(in_layer);
        }
        if stop {
            break;
        }
    }

    // Rank by RAPScore descending; break ties deterministically by the
    // combination's total order so results are stable run-to-run.
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.combination.cmp(&b.combination))
    });
    candidates.truncate(k);
    if let Some(t) = trace {
        for c in &mut t.candidates {
            c.kept = candidates
                .iter()
                .any(|r| r.layer == c.layer && r.combination.to_string() == c.combination);
        }
    }
    search_span.record("cuboids", stats.cuboids_visited);
    search_span.record("combos", stats.combos_visited);
    search_span.record("candidates", stats.candidates_found);
    search_span.record("early_stopped", stats.early_stopped);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RapMiner;
    use mdkpi::{ElementId, Schema};

    /// The paper's Fig. 7 / Table V scenario: attributes a(3), b(2), c(2);
    /// ground-truth RAPs (a1, *, *) and (a2, b2, *).
    fn fig7_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    let anomalous = a == 0 || (a == 1 && b == 1);
                    let (v, f) = if anomalous { (1.0, 10.0) } else { (10.0, 10.0) };
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        v,
                        f,
                        anomalous,
                    );
                }
            }
        }
        builder.build()
    }

    #[test]
    fn fig7_raps_are_recovered_exactly() {
        let frame = fig7_frame();
        // Disable attribute deletion: all three attributes matter here
        // (CP of `a` is high; b participates in one RAP).
        let miner = RapMiner::with_config(Config::new().with_redundant_deletion(false));
        let raps = miner.localize(&frame, 5).unwrap();
        let found: Vec<String> = raps.iter().map(|r| r.combination.to_string()).collect();
        assert!(
            found.contains(&"(a1, *, *)".to_string()),
            "found: {found:?}"
        );
        assert!(
            found.contains(&"(a2, b2, *)".to_string()),
            "found: {found:?}"
        );
        // descendants must have been pruned, so exactly the two RAPs remain
        assert_eq!(raps.len(), 2, "found: {found:?}");
        // the shallower RAP ranks first (same confidence, smaller layer)
        assert_eq!(raps[0].combination.to_string(), "(a1, *, *)");
        assert!(raps[0].score > raps[1].score);
    }

    #[test]
    fn descendants_of_raps_are_pruned() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (raps, stats) = miner.localize_with_stats(&frame, 50).unwrap();
        // nothing below (a1, *, *) like (a1, b1, *) may appear
        for r in &raps {
            assert!(
                !r.combination.to_string().starts_with("(a1, b"),
                "unpruned descendant {}",
                r.combination
            );
        }
        assert!(stats.candidates_found >= 2);
    }

    #[test]
    fn early_stop_reduces_visited_combinations() {
        let frame = fig7_frame();
        let with_stop = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(true),
        );
        let without_stop = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (r1, s1) = with_stop.localize_with_stats(&frame, 5).unwrap();
        let (r2, s2) = without_stop.localize_with_stats(&frame, 5).unwrap();
        assert!(s1.early_stopped);
        assert!(!s2.early_stopped);
        assert!(s1.combos_visited <= s2.combos_visited);
        // same answer either way
        assert_eq!(
            r1.iter().map(|r| r.combination.clone()).collect::<Vec<_>>(),
            r2.iter().map(|r| r.combination.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_normal_frame_returns_empty() {
        let mut frame = fig7_frame();
        frame.set_labels(vec![false; frame.num_rows()]).unwrap();
        let raps = RapMiner::new().localize(&frame, 5).unwrap();
        assert!(raps.is_empty());
    }

    #[test]
    fn all_anomalous_frame_blames_a_coarse_pattern() {
        let mut frame = fig7_frame();
        frame.set_labels(vec![true; frame.num_rows()]).unwrap();
        // CP is 0 everywhere (labels are constant), so Algorithm 1 keeps
        // one fallback attribute; the search then finds layer-1 patterns
        // covering everything.
        let raps = RapMiner::new().localize(&frame, 10).unwrap();
        assert!(!raps.is_empty());
        assert!(raps.iter().all(|r| r.layer == 1));
        assert!(raps.iter().all(|r| r.confidence == 1.0));
    }

    #[test]
    fn unlabelled_frame_is_an_error() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        assert!(matches!(
            RapMiner::new().localize(&frame, 3),
            Err(crate::Error::UnlabelledFrame)
        ));
    }

    #[test]
    fn k_truncates_ranked_output() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(Config::new().with_redundant_deletion(false));
        let top1 = miner.localize(&frame, 1).unwrap();
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].combination.to_string(), "(a1, *, *)");
        let top0 = miner.localize(&frame, 0).unwrap();
        assert!(top0.is_empty());
    }

    #[test]
    fn redundant_deletion_shrinks_search() {
        // anomaly is purely (a1, *, *): b and c are redundant.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        1.0,
                        1.0,
                        a == 0,
                    );
                }
            }
        }
        let frame = builder.build();
        // disable early stop so the cuboid counts reflect the lattice sizes
        let with_del = RapMiner::with_config(Config::new().with_early_stop(false));
        let without_del = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (r1, s1) = with_del.localize_with_stats(&frame, 3).unwrap();
        let (r2, s2) = without_del.localize_with_stats(&frame, 3).unwrap();
        assert_eq!(s1.attrs_deleted, 2);
        assert!(s1.cuboids_visited < s2.cuboids_visited);
        assert_eq!(r1[0].combination.to_string(), "(a1, *, *)");
        assert_eq!(r2[0].combination.to_string(), "(a1, *, *)");
    }

    #[test]
    fn confidence_threshold_gates_noisy_patterns() {
        // (a1, *) has 3 of 4 leaves anomalous: conf = 0.75.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3", "b4"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..4u32 {
                let anomalous = a == 0 && b < 3;
                builder.push_labelled(&[ElementId(a), ElementId(b)], 1.0, 1.0, anomalous);
            }
        }
        let frame = builder.build();
        // strict threshold: (a1, *) is rejected, the three leaves win
        let strict = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_t_conf(0.8)
                .unwrap(),
        );
        let raps = strict.localize(&frame, 10).unwrap();
        assert!(raps.iter().all(|r| r.layer == 2), "got {raps:?}");
        assert_eq!(raps.len(), 3);
        // tolerant threshold: (a1, *) is accepted and covers everything
        let tolerant = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_t_conf(0.7)
                .unwrap(),
        );
        let raps = tolerant.localize(&frame, 10).unwrap();
        assert_eq!(raps.len(), 1);
        assert_eq!(raps[0].combination.to_string(), "(a1, *)");
        assert!((raps[0].confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rap_score_matches_eq3() {
        assert!((rap_score(0.9, 2) - 0.9 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "layer")]
    fn rap_score_rejects_layer_zero() {
        rap_score(1.0, 0);
    }

    #[test]
    fn traced_run_matches_stats_and_output() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        let (raps, trace) = miner.localize_traced(&frame, 5).unwrap();
        let (plain, stats) = miner.localize_with_stats(&frame, 5).unwrap();
        assert_eq!(raps, plain, "tracing must not change the answer");
        assert_eq!(trace.stats, stats);
        assert!(trace.is_consistent(), "trace: {trace:?}");
        let kept = trace.candidates.iter().filter(|c| c.kept).count();
        assert_eq!(kept, raps.len());
        assert_eq!(trace.attrs.len(), 3, "all attrs get a CP entry");
        assert!(trace.attrs.iter().all(|a| !a.deleted));
        assert!(trace.cp_seconds >= 0.0 && trace.search_seconds >= 0.0);
        // every accepted candidate carries its discovery confidence
        for c in &trace.candidates {
            assert!(c.confidence > miner.config().t_conf());
            assert!((c.score - rap_score(c.confidence, c.layer)).abs() < 1e-12);
        }
    }

    #[test]
    fn traced_run_reports_deleted_attributes() {
        // anomaly is purely (a1, *, *): b and c are redundant.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        1.0,
                        1.0,
                        a == 0,
                    );
                }
            }
        }
        let frame = builder.build();
        let (raps, trace) = RapMiner::new().localize_traced(&frame, 3).unwrap();
        assert_eq!(raps[0].combination.to_string(), "(a1, *, *)");
        assert_eq!(trace.deleted_attributes(), vec!["b", "c"]);
        assert_eq!(trace.stats.attrs_deleted, 2);
        assert!(trace.is_consistent(), "trace: {trace:?}");
        assert!(!trace.layers.is_empty());
        // kept attr leads and has the highest CP
        assert_eq!(trace.attrs[0].attribute, "a");
        assert!(trace.attrs[0].cp > trace.attrs[1].cp);
    }

    #[test]
    fn cancellation_between_layers_yields_partial_results() {
        let frame = fig7_frame();
        let miner = RapMiner::with_config(
            Config::new()
                .with_redundant_deletion(false)
                .with_early_stop(false),
        );
        // cancel immediately: no layers run, no candidates, flag set
        let (raps, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&|| true))
            .unwrap();
        assert!(raps.is_empty());
        assert!(trace.stats.cancelled);
        assert!(trace.layers.is_empty());
        assert!(trace.is_consistent(), "trace: {trace:?}");
        // cancel after the first poll: exactly one layer completes and its
        // candidates are still ranked and returned
        let calls = std::cell::Cell::new(0u32);
        let cancel = move || {
            let n = calls.get();
            calls.set(n + 1);
            n >= 1
        };
        let (raps, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&cancel))
            .unwrap();
        assert!(trace.stats.cancelled);
        assert_eq!(trace.layers.len(), 1);
        assert!(
            raps.iter()
                .any(|r| r.combination.to_string() == "(a1, *, *)"),
            "layer-1 RAP must survive cancellation: {raps:?}"
        );
        assert!(trace.is_consistent(), "trace: {trace:?}");
        // a hook that never fires leaves the run unmarked
        let (_, trace) = miner
            .localize_traced_with_cancel(&frame, 5, Some(&|| false))
            .unwrap();
        assert!(!trace.stats.cancelled);
    }

    #[test]
    fn parallel_stats_are_exact_not_racy() {
        // Hand-derived serial counts for fig7 with deletion and early stop
        // off: layer 1 visits cuboids {a},{b},{c} with 3+2+2 combinations
        // and accepts (a1,*,*); layer 2 visits 4+4+4 combinations after
        // pruning a1's four layer-2 descendants and accepts (a2,b2,*);
        // layer 3 visits the 6 leaves under neither RAP. Totals: 7
        // cuboids, 25 combinations, 2 candidates. Every thread count must
        // reproduce them exactly — counters accumulate per worker and
        // reduce at the layer barrier, so a racy counter would show here.
        let frame = fig7_frame();
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            let miner = RapMiner::with_config(
                Config::new()
                    .with_redundant_deletion(false)
                    .with_early_stop(false)
                    .with_threads(threads),
            );
            let (raps, stats) = miner.localize_with_stats(&frame, 10).unwrap();
            assert_eq!(stats.cuboids_visited, 7, "threads={threads}");
            assert_eq!(stats.combos_visited, 25, "threads={threads}");
            assert_eq!(stats.candidates_found, 2, "threads={threads}");
            assert!(!stats.early_stopped);
            match &baseline {
                None => baseline = Some((raps, stats)),
                Some((r0, s0)) => {
                    assert_eq!(&raps, r0, "threads={threads} changed the answer");
                    assert_eq!(&stats, s0, "threads={threads} changed the stats");
                }
            }
        }
    }

    #[test]
    fn thread_counts_agree_on_traced_output() {
        let frame = fig7_frame();
        let serial = RapMiner::with_config(Config::new().with_threads(1));
        let pooled = RapMiner::with_config(Config::new().with_threads(4));
        let (raps_s, trace_s) = serial.localize_traced(&frame, 5).unwrap();
        let (raps_p, trace_p) = pooled.localize_traced(&frame, 5).unwrap();
        assert_eq!(raps_s, raps_p);
        assert_eq!(trace_s.stats, trace_p.stats);
        assert_eq!(trace_s.layers, trace_p.layers);
        assert_eq!(trace_s.candidates, trace_p.candidates);
        assert_eq!(trace_s.attrs, trace_p.attrs);
        assert!(trace_p.is_consistent(), "trace: {trace_p:?}");
    }

    #[test]
    fn results_are_deterministic() {
        let frame = fig7_frame();
        let miner = RapMiner::new();
        let a = miner.localize(&frame, 5).unwrap();
        let b = miner.localize(&frame, 5).unwrap();
        assert_eq!(a, b);
    }
}
