use mdkpi::{AttrId, LeafFrame, LeafIndex};

/// The outcome of Algorithm 1 (redundant attribute deletion): surviving and
/// deleted attributes, each with its classification power. `kept` is sorted
/// by CP descending, as the algorithm prescribes (`AttributeSet' ← Sort
/// AttributeSet by CP reversely`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeletionOutcome {
    /// Attributes related to the RAPs, sorted by classification power
    /// descending.
    pub kept: Vec<(AttrId, f64)>,
    /// Redundant attributes (`CP ≤ t_CP`), in schema order.
    pub deleted: Vec<(AttrId, f64)>,
}

/// The paper's Eq. 1 **Classification Power** of one attribute: the
/// normalized information gain of splitting the labelled leaf dataset by
/// that attribute,
///
/// ```text
/// CP_attr = (Info(D) − Info_attr(D)) / Info(D)
/// Info(D) = −(p_a·log p_a + p_n·log p_n)
/// Info_attr(D) = Σ_i (|D_attr_i| / |D|) · Info(D_attr_i)
/// ```
///
/// where `p_a`/`p_n` are the anomalous/normal fractions. CP lies in
/// `[0, 1]`: 0 when the split tells nothing about the labels (the attribute
/// is independent of the anomaly), 1 when it separates them perfectly.
///
/// Degenerate inputs — an empty frame, an all-normal or all-anomalous frame
/// (`Info(D) = 0`) — have no classification signal and return 0 for every
/// attribute.
///
/// # Panics
///
/// Panics if `attr` is out of bounds for the frame's schema.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, LeafFrame, LeafIndex, AttrId};
/// use rapminer::classification_power;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let mut builder = LeafFrame::builder(&schema);
/// // anomaly depends on `a` only
/// builder.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 9.0)?;
/// builder.push_named(&[("a", "a1"), ("b", "b2")], 1.0, 9.0)?;
/// builder.push_named(&[("a", "a2"), ("b", "b1")], 9.0, 9.0)?;
/// builder.push_named(&[("a", "a2"), ("b", "b2")], 9.0, 9.0)?;
/// let mut frame = builder.build();
/// frame.label_with(|v, f| v < 0.5 * f);
/// let index = LeafIndex::new(&frame);
/// assert_eq!(classification_power(&frame, &index, AttrId(0)), 1.0);
/// assert_eq!(classification_power(&frame, &index, AttrId(1)), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn classification_power(frame: &LeafFrame, index: &LeafIndex, attr: AttrId) -> f64 {
    let n = frame.num_rows();
    if n == 0 {
        return 0.0;
    }
    let anomalous = match index.anomalous_rows() {
        None => return 0.0,
        Some(a) => a,
    };
    let total_anom = anomalous.count();
    let info_d = binary_entropy(total_anom as f64 / n as f64);
    if info_d <= 0.0 {
        // all-normal or all-anomalous: nothing to classify
        return 0.0;
    }
    let mut info_attr = 0.0;
    for element in frame.schema().attribute(attr).element_ids() {
        let posting = index.posting(attr, element);
        let branch = posting.count();
        if branch == 0 {
            continue;
        }
        let branch_anom = posting.intersection_count(anomalous);
        let weight = branch as f64 / n as f64;
        info_attr += weight * binary_entropy(branch_anom as f64 / branch as f64);
    }
    ((info_d - info_attr) / info_d).clamp(0.0, 1.0)
}

/// Binary Shannon entropy `−(p·log₂ p + (1−p)·log₂(1−p))`, with the
/// standard `0·log 0 = 0` convention.
fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let term = |q: f64| if q <= 0.0 { 0.0 } else { -q * q.log2() };
    term(p) + term(1.0 - p)
}

/// Algorithm 1, **Redundant Attributes Deletion**: compute CP for every
/// attribute, drop those with `CP ≤ t_CP` (Criteria 1), and return the
/// survivors sorted by CP descending.
///
/// Divergence note: when *every* attribute falls below the threshold but
/// the frame still contains anomalies, the paper's pseudocode would leave
/// nothing to search. This implementation keeps the single highest-CP
/// attribute in that case so the search stage always has a lattice,
/// documented in `DESIGN.md`.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, LeafFrame, LeafIndex};
/// use rapminer::delete_redundant_attributes;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let mut builder = LeafFrame::builder(&schema);
/// builder.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 9.0)?;
/// builder.push_named(&[("a", "a1"), ("b", "b2")], 1.0, 9.0)?;
/// builder.push_named(&[("a", "a2"), ("b", "b1")], 9.0, 9.0)?;
/// builder.push_named(&[("a", "a2"), ("b", "b2")], 9.0, 9.0)?;
/// let mut frame = builder.build();
/// frame.label_with(|v, f| v < 0.5 * f);
/// let index = LeafIndex::new(&frame);
/// let outcome = delete_redundant_attributes(&frame, &index, 0.02);
/// assert_eq!(outcome.kept.len(), 1);   // only `a` explains the labels
/// assert_eq!(outcome.deleted.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn delete_redundant_attributes(
    frame: &LeafFrame,
    index: &LeafIndex,
    t_cp: f64,
) -> DeletionOutcome {
    delete_redundant_attributes_pooled(frame, index, t_cp, &par::Pool::serial())
}

/// [`delete_redundant_attributes`] with the per-attribute CP scan fanned
/// out over `pool`. Attributes are partitioned in schema order from the
/// pool's order-preserving map, so the outcome is identical to the serial
/// scan for any thread count.
pub(crate) fn delete_redundant_attributes_pooled(
    frame: &LeafFrame,
    index: &LeafIndex,
    t_cp: f64,
    pool: &par::Pool,
) -> DeletionOutcome {
    let delete_span = obs::span("rapminer.delete");
    let mut kept: Vec<(AttrId, f64)> = Vec::new();
    let mut deleted: Vec<(AttrId, f64)> = Vec::new();
    {
        let cp_span = obs::span("rapminer.cp");
        cp_span.record("attrs", frame.schema().num_attributes());
        let attrs: Vec<AttrId> = frame.schema().attr_ids().collect();
        let powers = pool.map(&attrs, |_, &attr| classification_power(frame, index, attr));
        for (&attr, cp) in attrs.iter().zip(powers) {
            if cp > t_cp {
                kept.push((attr, cp));
            } else {
                deleted.push((attr, cp));
            }
        }
    }
    if kept.is_empty() && !deleted.is_empty() {
        // Keep the best attribute so the search stage has a lattice.
        let best = deleted
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).expect("cp is finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        kept.push(deleted.remove(best));
    }
    kept.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("cp is finite"));
    delete_span.record("kept", kept.len());
    delete_span.record("deleted", deleted.len());
    DeletionOutcome { kept, deleted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{ElementId, Schema};

    /// 3-attribute frame where the anomaly is exactly (a1, *, *) —
    /// the paper's Fig. 6 example.
    fn fig6_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    let anomalous = a == 0;
                    let (v, f) = if anomalous { (1.0, 10.0) } else { (10.0, 10.0) };
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        v,
                        f,
                        anomalous,
                    );
                }
            }
        }
        builder.build()
    }

    #[test]
    fn fig6_attribute_a_has_max_power() {
        let frame = fig6_frame();
        let index = LeafIndex::new(&frame);
        let cp_a = classification_power(&frame, &index, AttrId(0));
        let cp_b = classification_power(&frame, &index, AttrId(1));
        let cp_c = classification_power(&frame, &index, AttrId(2));
        assert_eq!(cp_a, 1.0, "splitting by a separates labels perfectly");
        assert_eq!(cp_b, 0.0, "b is independent of the anomaly");
        assert_eq!(cp_c, 0.0, "c is independent of the anomaly");
    }

    #[test]
    fn cp_is_in_unit_interval() {
        let frame = fig6_frame();
        let index = LeafIndex::new(&frame);
        for attr in frame.schema().attr_ids() {
            let cp = classification_power(&frame, &index, attr);
            assert!((0.0..=1.0).contains(&cp));
        }
    }

    #[test]
    fn degenerate_labels_have_zero_power() {
        // Both degenerate datasets — all-normal and all-anomalous — have
        // Info(D) = 0; every attribute must report CP = 0 (never NaN from
        // the 0/0 normalization) and deletion must stay total-order-safe.
        for label in [false, true] {
            let mut frame = fig6_frame();
            frame.set_labels(vec![label; frame.num_rows()]).unwrap();
            let index = LeafIndex::new(&frame);
            for attr in frame.schema().attr_ids() {
                let cp = classification_power(&frame, &index, attr);
                assert!(cp.is_finite(), "all-{label} labels gave cp = {cp}");
                assert_eq!(cp, 0.0, "all-{label} labels must give zero power");
            }
            let outcome = delete_redundant_attributes(&frame, &index, 0.02);
            assert_eq!(outcome.kept.len(), 1, "fallback keeps one attribute");
            assert!(outcome
                .kept
                .iter()
                .chain(&outcome.deleted)
                .all(|(_, cp)| *cp == 0.0));
        }
    }

    #[test]
    fn unlabelled_frame_has_zero_power() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        let index = LeafIndex::new(&frame);
        assert_eq!(classification_power(&frame, &index, AttrId(0)), 0.0);
    }

    #[test]
    fn deletion_keeps_informative_attributes_sorted() {
        let frame = fig6_frame();
        let index = LeafIndex::new(&frame);
        let outcome = delete_redundant_attributes(&frame, &index, 0.02);
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.kept[0].0, AttrId(0));
        assert_eq!(outcome.deleted.len(), 2);
        // kept list is sorted descending by construction
        for w in outcome.kept.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn all_below_threshold_keeps_best_attribute() {
        let frame = fig6_frame();
        let index = LeafIndex::new(&frame);
        // absurd threshold: everything is "redundant"
        let outcome = delete_redundant_attributes(&frame, &index, 0.999_999);
        assert_eq!(outcome.kept.len(), 1);
        assert_eq!(outcome.kept[0].0, AttrId(0), "best attribute survives");
        assert_eq!(outcome.deleted.len(), 2);
    }

    #[test]
    fn binary_entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        // symmetric
        assert!((binary_entropy(0.2) - binary_entropy(0.8)).abs() < 1e-12);
    }

    #[test]
    fn partial_power_between_zero_and_one() {
        // anomaly = (a1, b1): splitting by `a` alone is informative but not
        // perfect.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..2u32 {
                let anomalous = a == 0 && b == 0;
                builder.push_labelled(&[ElementId(a), ElementId(b)], 1.0, 1.0, anomalous);
            }
        }
        let frame = builder.build();
        let index = LeafIndex::new(&frame);
        let cp_a = classification_power(&frame, &index, AttrId(0));
        assert!(cp_a > 0.0 && cp_a < 1.0, "cp_a = {cp_a}");
        let cp_b = classification_power(&frame, &index, AttrId(1));
        assert!((cp_a - cp_b).abs() < 1e-12, "symmetric roles");
    }
}
