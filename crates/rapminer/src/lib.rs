//! # rapminer — Root Anomaly Pattern Miner
//!
//! From-scratch implementation of **RAPMiner** (Liu et al., DSN 2022):
//! anomaly localization over multi-dimensional KPIs, finding the **Root
//! Anomaly Patterns** (RAPs) — the coarsest attribute combinations that are
//! anomalous while none of their parents are.
//!
//! The algorithm has two stages, mirroring the paper's Fig. 5 framework:
//!
//! 1. **Classification-Power-based Redundant Attribute Deletion**
//!    ([`classification_power`], [`delete_redundant_attributes`],
//!    Algorithm 1): attributes whose normalized information gain over the
//!    anomaly labels is at most `t_CP` cannot appear in any RAP and are
//!    removed, shrinking the cuboid lattice from `2^n − 1` to
//!    `2^(n−k) − 1` cuboids.
//! 2. **Anomaly-Confidence-guided Layer-by-layer Top-down Search**
//!    ([`RapMiner::localize`], Algorithm 2): BFS over the remaining cuboid
//!    lattice; a combination with
//!    `Confidence(ac ⇒ Anomaly) > t_conf` (Criteria 2) becomes a RAP
//!    candidate, its descendants are pruned (Criteria 3), and the search
//!    stops early once candidates cover every anomalous leaf. Candidates
//!    are ranked by `RAPScore = Confidence / √Layer` (Eq. 3).
//!
//! The input is exactly what the paper prescribes: the most-fine-grained
//! attribute combinations with per-leaf anomaly-detection results
//! (a labelled [`mdkpi::LeafFrame`]); fundamental and derived KPIs need no
//! special treatment because only the boolean labels are consumed.
//!
//! # Example
//!
//! ```
//! use mdkpi::{Schema, LeafFrame};
//! use rapminer::RapMiner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::builder()
//!     .attribute("location", ["L1", "L2"])
//!     .attribute("website", ["Site1", "Site2"])
//!     .build()?;
//! let mut b = LeafFrame::builder(&schema);
//! // every leaf under (L1, *) is anomalous, everything else is normal
//! b.push_named(&[("location", "L1"), ("website", "Site1")], 5.0, 10.0)?;
//! b.push_named(&[("location", "L1"), ("website", "Site2")], 3.0, 9.0)?;
//! b.push_named(&[("location", "L2"), ("website", "Site1")], 10.0, 10.0)?;
//! b.push_named(&[("location", "L2"), ("website", "Site2")], 9.0, 9.0)?;
//! let mut frame = b.build();
//! frame.label_with(|v, f| (f - v) / (f + 1e-9) > 0.1);
//!
//! let miner = RapMiner::new();
//! let raps = miner.localize(&frame, 3)?;
//! assert_eq!(raps[0].combination.to_string(), "(L1, *)");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cp;
mod error;
mod search;
mod trace;

pub use config::Config;
pub use cp::{classification_power, delete_redundant_attributes, DeletionOutcome};
pub use error::Error;
pub use search::{memo_stats, rap_score, MemoStats, MinedRap, SearchStats};
pub use trace::{AttrPower, CandidateTrace, LayerTrace, LocalizationTrace, TraceDetection};

use mdkpi::{LeafFrame, LeafIndex};
use std::time::Instant;

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The RAPMiner localizer: holds a [`Config`] and mines root anomaly
/// patterns from labelled leaf frames.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RapMiner {
    config: Config,
}

impl RapMiner {
    /// Create with the default configuration (`t_CP = 0.02`,
    /// `t_conf = 0.8`, deletion and early stop enabled).
    pub fn new() -> Self {
        RapMiner::default()
    }

    /// Create with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        RapMiner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Mine the top-`k` root anomaly patterns from a labelled frame.
    ///
    /// Runs Algorithm 1 (unless disabled in the config) and Algorithm 2,
    /// returning candidates ranked by `RAPScore` descending. Fewer than `k`
    /// results are returned when the search finds fewer candidates; an
    /// all-normal frame yields an empty vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnlabelledFrame`] when the frame carries no anomaly
    /// labels.
    pub fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<MinedRap>> {
        self.localize_with_stats(frame, k).map(|(raps, _)| raps)
    }

    /// Run only Algorithm 1 and return the full deletion outcome — the
    /// classification power of every attribute and which ones Criteria 1
    /// removed. Useful for operator dashboards ("which dimensions even
    /// matter for this incident?") and for tuning `t_CP`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnlabelledFrame`] when the frame carries no anomaly
    /// labels.
    ///
    /// # Example
    ///
    /// ```
    /// use mdkpi::{Schema, LeafFrame};
    /// use rapminer::RapMiner;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let schema = Schema::builder()
    ///     .attribute("a", ["a1", "a2"])
    ///     .attribute("b", ["b1", "b2"])
    ///     .build()?;
    /// let mut builder = LeafFrame::builder(&schema);
    /// builder.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 9.0)?;
    /// builder.push_named(&[("a", "a1"), ("b", "b2")], 1.0, 9.0)?;
    /// builder.push_named(&[("a", "a2"), ("b", "b1")], 9.0, 9.0)?;
    /// builder.push_named(&[("a", "a2"), ("b", "b2")], 9.0, 9.0)?;
    /// let mut frame = builder.build();
    /// frame.label_with(|v, f| v < 0.5 * f);
    ///
    /// let outcome = RapMiner::new().analyze(&frame)?;
    /// assert_eq!(outcome.kept.len(), 1);    // only `a` explains the labels
    /// assert_eq!(outcome.deleted.len(), 1); // `b` is redundant
    /// # Ok(())
    /// # }
    /// ```
    pub fn analyze(&self, frame: &LeafFrame) -> Result<DeletionOutcome> {
        if frame.labels().is_none() {
            return Err(Error::UnlabelledFrame);
        }
        let index = LeafIndex::new(frame);
        Ok(delete_redundant_attributes(
            frame,
            &index,
            self.config.t_cp(),
        ))
    }

    /// Like [`RapMiner::localize`], also returning search diagnostics
    /// (attributes deleted, combinations visited, early-stop flag).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnlabelledFrame`] when the frame carries no anomaly
    /// labels.
    pub fn localize_with_stats(
        &self,
        frame: &LeafFrame,
        k: usize,
    ) -> Result<(Vec<MinedRap>, SearchStats)> {
        self.localize_inner(frame, k, None, None)
    }

    /// Like [`RapMiner::localize`], also returning the full
    /// [`LocalizationTrace`] — per-attribute classification powers and
    /// deletion verdicts, per-BFS-layer cuboid/combination counts, the
    /// confidence of every Criteria-2 candidate, stage timings, and the
    /// aggregate [`SearchStats`]. This is the "explain" payload rapd
    /// attaches to each incident.
    ///
    /// Tracing costs one extra CP pass only when redundant deletion is
    /// disabled (to still report per-attribute powers); otherwise the trace
    /// reuses work the plain path already does.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnlabelledFrame`] when the frame carries no anomaly
    /// labels.
    pub fn localize_traced(
        &self,
        frame: &LeafFrame,
        k: usize,
    ) -> Result<(Vec<MinedRap>, LocalizationTrace)> {
        self.localize_traced_with_cancel(frame, k, None)
    }

    /// Like [`RapMiner::localize_traced`] with a cooperative cancellation
    /// hook: `cancel` is polled between BFS layers (the preemption points
    /// of Algorithm 2). When it returns `true` the search stops, sets
    /// [`SearchStats::cancelled`], and the completed layers' candidates
    /// are ranked and returned — a partial but well-formed answer. This is
    /// how rapd enforces a per-incident localization deadline without
    /// killing the worker mid-search.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnlabelledFrame`] when the frame carries no anomaly
    /// labels.
    pub fn localize_traced_with_cancel(
        &self,
        frame: &LeafFrame,
        k: usize,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> Result<(Vec<MinedRap>, LocalizationTrace)> {
        let mut trace = LocalizationTrace::default();
        let (raps, stats) = self.localize_inner(frame, k, Some(&mut trace), cancel)?;
        trace.stats = stats;
        Ok((raps, trace))
    }

    fn localize_inner(
        &self,
        frame: &LeafFrame,
        k: usize,
        mut trace: Option<&mut LocalizationTrace>,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> Result<(Vec<MinedRap>, SearchStats)> {
        if frame.labels().is_none() {
            return Err(Error::UnlabelledFrame);
        }
        let index = LeafIndex::new(frame);
        let mut stats = SearchStats::default();
        // One pool for both stages; `Config::threads` = 0 sizes it to the
        // machine, 1 keeps everything on the calling thread.
        let pool = par::Pool::new(self.config.threads());

        let cp_started = Instant::now();
        let attrs = if self.config.redundant_deletion() {
            let outcome =
                cp::delete_redundant_attributes_pooled(frame, &index, self.config.t_cp(), &pool);
            stats.attrs_deleted = outcome.deleted.len();
            if let Some(t) = trace.as_deref_mut() {
                t.attrs = attr_powers(frame, &outcome);
            }
            outcome.kept.iter().map(|(a, _)| *a).collect()
        } else {
            // Keep every attribute, original schema order.
            if let Some(t) = trace.as_deref_mut() {
                let all: Vec<mdkpi::AttrId> = frame.schema().attr_ids().collect();
                let powers = pool.map(&all, |_, &a| classification_power(frame, &index, a));
                t.attrs = all
                    .iter()
                    .zip(powers)
                    .map(|(&a, cp)| AttrPower {
                        attribute: frame.schema().attribute(a).name().to_string(),
                        cp,
                        deleted: false,
                    })
                    .collect();
            }
            frame.schema().attr_ids().collect::<Vec<_>>()
        };
        let cp_seconds = cp_started.elapsed().as_secs_f64();

        let search_started = Instant::now();
        let raps = search::top_down_search(
            frame,
            &index,
            &attrs,
            &self.config,
            k,
            &mut stats,
            trace.as_deref_mut(),
            cancel,
            &pool,
        );
        if let Some(t) = trace {
            t.cp_seconds = cp_seconds;
            t.search_seconds = search_started.elapsed().as_secs_f64();
        }
        Ok((raps, stats))
    }
}

/// Flatten a [`DeletionOutcome`] into named per-attribute trace entries,
/// kept (CP-descending) first, then deleted in schema order.
fn attr_powers(frame: &LeafFrame, outcome: &DeletionOutcome) -> Vec<AttrPower> {
    let name = |a: mdkpi::AttrId| frame.schema().attribute(a).name().to_string();
    outcome
        .kept
        .iter()
        .map(|&(a, cp)| AttrPower {
            attribute: name(a),
            cp,
            deleted: false,
        })
        .chain(outcome.deleted.iter().map(|&(a, cp)| AttrPower {
            attribute: name(a),
            cp,
            deleted: true,
        }))
        .collect()
}
