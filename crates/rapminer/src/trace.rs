//! The localization trace: the operator-readable evidence behind one
//! [`crate::RapMiner::localize_traced`] run.
//!
//! A trace answers *why this RAP* — which dimensions even mattered
//! (per-attribute classification power and Criteria-1 deletions), how the
//! layer-by-layer search progressed (cuboids/combinations per BFS layer),
//! and the confidence of every candidate Criteria 2 accepted, including
//! the ones the top-`k` cut dropped. rapd serializes the trace into the
//! incident spool and serves it over the control socket.

use crate::search::SearchStats;

/// Classification power of one attribute and Algorithm 1's verdict on it.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrPower {
    /// Attribute name from the schema.
    pub attribute: String,
    /// The paper's Eq. 1 classification power in `[0, 1]`.
    pub cp: f64,
    /// Whether Criteria 1 (`CP ≤ t_CP`) removed the attribute.
    pub deleted: bool,
}

/// Search effort spent in one BFS layer of the cuboid lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTrace {
    /// The 1-based lattice layer.
    pub layer: usize,
    /// Cuboids enumerated in this layer.
    pub cuboids: usize,
    /// Attribute combinations evaluated against Criteria 2.
    pub combos: usize,
    /// RAP candidates accepted in this layer.
    pub candidates: usize,
}

/// One combination that passed Criteria 2 (`confidence > t_conf`).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateTrace {
    /// The candidate combination, rendered like `"(a1, *, *)"`.
    pub combination: String,
    /// `Confidence(ac ⇒ Anomaly)` at discovery time.
    pub confidence: f64,
    /// The cuboid layer the candidate lives in (1-based).
    pub layer: usize,
    /// The Eq. 3 ranking score, `confidence / √layer`.
    pub score: f64,
    /// Whether the candidate survived the final top-`k` ranking cut.
    pub kept: bool,
}

/// Detection evidence attached to a trace when the incident was
/// self-triggered by a streaming detector rather than handed in by an
/// external alarm: the aggregate σ-score that crossed the threshold, its
/// severity tier, and the per-leaf σ-scores that shaped the labelling the
/// search ran on.
///
/// Plain strings and numbers on purpose — the detector lives in a
/// downstream crate and this type is only the interchange form carried by
/// the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDetection {
    /// Severity tier name (`warn`, `high`, `critical`).
    pub severity: String,
    /// Aggregate frame anomaly score in residual σ units.
    pub score: f64,
    /// The highest-scoring leaves `(combination, σ-score)`, best first.
    pub leaf_scores: Vec<(String, f64)>,
}

/// The full evidence trail of one localization run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalizationTrace {
    /// Every attribute with its CP and deletion verdict, kept-first
    /// (kept sorted by CP descending, then deleted in schema order).
    pub attrs: Vec<AttrPower>,
    /// Per-BFS-layer search effort, in visit order. Layers the early stop
    /// skipped do not appear.
    pub layers: Vec<LayerTrace>,
    /// Every Criteria-2 candidate with its confidence, discovery order.
    pub candidates: Vec<CandidateTrace>,
    /// The aggregate diagnostics of the run.
    pub stats: SearchStats,
    /// Wall-clock seconds spent in CP computation + attribute deletion.
    pub cp_seconds: f64,
    /// Wall-clock seconds spent in the top-down search.
    pub search_seconds: f64,
    /// Streaming-detection evidence, when the run was self-triggered by a
    /// detector (absent for externally alarmed or offline runs).
    pub detection: Option<TraceDetection>,
}

impl LocalizationTrace {
    /// Names of the attributes Criteria 1 deleted, in `attrs` order.
    pub fn deleted_attributes(&self) -> Vec<&str> {
        self.attrs
            .iter()
            .filter(|a| a.deleted)
            .map(|a| a.attribute.as_str())
            .collect()
    }

    /// Sanity: per-layer counts must sum to the aggregate [`SearchStats`].
    pub fn is_consistent(&self) -> bool {
        let cuboids: usize = self.layers.iter().map(|l| l.cuboids).sum();
        let combos: usize = self.layers.iter().map(|l| l.combos).sum();
        let candidates: usize = self.layers.iter().map(|l| l.candidates).sum();
        cuboids == self.stats.cuboids_visited
            && combos == self.stats.combos_visited
            && candidates == self.stats.candidates_found
            && candidates == self.candidates.len()
            && self.attrs.iter().filter(|a| a.deleted).count() == self.stats.attrs_deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deleted_attributes_filters_and_preserves_order() {
        let trace = LocalizationTrace {
            attrs: vec![
                AttrPower {
                    attribute: "a".into(),
                    cp: 1.0,
                    deleted: false,
                },
                AttrPower {
                    attribute: "b".into(),
                    cp: 0.0,
                    deleted: true,
                },
                AttrPower {
                    attribute: "c".into(),
                    cp: 0.01,
                    deleted: true,
                },
            ],
            ..LocalizationTrace::default()
        };
        assert_eq!(trace.deleted_attributes(), vec!["b", "c"]);
    }

    #[test]
    fn consistency_check_detects_mismatched_counts() {
        let mut trace = LocalizationTrace {
            layers: vec![LayerTrace {
                layer: 1,
                cuboids: 2,
                combos: 5,
                candidates: 1,
            }],
            candidates: vec![CandidateTrace {
                combination: "(a1, *)".into(),
                confidence: 1.0,
                layer: 1,
                score: 1.0,
                kept: true,
            }],
            ..LocalizationTrace::default()
        };
        trace.stats.cuboids_visited = 2;
        trace.stats.combos_visited = 5;
        trace.stats.candidates_found = 1;
        assert!(trace.is_consistent());
        trace.stats.combos_visited = 4;
        assert!(!trace.is_consistent());
    }
}
