use std::fmt;

/// Errors produced by the RAPMiner localizer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The input frame carries no anomaly labels; RAPMiner consumes the
    /// per-leaf anomaly-detection results, so label the frame first
    /// (e.g. via [`mdkpi::LeafFrame::label_with`]).
    UnlabelledFrame,
    /// A configuration value was out of range.
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// Human-readable requirement.
        requirement: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnlabelledFrame => {
                write!(f, "input frame has no anomaly labels; run detection first")
            }
            Error::InvalidConfig {
                parameter,
                requirement,
            } => write!(f, "invalid config: `{parameter}` must be {requirement}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displayable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
        assert!(Error::UnlabelledFrame.to_string().contains("labels"));
    }
}
