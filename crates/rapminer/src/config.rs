use crate::{Error, Result};

/// RAPMiner configuration: the two thresholds of the paper plus ablation
/// switches.
///
/// * `t_CP` — Criteria 1's classification-power threshold. An attribute with
///   `CP ≤ t_CP` is redundant. The paper keeps it small (≤ 0.1) and shows
///   flat sensitivity (Fig. 10a).
/// * `t_conf` — Criteria 2's anomaly-confidence threshold. A combination
///   whose covered leaves are anomalous in a fraction `> t_conf` is
///   anomalous. The paper uses values above 0.5 and shows RC@3 rising
///   slightly with it (Fig. 10b).
/// * `redundant_deletion` — disable to reproduce the paper's Table VI
///   ablation (RAPMiner *without* redundant attribute deletion).
/// * `early_stop` — disable the Algorithm 2 early stop for ablation.
/// * `threads` — intra-frame parallelism for the CP scan and the per-layer
///   combination evaluation. `0` (the default) uses the machine's available
///   parallelism, `1` runs fully serially; every setting produces
///   byte-identical output (see `DESIGN.md` §13).
///
/// # Example
///
/// ```
/// use rapminer::Config;
///
/// # fn main() -> Result<(), rapminer::Error> {
/// let config = Config::new().with_t_cp(0.05)?.with_t_conf(0.9)?;
/// assert_eq!(config.t_cp(), 0.05);
/// assert_eq!(config.t_conf(), 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    t_cp: f64,
    t_conf: f64,
    redundant_deletion: bool,
    early_stop: bool,
    threads: usize,
}

impl Default for Config {
    /// A small `t_CP` and the paper's "relatively large" `t_conf` (0.8).
    ///
    /// The paper quotes `t_CP` values of 0.01–0.1 for its (proprietary)
    /// RAPMD; on this reproduction's synthetic RAPMD the classification
    /// power of attributes participating in small-coverage RAPs sits around
    /// 10⁻³, so the default threshold is 0.001 to keep the paper's
    /// deletion-vs-effectiveness trade-off (see `EXPERIMENTS.md`).
    fn default() -> Self {
        Config {
            t_cp: 0.001,
            t_conf: 0.8,
            redundant_deletion: true,
            early_stop: true,
            threads: 0,
        }
    }
}

impl Config {
    /// Create the default configuration.
    pub fn new() -> Self {
        Config::default()
    }

    /// Set the classification-power threshold (consuming builder).
    ///
    /// # Errors
    ///
    /// Rejects values outside `[0, 1)`.
    pub fn with_t_cp(mut self, value: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&value) {
            return Err(Error::InvalidConfig {
                parameter: "t_cp",
                requirement: "in [0, 1)",
            });
        }
        self.t_cp = value;
        Ok(self)
    }

    /// Set the anomaly-confidence threshold (consuming builder).
    ///
    /// # Errors
    ///
    /// Rejects values outside `(0, 1)`.
    pub fn with_t_conf(mut self, value: f64) -> Result<Self> {
        if !(value > 0.0 && value < 1.0) {
            return Err(Error::InvalidConfig {
                parameter: "t_conf",
                requirement: "in (0, 1)",
            });
        }
        self.t_conf = value;
        Ok(self)
    }

    /// Enable or disable Algorithm 1 (redundant attribute deletion).
    pub fn with_redundant_deletion(mut self, enabled: bool) -> Self {
        self.redundant_deletion = enabled;
        self
    }

    /// Enable or disable the Algorithm 2 early stop.
    pub fn with_early_stop(mut self, enabled: bool) -> Self {
        self.early_stop = enabled;
        self
    }

    /// Set the intra-frame worker-thread count: `0` = available
    /// parallelism, `1` = fully serial. Any value yields byte-identical
    /// results; only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The classification-power threshold.
    pub fn t_cp(&self) -> f64 {
        self.t_cp
    }

    /// The anomaly-confidence threshold.
    pub fn t_conf(&self) -> f64 {
        self.t_conf
    }

    /// Whether Algorithm 1 (redundant attribute deletion) runs.
    pub fn redundant_deletion(&self) -> bool {
        self.redundant_deletion
    }

    /// Whether the Algorithm 2 early stop is active.
    pub fn early_stop(&self) -> bool {
        self.early_stop
    }

    /// The configured worker-thread count (`0` = available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_operating_point() {
        let c = Config::default();
        assert_eq!(c.t_cp(), 0.001);
        assert_eq!(c.t_conf(), 0.8);
        assert!(c.redundant_deletion());
        assert!(c.early_stop());
        assert_eq!(c.threads(), 0, "default = available parallelism");
    }

    #[test]
    fn threads_builder_round_trips() {
        assert_eq!(Config::new().with_threads(8).threads(), 8);
        assert_eq!(Config::new().with_threads(1).threads(), 1);
    }

    #[test]
    fn builder_sets_thresholds() {
        let c = Config::new()
            .with_t_cp(0.1)
            .unwrap()
            .with_t_conf(0.55)
            .unwrap();
        assert_eq!(c.t_cp(), 0.1);
        assert_eq!(c.t_conf(), 0.55);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Config::new().with_t_cp(-0.1).is_err());
        assert!(Config::new().with_t_cp(1.0).is_err());
        assert!(Config::new().with_t_conf(0.0).is_err());
        assert!(Config::new().with_t_conf(1.0).is_err());
        let msg = Config::new().with_t_conf(2.0).unwrap_err().to_string();
        assert!(msg.contains("t_conf"));
    }

    #[test]
    fn ablation_switches() {
        let c = Config::new()
            .with_redundant_deletion(false)
            .with_early_stop(false);
        assert!(!c.redundant_deletion());
        assert!(!c.early_stop());
    }
}
