//! Cross-method property tests: invariants every localizer must uphold on
//! arbitrary labelled frames.

use baselines::all_localizers;
use mdkpi::{AttrId, ElementId, LeafFrame, Schema};
use proptest::prelude::*;

/// Random schema (2..=3 attributes, 2..=4 elements) plus a random labelled
/// frame over its full grid with positive values.
fn schema_and_frame() -> impl Strategy<Value = (Schema, LeafFrame)> {
    prop::collection::vec(2usize..=4, 2..=3).prop_flat_map(|sizes| {
        let mut b = Schema::builder();
        for (i, n) in sizes.iter().enumerate() {
            b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
        }
        let schema = b.build().expect("valid schema");
        let leaves: usize = sizes.iter().product();
        let rows = prop::collection::vec(
            (0.0f64..200.0, 0.1f64..200.0, any::<bool>()),
            leaves..=leaves,
        );
        (Just(schema), rows).prop_map(|(schema, rows)| {
            let n = schema.num_attributes();
            let sizes: Vec<u32> = (0..n)
                .map(|i| schema.attribute(AttrId(i as u16)).len() as u32)
                .collect();
            let mut builder = LeafFrame::builder(&schema);
            let mut counters = vec![0u32; n];
            for (v, f, label) in rows {
                let elements: Vec<ElementId> = counters.iter().map(|&c| ElementId(c)).collect();
                builder.push_labelled(&elements, v, f, label);
                let mut i = n;
                while i > 0 {
                    i -= 1;
                    counters[i] += 1;
                    if counters[i] < sizes[i] {
                        break;
                    }
                    counters[i] = 0;
                }
            }
            let frame = builder.build();
            (schema, frame)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No localizer panics, exceeds k, returns the root combination, or
    /// produces non-finite scores on arbitrary labelled input.
    #[test]
    fn localizers_uphold_output_contract(
        (_, frame) in schema_and_frame(),
        k in 0usize..6,
    ) {
        for method in all_localizers() {
            let out = method
                .localize(&frame, k)
                .unwrap_or_else(|e| panic!("{} errored: {e}", method.name()));
            prop_assert!(out.len() <= k, "{} exceeded k", method.name());
            for sc in &out {
                prop_assert!(sc.score.is_finite(), "{} non-finite score", method.name());
                prop_assert!(
                    !sc.combination.is_root(),
                    "{} returned the root combination",
                    method.name()
                );
            }
            // no duplicate combinations in one answer
            let mut seen = std::collections::HashSet::new();
            for sc in &out {
                prop_assert!(
                    seen.insert(sc.combination.clone()),
                    "{} returned {} twice",
                    method.name(),
                    sc.combination
                );
            }
        }
    }

    /// Determinism: every localizer returns the identical answer twice.
    #[test]
    fn localizers_are_deterministic((_, frame) in schema_and_frame()) {
        for method in all_localizers() {
            let a = method.localize(&frame, 5).expect("first run");
            let b = method.localize(&frame, 5).expect("second run");
            prop_assert_eq!(a.len(), b.len(), "{} row count differs", method.name());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.combination, &y.combination);
                prop_assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    /// On an all-normal frame no label-consuming method invents an anomaly.
    #[test]
    fn no_false_alarms_on_clean_frames((_, mut frame) in schema_and_frame()) {
        frame.set_labels(vec![false; frame.num_rows()]).expect("length");
        // also flatten values so deviation-based methods see nothing
        let mut builder = LeafFrame::builder(frame.schema());
        for i in 0..frame.num_rows() {
            builder.push(frame.row_elements(i), 10.0, 10.0);
        }
        let mut flat = builder.build();
        flat.set_labels(vec![false; frame.num_rows()]).expect("length");
        for method in all_localizers() {
            let out = method.localize(&flat, 5).expect("localize");
            prop_assert!(
                out.is_empty(),
                "{} hallucinated {:?} on a clean frame",
                method.name(),
                out.iter().map(|s| s.combination.to_string()).collect::<Vec<_>>()
            );
        }
    }
}
