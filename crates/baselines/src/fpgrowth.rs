use assoc::{Apriori, FpGrowth, ItemSet};
use mdkpi::{AttrId, Combination, ElementId, LeafFrame, LeafIndex};

use crate::localizer::{Localizer, ScoredCombination};
use crate::{Error, Result};

/// Association-rule-mining localization (reference \[15\] in the RAPMiner paper),
/// implemented with the [`assoc`] crate's FP-growth.
///
/// Every anomalous leaf becomes a transaction of `(attribute, element)`
/// items; frequent itemsets over those transactions are candidate root
/// anomaly patterns. Each candidate is then validated against the *whole*
/// dataset: its confidence (anomalous fraction of all covered leaves) must
/// clear `min_confidence`, and candidates with an accepted ancestor are
/// dropped (an itemset's subset is its combination's ancestor). Candidates
/// are ranked by `confidence × coverage` of the anomalous set.
///
/// The paper finds this the strongest baseline on RAPMD (still ~10 points
/// behind RAPMiner on RC@k).
#[derive(Debug, Clone, PartialEq)]
pub struct FpGrowthLocalizer {
    support_ratio: f64,
    min_confidence: f64,
    miner: MinerKind,
}

/// Which frequent-itemset implementation backs the localizer. The RAPMiner
/// paper notes that "the efficiency of different implementation methods
/// varies greatly" for association-rule localization — this switch makes
/// that claim measurable (`assoc`'s property tests guarantee both miners
/// return identical itemsets, so effectiveness is unchanged by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinerKind {
    /// FP-growth (Han et al., SIGMOD 2000) — the efficient default.
    FpGrowth,
    /// Apriori (Agrawal & Srikant, VLDB 1994) — the level-wise classic.
    Apriori,
}

impl Default for FpGrowthLocalizer {
    fn default() -> Self {
        FpGrowthLocalizer {
            support_ratio: 0.1,
            min_confidence: 0.7,
            miner: MinerKind::FpGrowth,
        }
    }
}

impl FpGrowthLocalizer {
    /// Create with explicit parameters: `support_ratio` — minimum fraction
    /// of the anomalous leaves an itemset must cover; `min_confidence` —
    /// minimum anomalous fraction among all leaves the candidate covers.
    ///
    /// # Errors
    ///
    /// Rejects ratios outside `(0, 1]`.
    pub fn new(support_ratio: f64, min_confidence: f64) -> Result<Self> {
        for (name, v) in [
            ("support_ratio", support_ratio),
            ("min_confidence", min_confidence),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(Error::InvalidParameter {
                    method: "fp-growth",
                    parameter: if name == "support_ratio" {
                        "support_ratio"
                    } else {
                        "min_confidence"
                    },
                    requirement: "in (0, 1]",
                });
            }
        }
        Ok(FpGrowthLocalizer {
            support_ratio,
            min_confidence,
            miner: MinerKind::FpGrowth,
        })
    }

    /// Switch the backing frequent-itemset miner (builder-style).
    pub fn with_miner(mut self, miner: MinerKind) -> Self {
        self.miner = miner;
        self
    }

    /// The backing miner.
    pub fn miner(&self) -> MinerKind {
        self.miner
    }
}

type Item = (u16, u32);

impl Localizer for FpGrowthLocalizer {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        let labels = frame.labels().ok_or(Error::UnlabelledFrame {
            method: "fp-growth",
        })?;
        let transactions: Vec<Vec<Item>> = (0..frame.num_rows())
            .filter(|&i| labels[i])
            .map(|i| {
                frame
                    .row_elements(i)
                    .iter()
                    .enumerate()
                    .map(|(a, e)| (a as u16, e.0))
                    .collect()
            })
            .collect();
        let total_anom = transactions.len();
        if total_anom == 0 {
            return Ok(Vec::new());
        }
        let min_support = ((self.support_ratio * total_anom as f64).ceil() as usize).max(1);
        let itemsets: Vec<ItemSet<Item>> = match self.miner {
            MinerKind::FpGrowth => FpGrowth::new(min_support).mine(&transactions),
            MinerKind::Apriori => Apriori::new(min_support).mine(&transactions),
        };

        let index = LeafIndex::new(frame);
        let mut candidates: Vec<(Vec<Item>, ScoredCombination, f64)> = Vec::new();
        for set in &itemsets {
            let combination = Combination::from_pairs(
                frame.schema(),
                set.items.iter().map(|&(a, e)| (AttrId(a), ElementId(e))),
            );
            let (support, anom_support) = index.support_counts(&combination);
            if support == 0 {
                continue;
            }
            let confidence = anom_support as f64 / support as f64;
            if confidence < self.min_confidence {
                continue;
            }
            let coverage = anom_support as f64 / total_anom as f64;
            candidates.push((
                set.items.clone(),
                ScoredCombination {
                    combination,
                    score: confidence * coverage,
                },
                confidence,
            ));
        }

        // drop candidates whose strict ancestor (proper item subset) is
        // also a candidate — the ancestor is the more general explanation
        let keep: Vec<bool> = candidates
            .iter()
            .map(|(items, _, _)| {
                !candidates.iter().any(|(other, _, _)| {
                    other.len() < items.len() && other.iter().all(|i| items.contains(i))
                })
            })
            .collect();
        let mut out: Vec<ScoredCombination> = candidates
            .into_iter()
            .zip(keep)
            .filter(|(_, keep)| *keep)
            .map(|((_, sc, _), _)| sc)
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("score is finite")
                .then_with(|| a.combination.cmp(&b.combination))
        });
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    fn planted_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    let anomalous = a == 0 || (a == 1 && b == 1);
                    let v = if anomalous { 10.0 } else { 100.0 };
                    builder.push_labelled(
                        &[ElementId(a), ElementId(b), ElementId(c)],
                        v,
                        100.0,
                        anomalous,
                    );
                }
            }
        }
        builder.build()
    }

    #[test]
    fn recovers_multi_rap_failure() {
        let out = FpGrowthLocalizer::default()
            .localize(&planted_frame(), 5)
            .unwrap();
        let names: Vec<String> = out.iter().map(|c| c.combination.to_string()).collect();
        assert!(names.contains(&"(a1, *, *)".to_string()), "got {names:?}");
        assert!(names.contains(&"(a2, b2, *)".to_string()), "got {names:?}");
    }

    #[test]
    fn ancestors_shadow_descendants() {
        let out = FpGrowthLocalizer::default()
            .localize(&planted_frame(), 20)
            .unwrap();
        for a in &out {
            for b in &out {
                assert!(
                    a.combination == b.combination || !a.combination.is_ancestor_of(&b.combination),
                    "{} shadows {}",
                    a.combination,
                    b.combination
                );
            }
        }
    }

    #[test]
    fn unlabelled_frame_errors() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        assert!(matches!(
            FpGrowthLocalizer::default().localize(&frame, 1),
            Err(Error::UnlabelledFrame { .. })
        ));
    }

    #[test]
    fn all_normal_returns_empty() {
        let mut frame = planted_frame();
        frame.set_labels(vec![false; frame.num_rows()]).unwrap();
        assert!(FpGrowthLocalizer::default()
            .localize(&frame, 5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn min_confidence_gates_noisy_candidates() {
        // (a1, *) covers 4 leaves of which only 2 anomalous: conf = 0.5
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3", "b4"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..4u32 {
                let anomalous = a == 0 && b < 2;
                let v = if anomalous { 10.0 } else { 100.0 };
                builder.push_labelled(&[ElementId(a), ElementId(b)], v, 100.0, anomalous);
            }
        }
        let frame = builder.build();
        let strict = FpGrowthLocalizer::new(0.1, 0.9).unwrap();
        let out = strict.localize(&frame, 10).unwrap();
        // only fully anomalous combinations pass the 0.9 confidence gate
        assert!(
            out.iter().all(|c| c.combination.layer() == 2),
            "got {out:?}"
        );
    }

    #[test]
    fn apriori_and_fp_growth_localize_identically() {
        let frame = planted_frame();
        let fp = FpGrowthLocalizer::default().localize(&frame, 10).unwrap();
        let ap = FpGrowthLocalizer::default()
            .with_miner(MinerKind::Apriori)
            .localize(&frame, 10)
            .unwrap();
        assert_eq!(fp, ap, "same itemsets must give the same localization");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FpGrowthLocalizer::new(0.0, 0.5).is_err());
        assert!(FpGrowthLocalizer::new(0.5, 1.5).is_err());
    }
}
