use std::collections::HashMap;

use mdkpi::{Combination, CuboidLattice, ElementId, LeafFrame, LeafIndex};

use crate::localizer::{Localizer, ScoredCombination};
use crate::ps::{deviation_score, potential_score};
use crate::{Error, Result};

/// **Squeeze** (Li et al., ISSRE 2019): generic multi-dimensional root
/// cause localization via deviation-score clustering plus per-cluster
/// cuboid search.
///
/// Pipeline (following the original paper's structure):
///
/// 1. compute each leaf's deviation score `d = 2(f − v)/(f + v)` and keep
///    leaves with `|d| > filter_threshold`;
/// 2. cluster the kept leaves by `d` with 1-D histogram density clustering —
///    this encodes Squeeze's **horizontal assumption** (different failures
///    have different anomaly magnitudes) and **vertical assumption** (leaves
///    under the same root cause share one magnitude);
/// 3. for every cluster, search each cuboid: group the cluster's leaves by
///    the cuboid's attributes, order candidate combinations by how many
///    cluster leaves they cover, and evaluate greedy prefixes with the
///    **generalized potential score** (GPS); the best-scoring prefix across
///    cuboids is the cluster's root-cause set.
///
/// On data violating the two assumptions — such as RAPMD, where per-leaf
/// magnitudes vary freely — clustering fragments or merges failures and the
/// method degrades, exactly the paper's Fig. 8(b) finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Squeeze {
    filter_threshold: f64,
    bin_width: f64,
    max_prefix: usize,
}

impl Default for Squeeze {
    fn default() -> Self {
        Squeeze {
            filter_threshold: 0.1,
            bin_width: 0.1,
            max_prefix: 20,
        }
    }
}

impl Squeeze {
    /// Create with explicit parameters: `filter_threshold` — minimum
    /// absolute deviation score for a leaf to participate; `bin_width` —
    /// histogram bin width of the 1-D clustering (deviation scores live in
    /// `[−2, 2]`); `max_prefix` — maximum root-cause set size tried per
    /// cuboid.
    ///
    /// # Errors
    ///
    /// Rejects non-positive widths/thresholds or a zero prefix budget.
    pub fn new(filter_threshold: f64, bin_width: f64, max_prefix: usize) -> Result<Self> {
        if filter_threshold < 0.0 {
            return Err(Error::InvalidParameter {
                method: "squeeze",
                parameter: "filter_threshold",
                requirement: "non-negative",
            });
        }
        if !(bin_width > 0.0 && bin_width <= 4.0) {
            return Err(Error::InvalidParameter {
                method: "squeeze",
                parameter: "bin_width",
                requirement: "in (0, 4]",
            });
        }
        if max_prefix == 0 {
            return Err(Error::InvalidParameter {
                method: "squeeze",
                parameter: "max_prefix",
                requirement: "positive",
            });
        }
        Ok(Squeeze {
            filter_threshold,
            bin_width,
            max_prefix,
        })
    }

    /// Histogram density clustering over deviation scores: contiguous runs
    /// of non-empty bins form clusters. Returns per-cluster row lists.
    fn cluster(&self, rows: &[(usize, f64)]) -> Vec<Vec<usize>> {
        if rows.is_empty() {
            return Vec::new();
        }
        // deviation scores live in [-2, 2]
        let num_bins = (4.0 / self.bin_width).ceil() as usize + 1;
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); num_bins];
        for &(row, d) in rows {
            let idx = (((d + 2.0) / self.bin_width) as usize).min(num_bins - 1);
            bins[idx].push(row);
        }
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for bin in &bins {
            if bin.is_empty() {
                if !current.is_empty() {
                    clusters.push(std::mem::take(&mut current));
                }
            } else {
                current.extend_from_slice(bin);
            }
        }
        if !current.is_empty() {
            clusters.push(current);
        }
        clusters
    }

    /// Search every cuboid for the best root-cause set of one cluster.
    fn search_cluster(
        &self,
        frame: &LeafFrame,
        index: &LeafIndex,
        lattice: &CuboidLattice,
        cluster_rows: &[usize],
    ) -> Option<(Vec<Combination>, f64)> {
        let schema = frame.schema();
        let mut best: Option<(Vec<Combination>, f64, usize)> = None;
        for (layer, cuboid) in lattice.iter_top_down() {
            // group cluster leaves by the cuboid's attributes
            let attrs: Vec<usize> = cuboid.attrs().map(|a| a.index()).collect();
            let mut groups: HashMap<Vec<ElementId>, usize> = HashMap::new();
            for &row in cluster_rows {
                let key: Vec<ElementId> =
                    attrs.iter().map(|&a| frame.row_elements(row)[a]).collect();
                *groups.entry(key).or_insert(0) += 1;
            }
            let mut combos: Vec<(Combination, usize)> = groups
                .into_iter()
                .map(|(key, count)| {
                    (
                        Combination::from_pairs(schema, cuboid.attrs().zip(key.iter().copied())),
                        count,
                    )
                })
                .collect();
            combos.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            combos.truncate(self.max_prefix);

            let mut prefix: Vec<Combination> = Vec::new();
            let mut best_in_cuboid: Option<(usize, f64)> = None;
            for (combo, _) in &combos {
                prefix.push(combo.clone());
                let ps = potential_score(frame, index, &prefix);
                if best_in_cuboid.is_none_or(|(_, b)| ps > b) {
                    best_in_cuboid = Some((prefix.len(), ps));
                }
            }
            if let Some((len, ps)) = best_in_cuboid {
                let candidate = prefix[..len].to_vec();
                let better = match &best {
                    None => true,
                    // prefer clearly higher GPS; on near-ties prefer the
                    // shallower cuboid (more general explanation)
                    Some((_, best_ps, best_layer)) => {
                        ps > best_ps + 1e-6 || (ps > best_ps - 1e-6 && layer < *best_layer)
                    }
                };
                if better {
                    best = Some((candidate, ps, layer));
                }
            }
        }
        best.map(|(set, ps, _)| (set, ps))
    }
}

impl Localizer for Squeeze {
    fn name(&self) -> &'static str {
        "squeeze"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        if frame.is_empty() {
            return Ok(Vec::new());
        }
        let index = LeafIndex::new(frame);
        let lattice = CuboidLattice::full(frame.schema());
        // 1. deviation scores + filter
        let deviant: Vec<(usize, f64)> = (0..frame.num_rows())
            .map(|i| (i, deviation_score(frame.v(i), frame.f(i))))
            .filter(|&(_, d)| d.abs() > self.filter_threshold)
            .collect();
        // 2. cluster
        let clusters = self.cluster(&deviant);
        // 3. per-cluster cuboid search
        let mut out: Vec<ScoredCombination> = Vec::new();
        for cluster in &clusters {
            if let Some((set, ps)) = self.search_cluster(frame, &index, &lattice, cluster) {
                for combination in set {
                    out.push(ScoredCombination {
                        combination,
                        score: ps,
                    });
                }
            }
        }
        // dedup (two clusters can nominate the same combination)
        out.sort_by(|a, b| {
            a.combination
                .cmp(&b.combination)
                .then_with(|| b.score.partial_cmp(&a.score).expect("finite"))
        });
        out.dedup_by(|a, b| a.combination == b.combination);
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite")
                .then_with(|| a.combination.cmp(&b.combination))
        });
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    /// Squeeze-friendly data: one failure, uniform magnitude (the vertical
    /// assumption holds).
    fn uniform_failure() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                let f = 100.0 * (1.0 + b as f64);
                let v = if a == 0 { f * 0.4 } else { f };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        builder.build()
    }

    #[test]
    fn recovers_uniform_magnitude_failure() {
        let out = Squeeze::default().localize(&uniform_failure(), 3).unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].combination.to_string(), "(a1, *)");
        assert!(out[0].score > 0.9);
    }

    #[test]
    fn two_failures_with_distinct_magnitudes_form_two_clusters() {
        // (a1, *) drops to 40%, (a3, *) drops to 5% — distinct deviation
        // scores, so two clusters, each cleanly localized.
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2", "b3"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..3u32 {
                let f = 100.0;
                let v = match a {
                    0 => 40.0,
                    2 => 5.0,
                    _ => 100.0,
                };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        let frame = builder.build();
        let out = Squeeze::default().localize(&frame, 5).unwrap();
        let names: Vec<String> = out.iter().map(|c| c.combination.to_string()).collect();
        assert!(names.contains(&"(a1, *)".to_string()), "got {names:?}");
        assert!(names.contains(&"(a3, *)".to_string()), "got {names:?}");
    }

    #[test]
    fn no_deviation_returns_empty() {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 10.0, 10.0);
        builder.push(&[ElementId(1)], 20.0, 20.0);
        let frame = builder.build();
        assert!(Squeeze::default().localize(&frame, 3).unwrap().is_empty());
    }

    #[test]
    fn clustering_separates_well_spaced_modes() {
        let sq = Squeeze::default();
        // two groups around d = 0.5 and d = 1.5
        let rows: Vec<(usize, f64)> = vec![(0, 0.50), (1, 0.52), (2, 0.48), (3, 1.50), (4, 1.48)];
        let clusters = sq.cluster(&rows);
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2));
    }

    #[test]
    fn clustering_handles_empty_and_extreme_scores() {
        let sq = Squeeze::default();
        assert!(sq.cluster(&[]).is_empty());
        // extreme values land in the edge bins without panicking
        let clusters = sq.cluster(&[(0, -2.0), (1, 2.0)]);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn varying_magnitudes_fragment_the_failure() {
        // One true RAP (a1, *) but its leaves deviate with three widely
        // separated magnitudes — the vertical assumption is violated, the
        // deviation-score clustering fragments the single failure, and the
        // clean single-combination answer is missed (RAPMD's designed
        // weakness for Squeeze).
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b0", "b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..3u32 {
                let f = 100.0;
                // Dev = 0.15 / 0.50 / 0.85 -> deviation scores far apart
                let v = if a == 0 {
                    f * (1.0 - (0.15 + 0.35 * b as f64))
                } else {
                    f
                };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        let frame = builder.build();
        let out = Squeeze::default().localize(&frame, 3).unwrap();
        // it still returns something, but the top answer is at best partial:
        // assert the method does NOT produce the clean single-RAP answer
        let clean = out.len() == 1 && out[0].combination.to_string() == "(a1, *)";
        assert!(
            !clean,
            "squeeze unexpectedly nailed assumption-violating data"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Squeeze::new(-0.1, 0.1, 10).is_err());
        assert!(Squeeze::new(0.1, 0.0, 10).is_err());
        assert!(Squeeze::new(0.1, 0.1, 0).is_err());
        assert!(Squeeze::new(0.1, 0.1, 10).is_ok());
    }

    #[test]
    fn respects_k() {
        let out = Squeeze::default().localize(&uniform_failure(), 1).unwrap();
        assert!(out.len() <= 1);
    }
}
