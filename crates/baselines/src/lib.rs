//! # baselines — anomaly-localization comparators
//!
//! From-paper implementations of every method RAPMiner is evaluated against
//! (§V-C), plus HotSpot (the SOTA ancestor of Squeeze discussed in §VI),
//! unified behind the [`Localizer`] trait:
//!
//! * [`Adtributor`] — Bhagwan et al., NSDI 2014: JS-divergence *surprise*,
//!   *explanatory power* and *succinctness* over single attributes
//!   (1-dimensional root causes only);
//! * [`IDice`] — Lin et al., ICSE 2016: *impact*-based pruning, change
//!   detection, and *isolation power* over a BFS of the combination
//!   lattice;
//! * [`FpGrowthLocalizer`] — association-rule mining of the anomalous
//!   leaves (reference \[15\] in the paper), implemented on the [`assoc`] crate's
//!   FP-growth;
//! * [`Squeeze`] — Li et al., ISSRE 2019: deviation-score clustering
//!   followed by per-cluster cuboid search ranked by the *generalized
//!   potential score* (GPS);
//! * [`HotSpot`] — Sun et al., IEEE Access 2018: Monte-Carlo tree search
//!   per cuboid guided by the ripple-effect *potential score*;
//! * [`RapMinerLocalizer`] — the adapter putting [`rapminer::RapMiner`]
//!   behind the same trait.
//!
//! # Example
//!
//! ```
//! use baselines::{Localizer, RapMinerLocalizer, Adtributor};
//! use mdkpi::{Schema, LeafFrame};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::builder()
//!     .attribute("a", ["a1", "a2"])
//!     .attribute("b", ["b1", "b2"])
//!     .build()?;
//! let mut b = LeafFrame::builder(&schema);
//! b.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 10.0)?;
//! b.push_named(&[("a", "a1"), ("b", "b2")], 2.0, 11.0)?;
//! b.push_named(&[("a", "a2"), ("b", "b1")], 10.0, 10.0)?;
//! b.push_named(&[("a", "a2"), ("b", "b2")], 11.0, 11.0)?;
//! let mut frame = b.build();
//! frame.label_with(|v, f| (f - v) / (f + 1e-9) > 0.1);
//!
//! let methods: Vec<Box<dyn Localizer>> = vec![
//!     Box::new(RapMinerLocalizer::default()),
//!     Box::new(Adtributor::default()),
//! ];
//! for m in &methods {
//!     let result = m.localize(&frame, 1)?;
//!     assert_eq!(result[0].combination.to_string(), "(a1, *)", "{} failed", m.name());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adtributor;
mod error;
mod fpgrowth;
mod hotspot;
mod idice;
mod localizer;
mod ps;
mod rapminer_adapter;
mod squeeze;

pub use adtributor::Adtributor;
pub use error::Error;
pub use fpgrowth::{FpGrowthLocalizer, MinerKind};
pub use hotspot::HotSpot;
pub use idice::IDice;
pub use localizer::{Explained, Localizer, ScoredCombination};
pub use ps::{deviation_score, potential_score};
pub use rapminer_adapter::RapMinerLocalizer;
pub use squeeze::Squeeze;

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// All localizers at their default configurations, in the paper's Fig. 8
/// legend order — handy for evaluation sweeps.
pub fn all_localizers() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(RapMinerLocalizer::default()),
        Box::new(Squeeze::default()),
        Box::new(FpGrowthLocalizer::default()),
        Box::new(Adtributor::default()),
        Box::new(IDice::default()),
        Box::new(HotSpot::default()),
    ]
}
