use mdkpi::{aggregate, Cuboid, LeafFrame};

use crate::localizer::{Localizer, ScoredCombination};
use crate::{Error, Result};

/// **Adtributor** (Bhagwan et al., NSDI 2014), adapted from advertising
/// revenue debugging to KPI localization.
///
/// Assumes every root cause is **one-dimensional**: for each attribute it
/// compares the forecast and actual *share* of every element, scoring
/// elements by *surprise* (Jensen–Shannon divergence between the share
/// distributions) and selecting, per attribute, the most surprising
/// elements until their cumulative *explanatory power*
/// `EP = (v − f) / (V − F)` exceeds `t_ep`. Attributes are ranked by their
/// total selected surprise (succinctness favours explaining the change
/// within one attribute).
///
/// The paper's Fig. 8 shows exactly the consequence of the 1-D assumption:
/// excellent on 1-D groups, powerless on deeper root causes.
#[derive(Debug, Clone, PartialEq)]
pub struct Adtributor {
    t_ep: f64,
    t_eep: f64,
}

impl Default for Adtributor {
    /// NSDI-paper-style defaults: explain 67% of the change, keep elements
    /// contributing at least 10% individually.
    fn default() -> Self {
        Adtributor {
            t_ep: 0.67,
            t_eep: 0.1,
        }
    }
}

impl Adtributor {
    /// Create with explicit thresholds: `t_ep` — cumulative explanatory
    /// power to reach per attribute; `t_eep` — minimum per-element
    /// explanatory power.
    ///
    /// # Errors
    ///
    /// Rejects thresholds outside `(0, 1]`.
    pub fn new(t_ep: f64, t_eep: f64) -> Result<Self> {
        for (name, v) in [("t_ep", t_ep), ("t_eep", t_eep)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(Error::InvalidParameter {
                    method: "adtributor",
                    parameter: if name == "t_ep" { "t_ep" } else { "t_eep" },
                    requirement: "in (0, 1]",
                });
            }
        }
        Ok(Adtributor { t_ep, t_eep })
    }
}

/// Jensen–Shannon surprise of one element: how unexpectedly its share of
/// the total moved (p = forecast share, q = actual share).
fn js_surprise(p: f64, q: f64) -> f64 {
    let m = (p + q) / 2.0;
    let term = |x: f64| {
        if x <= 0.0 || m <= 0.0 {
            0.0
        } else {
            0.5 * x * (x / m).log2()
        }
    };
    term(p) + term(q)
}

impl Localizer for Adtributor {
    fn name(&self) -> &'static str {
        "adtributor"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        let total_v = frame.total_v();
        let total_f = frame.total_f();
        let delta = total_v - total_f;
        if delta.abs() < 1e-12 || frame.is_empty() {
            return Ok(Vec::new());
        }

        struct AttrCandidate {
            surprise: f64,
            elements: Vec<ScoredCombination>,
        }
        let mut candidates: Vec<AttrCandidate> = Vec::new();

        for attr in frame.schema().attr_ids() {
            let rows = aggregate(frame, Cuboid::from_attrs([attr]));
            // score each element
            let mut scored: Vec<(ScoredCombination, f64)> = rows
                .into_iter()
                .map(|(combo, v, f)| {
                    let p = if total_f.abs() < 1e-12 {
                        0.0
                    } else {
                        f / total_f
                    };
                    let q = if total_v.abs() < 1e-12 {
                        0.0
                    } else {
                        v / total_v
                    };
                    let surprise = js_surprise(p, q);
                    let ep = (v - f) / delta;
                    (
                        ScoredCombination {
                            combination: combo,
                            score: surprise,
                        },
                        ep,
                    )
                })
                .collect();
            scored.sort_by(|a, b| {
                b.0.score
                    .partial_cmp(&a.0.score)
                    .expect("surprise is finite")
            });
            // take surprising elements until cumulative EP > t_ep
            let mut cum_ep = 0.0;
            let mut chosen: Vec<ScoredCombination> = Vec::new();
            for (sc, ep) in scored {
                if ep < self.t_eep {
                    continue;
                }
                cum_ep += ep;
                chosen.push(sc);
                if cum_ep > self.t_ep {
                    break;
                }
            }
            if cum_ep > self.t_ep && !chosen.is_empty() {
                candidates.push(AttrCandidate {
                    surprise: chosen.iter().map(|c| c.score).sum(),
                    elements: chosen,
                });
            }
        }

        // rank attributes by surprise; succinctness tie-break: fewer
        // elements first
        candidates.sort_by(|a, b| {
            b.surprise
                .partial_cmp(&a.surprise)
                .expect("surprise is finite")
                .then_with(|| a.elements.len().cmp(&b.elements.len()))
        });
        let mut out: Vec<ScoredCombination> = Vec::new();
        for c in candidates {
            for e in c.elements {
                if out.len() == k {
                    return Ok(out);
                }
                out.push(e);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{ElementId, Schema};

    /// (a1, *) lost half its traffic; everything else on forecast.
    fn one_dim_incident() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                let f = 100.0;
                let v = if a == 0 { 50.0 } else { 100.0 };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        builder.build()
    }

    #[test]
    fn finds_one_dimensional_culprit() {
        let frame = one_dim_incident();
        let out = Adtributor::default().localize(&frame, 3).unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].combination.to_string(), "(a1, *)");
    }

    #[test]
    fn no_change_returns_empty() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 7.0, 7.0);
        let frame = builder.build();
        assert!(Adtributor::default()
            .localize(&frame, 3)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn surprise_is_zero_for_unchanged_share() {
        assert_eq!(js_surprise(0.25, 0.25), 0.0);
        assert!(js_surprise(0.5, 0.1) > js_surprise(0.5, 0.4));
        assert!(js_surprise(0.0, 0.3) > 0.0);
    }

    #[test]
    fn respects_k() {
        let frame = one_dim_incident();
        let out = Adtributor::default().localize(&frame, 1).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn two_dim_root_cause_defeats_adtributor() {
        // the anomaly is (a1, b1) only: its EP within attribute `a` is
        // diluted, and the reported 1-D candidate is at best a superset
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3", "a4"])
            .attribute("b", ["b1", "b2", "b3", "b4"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..4u32 {
            for b in 0..4u32 {
                let f = 100.0;
                let v = if a == 0 && b == 0 { 10.0 } else { 100.0 };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        let frame = builder.build();
        let out = Adtributor::default().localize(&frame, 4).unwrap();
        // whatever it returns is one-dimensional — never the true 2-D cause
        assert!(out.iter().all(|c| c.combination.layer() == 1));
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(Adtributor::new(0.0, 0.1).is_err());
        assert!(Adtributor::new(0.5, 1.5).is_err());
        assert!(Adtributor::new(0.67, 0.1).is_ok());
    }
}
