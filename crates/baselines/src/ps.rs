use mdkpi::{Bitset, Combination, LeafFrame, LeafIndex};

/// Squeeze's per-leaf **deviation score**, `d = 2(f − v) / (f + v)`, a
/// symmetric relative deviation in `[−2, 2]`. Zero-valued leaves (both `v`
/// and `f` zero) score 0.
///
/// ```
/// use baselines::deviation_score;
/// assert_eq!(deviation_score(5.0, 15.0), 1.0);
/// assert_eq!(deviation_score(10.0, 10.0), 0.0);
/// assert_eq!(deviation_score(0.0, 0.0), 0.0);
/// ```
pub fn deviation_score(v: f64, f: f64) -> f64 {
    let denom = f + v;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        2.0 * (f - v) / denom
    }
}

/// The ripple-effect **(generalized) potential score** shared by HotSpot and
/// Squeeze: how well "the root causes are exactly `candidates`" explains the
/// observed leaf values.
///
/// Under the ripple effect, every leaf covered by the candidate set shares
/// the set's aggregate relative change, so its adjusted expectation is
/// `a_i = f_i · (Σ v / Σ f over covered leaves)`; uncovered leaves keep
/// `a_i = f_i`. The score compares the explained residual against the raw
/// residual:
///
/// ```text
/// ps = max(0, 1 − Σ|v − a| / Σ|v − f|)
/// ```
///
/// 1.0 means the candidate set explains every deviation perfectly; 0 means
/// it explains nothing. An empty candidate set, or a frame with no
/// deviation at all, scores 0.
pub fn potential_score(frame: &LeafFrame, index: &LeafIndex, candidates: &[Combination]) -> f64 {
    if candidates.is_empty() || frame.num_rows() == 0 {
        return 0.0;
    }
    let mut covered = Bitset::new(frame.num_rows());
    for c in candidates {
        covered.union_with(&index.rows_matching(c));
    }
    let (mut v_cov, mut f_cov) = (0.0, 0.0);
    for i in covered.iter_ones() {
        v_cov += frame.v(i);
        f_cov += frame.f(i);
    }
    let ratio = if f_cov.abs() < 1e-12 {
        1.0
    } else {
        v_cov / f_cov
    };

    let mut explained_residual = 0.0;
    let mut raw_residual = 0.0;
    for i in 0..frame.num_rows() {
        let (v, f) = (frame.v(i), frame.f(i));
        let a = if covered.contains(i) { f * ratio } else { f };
        explained_residual += (v - a).abs();
        raw_residual += (v - f).abs();
    }
    if raw_residual < 1e-12 {
        return 0.0;
    }
    (1.0 - explained_residual / raw_residual).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{ElementId, Schema};

    /// Frame where (a1, *) leaves all dropped to half their forecast.
    fn uniform_drop_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..3u32 {
                let f = 10.0 * (b + 1) as f64;
                let v = if a == 0 { f * 0.5 } else { f };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        builder.build()
    }

    #[test]
    fn true_root_cause_scores_near_one() {
        let frame = uniform_drop_frame();
        let index = LeafIndex::new(&frame);
        let truth = frame.schema().parse_combination("a=a1").unwrap();
        let ps = potential_score(&frame, &index, &[truth]);
        assert!(ps > 0.99, "true cause scored only {ps}");
    }

    #[test]
    fn wrong_candidate_scores_lower() {
        let frame = uniform_drop_frame();
        let index = LeafIndex::new(&frame);
        let truth = frame.schema().parse_combination("a=a1").unwrap();
        let wrong = frame.schema().parse_combination("a=a2").unwrap();
        let partial = frame.schema().parse_combination("a=a1&b=b1").unwrap();
        let ps_truth = potential_score(&frame, &index, std::slice::from_ref(&truth));
        let ps_wrong = potential_score(&frame, &index, &[wrong]);
        let ps_partial = potential_score(&frame, &index, &[partial]);
        assert!(ps_truth > ps_partial, "{ps_truth} vs partial {ps_partial}");
        assert!(ps_partial > ps_wrong, "{ps_partial} vs wrong {ps_wrong}");
    }

    #[test]
    fn empty_candidates_score_zero() {
        let frame = uniform_drop_frame();
        let index = LeafIndex::new(&frame);
        assert_eq!(potential_score(&frame, &index, &[]), 0.0);
    }

    #[test]
    fn no_deviation_scores_zero() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 5.0, 5.0);
        let frame = builder.build();
        let index = LeafIndex::new(&frame);
        let c = frame.schema().parse_combination("a=a1").unwrap();
        assert_eq!(potential_score(&frame, &index, &[c]), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let frame = uniform_drop_frame();
        let index = LeafIndex::new(&frame);
        for spec in ["a=a1", "a=a2", "b=b1", "a=a1&b=b2"] {
            let c = frame.schema().parse_combination(spec).unwrap();
            let ps = potential_score(&frame, &index, &[c]);
            assert!((0.0..=1.0).contains(&ps), "{spec} scored {ps}");
        }
    }

    #[test]
    fn deviation_score_is_symmetric_and_bounded() {
        assert!(deviation_score(0.0, 10.0) <= 2.0);
        assert!(deviation_score(10.0, 0.0) >= -2.0);
        assert_eq!(deviation_score(4.0, 4.0), 0.0);
        // drop of half: d = 2(10-5)/15 = 2/3
        assert!((deviation_score(5.0, 10.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
