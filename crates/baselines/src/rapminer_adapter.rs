use mdkpi::LeafFrame;
use rapminer::{Config, RapMiner};

use crate::localizer::{Explained, Localizer, ScoredCombination};
use crate::Result;

/// [`rapminer::RapMiner`] behind the shared [`Localizer`] trait.
///
/// # Example
///
/// ```
/// use baselines::{Localizer, RapMinerLocalizer};
/// let miner = RapMinerLocalizer::default();
/// assert_eq!(miner.name(), "rapminer");
/// ```
#[derive(Debug, Clone, Default)]
pub struct RapMinerLocalizer {
    miner: RapMiner,
}

impl RapMinerLocalizer {
    /// Wrap a miner with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        RapMinerLocalizer {
            miner: RapMiner::with_config(config),
        }
    }

    /// The wrapped miner.
    pub fn miner(&self) -> &RapMiner {
        &self.miner
    }
}

impl From<RapMiner> for RapMinerLocalizer {
    fn from(miner: RapMiner) -> Self {
        RapMinerLocalizer { miner }
    }
}

impl Localizer for RapMinerLocalizer {
    fn name(&self) -> &'static str {
        "rapminer"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        let raps = self.miner.localize(frame, k)?;
        Ok(raps
            .into_iter()
            .map(|r| ScoredCombination {
                combination: r.combination,
                score: r.score,
            })
            .collect())
    }

    fn localize_explained(&self, frame: &LeafFrame, k: usize) -> Result<Explained> {
        let (raps, trace) = self.miner.localize_traced(frame, k)?;
        Ok(Explained {
            results: raps
                .into_iter()
                .map(|r| ScoredCombination {
                    combination: r.combination,
                    score: r.score,
                })
                .collect(),
            trace: Some(trace),
        })
    }

    fn localize_explained_with_cancel(
        &self,
        frame: &LeafFrame,
        k: usize,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Explained> {
        let (raps, trace) = self
            .miner
            .localize_traced_with_cancel(frame, k, Some(cancel))?;
        Ok(Explained {
            results: raps
                .into_iter()
                .map(|r| ScoredCombination {
                    combination: r.combination,
                    score: r.score,
                })
                .collect(),
            trace: Some(trace),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{ElementId, Schema};

    #[test]
    fn adapter_exposes_rapminer_results() {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..2u32 {
                builder.push_labelled(&[ElementId(a), ElementId(b)], 1.0, 1.0, a == 0);
            }
        }
        let frame = builder.build();
        let adapter = RapMinerLocalizer::default();
        let out = adapter.localize(&frame, 3).unwrap();
        assert_eq!(out[0].combination.to_string(), "(a1, *)");
        assert!(out[0].score > 0.0);
    }

    #[test]
    fn explained_forwards_search_stats_through_boxing() {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..2u32 {
            for b in 0..2u32 {
                builder.push_labelled(&[ElementId(a), ElementId(b)], 1.0, 1.0, a == 0);
            }
        }
        let frame = builder.build();
        // Through `Box<dyn Localizer>`, as rapd's shard workers hold it.
        let boxed: Box<dyn Localizer> = Box::new(RapMinerLocalizer::default());
        let explained = boxed.localize_explained(&frame, 3).unwrap();
        assert_eq!(explained.results[0].combination.to_string(), "(a1, *)");
        let trace = explained.trace.expect("rapminer must attach a trace");
        assert!(trace.is_consistent(), "trace: {trace:?}");
        assert_eq!(trace.deleted_attributes(), vec!["b"]);
        assert_eq!(trace.stats.attrs_deleted, 1);
        assert!(trace.stats.cuboids_visited > 0 && trace.stats.combos_visited > 0);
        // the plain path returns the same ranking
        let plain = boxed.localize(&frame, 3).unwrap();
        assert_eq!(explained.results, plain);
    }

    #[test]
    fn unlabelled_frame_errors() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        let err = RapMinerLocalizer::default()
            .localize(&frame, 1)
            .unwrap_err();
        assert!(err.to_string().contains("label"));
    }
}
