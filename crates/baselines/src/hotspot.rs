use std::collections::HashMap;

use mdkpi::{Combination, CuboidLattice, ElementId, LeafFrame, LeafIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::localizer::{Localizer, ScoredCombination};
use crate::ps::potential_score;
use crate::{Error, Result};

/// **HotSpot** (Sun et al., IEEE Access 2018): anomaly localization for
/// additive KPIs via Monte-Carlo tree search guided by the ripple-effect
/// *potential score*.
///
/// HotSpot assumes all root causes live in a **single cuboid**. For every
/// cuboid (cheapest layers first) it runs an MCTS whose states are subsets
/// of the cuboid's candidate combinations and whose reward is the potential
/// score of "this subset is the root-cause set"; the best subset across
/// cuboids wins. Candidate combinations per cuboid are capped to the
/// most-deviant ones to bound the branching factor, as in the original's
/// pruning.
///
/// The search is seeded and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpot {
    iterations: usize,
    max_candidates: usize,
    ps_target: f64,
    seed: u64,
}

impl Default for HotSpot {
    fn default() -> Self {
        HotSpot {
            iterations: 100,
            max_candidates: 12,
            ps_target: 0.98,
            seed: 0x40750_u64,
        }
    }
}

impl HotSpot {
    /// Create with explicit search budgets: `iterations` — MCTS iterations
    /// per cuboid; `max_candidates` — candidate combinations kept per
    /// cuboid; `ps_target` — stop as soon as a subset reaches this
    /// potential score.
    ///
    /// # Errors
    ///
    /// Rejects zero budgets or a target outside `(0, 1]`.
    pub fn new(iterations: usize, max_candidates: usize, ps_target: f64) -> Result<Self> {
        if iterations == 0 {
            return Err(Error::InvalidParameter {
                method: "hotspot",
                parameter: "iterations",
                requirement: "positive",
            });
        }
        if max_candidates == 0 {
            return Err(Error::InvalidParameter {
                method: "hotspot",
                parameter: "max_candidates",
                requirement: "positive",
            });
        }
        if !(ps_target > 0.0 && ps_target <= 1.0) {
            return Err(Error::InvalidParameter {
                method: "hotspot",
                parameter: "ps_target",
                requirement: "in (0, 1]",
            });
        }
        Ok(HotSpot {
            iterations,
            max_candidates,
            ps_target,
            seed: 0x40750_u64,
        })
    }

    /// Replace the MCTS seed (builder-style); results stay deterministic
    /// per seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One MCTS node: a subset of candidate indexes (sorted), its value, and
/// statistics.
struct Node {
    subset: Vec<usize>,
    visits: f64,
    best_reward: f64,
    children: Vec<usize>,
    expanded: bool,
}

/// MCTS over subsets of `candidates`, maximizing the potential score.
fn mcts_best_subset(
    frame: &LeafFrame,
    index: &LeafIndex,
    candidates: &[Combination],
    iterations: usize,
    ps_target: f64,
    rng: &mut StdRng,
) -> (Vec<usize>, f64) {
    let mut nodes: Vec<Node> = vec![Node {
        subset: Vec::new(),
        visits: 0.0,
        best_reward: 0.0,
        children: Vec::new(),
        expanded: false,
    }];
    let mut best: (Vec<usize>, f64) = (Vec::new(), 0.0);

    let evaluate = |subset: &[usize]| -> f64 {
        let combos: Vec<Combination> = subset.iter().map(|&i| candidates[i].clone()).collect();
        potential_score(frame, index, &combos)
    };

    for _ in 0..iterations {
        // selection: walk down by UCB1 until an unexpanded node
        let mut path = vec![0usize];
        loop {
            let cur = *path.last().expect("non-empty path");
            if !nodes[cur].expanded || nodes[cur].children.is_empty() {
                break;
            }
            let parent_visits = nodes[cur].visits.max(1.0);
            let chosen = nodes[cur]
                .children
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ucb = |n: &Node| {
                        n.best_reward + 0.7 * ((parent_visits.ln() / n.visits.max(1e-9)).sqrt())
                    };
                    ucb(&nodes[a])
                        .partial_cmp(&ucb(&nodes[b]))
                        .expect("finite ucb")
                })
                .expect("children non-empty");
            path.push(chosen);
        }
        // expansion: add children (subset + one new candidate)
        let cur = *path.last().expect("non-empty path");
        if !nodes[cur].expanded {
            let subset = nodes[cur].subset.clone();
            let start = subset.last().map_or(0, |&l| l + 1);
            let mut child_ids = Vec::new();
            for next in start..candidates.len() {
                let mut child_subset = subset.clone();
                child_subset.push(next);
                child_ids.push(nodes.len());
                nodes.push(Node {
                    subset: child_subset,
                    visits: 0.0,
                    best_reward: 0.0,
                    children: Vec::new(),
                    expanded: false,
                });
            }
            nodes[cur].children = child_ids;
            nodes[cur].expanded = true;
        }
        // evaluation: score the node we reached itself (rewards are
        // deterministic, so the node's own subset IS its simulation); with
        // some probability also roll out one random child for exploration
        let cur = *path.last().expect("non-empty path");
        let eval_node =
            if !nodes[cur].children.is_empty() && nodes[cur].visits > 0.0 && rng.gen_bool(0.5) {
                let pick = rng.gen_range(0..nodes[cur].children.len());
                let child = nodes[cur].children[pick];
                path.push(child);
                child
            } else {
                cur
            };
        let reward = evaluate(&nodes[eval_node].subset);
        if reward > best.1 {
            best = (nodes[eval_node].subset.clone(), reward);
            if reward >= ps_target {
                return best;
            }
        }
        // backpropagation: update visits and best reward along the path
        for &n in &path {
            nodes[n].visits += 1.0;
            if reward > nodes[n].best_reward {
                nodes[n].best_reward = reward;
            }
        }
    }
    best
}

impl Localizer for HotSpot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        if frame.is_empty() {
            return Ok(Vec::new());
        }
        let index = LeafIndex::new(frame);
        let lattice = CuboidLattice::full(frame.schema());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: (Vec<Combination>, f64) = (Vec::new(), 0.0);

        for (_, cuboid) in lattice.iter_top_down() {
            // candidate combinations: group leaves by cuboid attributes,
            // keep the most deviant
            let attrs: Vec<usize> = cuboid.attrs().map(|a| a.index()).collect();
            let mut groups: HashMap<Vec<ElementId>, f64> = HashMap::new();
            for i in 0..frame.num_rows() {
                let key: Vec<ElementId> = attrs.iter().map(|&a| frame.row_elements(i)[a]).collect();
                *groups.entry(key).or_insert(0.0) += (frame.f(i) - frame.v(i)).abs();
            }
            let mut combos: Vec<(Combination, f64)> = groups
                .into_iter()
                .filter(|&(_, dev)| dev > 1e-9)
                .map(|(key, dev)| {
                    (
                        Combination::from_pairs(
                            frame.schema(),
                            cuboid.attrs().zip(key.iter().copied()),
                        ),
                        dev,
                    )
                })
                .collect();
            combos.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite deviation")
                    .then_with(|| a.0.cmp(&b.0))
            });
            combos.truncate(self.max_candidates);
            if combos.is_empty() {
                continue;
            }
            let candidates: Vec<Combination> = combos.into_iter().map(|(c, _)| c).collect();
            let (subset, ps) = mcts_best_subset(
                frame,
                &index,
                &candidates,
                self.iterations,
                self.ps_target,
                &mut rng,
            );
            if ps > best.1 {
                best = (
                    subset.into_iter().map(|i| candidates[i].clone()).collect(),
                    ps,
                );
                if best.1 >= self.ps_target {
                    break; // single-cuboid assumption: good enough, stop
                }
            }
        }

        let (set, ps) = best;
        let mut out: Vec<ScoredCombination> = set
            .into_iter()
            .map(|combination| ScoredCombination {
                combination,
                score: ps,
            })
            .collect();
        out.sort_by(|a, b| a.combination.cmp(&b.combination));
        out.truncate(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::Schema;

    fn uniform_failure() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                let f = 100.0 + 50.0 * b as f64;
                let v = if a == 0 { f * 0.3 } else { f };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        builder.build()
    }

    #[test]
    fn recovers_single_cuboid_failure() {
        let out = HotSpot::default().localize(&uniform_failure(), 3).unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].combination.to_string(), "(a1, *)");
        assert!(out[0].score > 0.9);
    }

    #[test]
    fn two_raps_in_one_cuboid() {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3", "a4"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..4u32 {
            for b in 0..2u32 {
                let f = 100.0;
                let v = if a == 0 || a == 2 { 30.0 } else { 100.0 };
                builder.push(&[ElementId(a), ElementId(b)], v, f);
            }
        }
        let frame = builder.build();
        let out = HotSpot::default().localize(&frame, 5).unwrap();
        let names: Vec<String> = out.iter().map(|c| c.combination.to_string()).collect();
        assert!(names.contains(&"(a1, *)".to_string()), "got {names:?}");
        assert!(names.contains(&"(a3, *)".to_string()), "got {names:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let frame = uniform_failure();
        let a = HotSpot::default().localize(&frame, 3).unwrap();
        let b = HotSpot::default().localize(&frame, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_deviation_returns_empty() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 5.0, 5.0);
        let frame = builder.build();
        assert!(HotSpot::default().localize(&frame, 3).unwrap().is_empty());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(HotSpot::new(0, 10, 0.9).is_err());
        assert!(HotSpot::new(10, 0, 0.9).is_err());
        assert!(HotSpot::new(10, 10, 1.5).is_err());
        assert!(HotSpot::new(10, 10, 0.9).is_ok());
    }

    #[test]
    fn empty_frame_is_fine() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let frame = LeafFrame::builder(&schema).build();
        assert!(HotSpot::default().localize(&frame, 3).unwrap().is_empty());
    }
}
