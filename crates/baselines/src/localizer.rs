use mdkpi::{Combination, LeafFrame};

use crate::Result;

/// One localization answer: a candidate root anomaly pattern with the
/// method's own ranking score (higher = more likely root cause; scales are
/// method-specific and not comparable across methods).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCombination {
    /// The candidate root anomaly pattern.
    pub combination: Combination,
    /// Method-specific ranking score (descending order in results).
    pub score: f64,
}

impl std::fmt::Display for ScoredCombination {
    /// Renders like `"(L1, *, *, Site1)  [score 0.707]"`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}  [score {:.3}]", self.combination, self.score)
    }
}

/// A localization answer plus the method's evidence trail, when the method
/// can produce one. Methods without an explainable search (or adapters
/// that choose not to pay for it) leave `trace` as `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Explained {
    /// The ranked top-`k` results — identical to [`Localizer::localize`].
    pub results: Vec<ScoredCombination>,
    /// The evidence behind the results: CP values, deletions, per-layer
    /// search effort, and candidate confidences.
    pub trace: Option<rapminer::LocalizationTrace>,
}

/// A multi-dimensional-KPI anomaly localizer: RAPMiner or any of the
/// paper's baselines.
///
/// Implementations receive the most-fine-grained leaf table (actual value
/// `v`, forecast `f`, and — where the method consumes detection results —
/// anomaly labels) and return their top-`k` root-cause candidates ranked
/// best-first. This mirrors the paper's evaluation protocol, which feeds
/// the same per-timestamp table to every method.
///
/// The trait is object-safe so evaluation harnesses can hold
/// `Vec<Box<dyn Localizer>>`, and requires `Send + Sync` so harnesses can
/// fan cases out across worker threads.
pub trait Localizer: Send + Sync {
    /// Short stable method name for reports (`"rapminer"`, `"squeeze"`, …).
    fn name(&self) -> &'static str;

    /// Localize the top-`k` root anomaly patterns of one frame, ranked
    /// best-first. Fewer than `k` results may be returned.
    ///
    /// # Errors
    ///
    /// Implementations that consume anomaly labels return
    /// [`crate::Error::UnlabelledFrame`] on unlabelled input.
    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>>;

    /// Localize and, where the method supports it, attach the evidence
    /// trail behind the answer. The default forwards to
    /// [`Localizer::localize`] with no trace; methods with an explainable
    /// search (RAPMiner) override it.
    ///
    /// # Errors
    ///
    /// Exactly as [`Localizer::localize`].
    fn localize_explained(&self, frame: &LeafFrame, k: usize) -> Result<Explained> {
        Ok(Explained {
            results: self.localize(frame, k)?,
            trace: None,
        })
    }

    /// Like [`Localizer::localize_explained`] with a cooperative
    /// cancellation hook, polled at method-defined preemption points.
    /// Callers (rapd's deadline-bounded pipelines) use it to bound a
    /// pathological localization; a cancelled run returns a partial but
    /// well-formed answer. The default ignores `cancel` — methods without
    /// internal preemption points simply run to completion; RAPMiner
    /// overrides it to poll between BFS layers.
    ///
    /// # Errors
    ///
    /// Exactly as [`Localizer::localize`].
    fn localize_explained_with_cancel(
        &self,
        frame: &LeafFrame,
        k: usize,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Explained> {
        let _ = cancel;
        self.localize_explained(frame, k)
    }
}

impl<L: Localizer + ?Sized> Localizer for Box<L> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        (**self).localize(frame, k)
    }
    // Forward explicitly: the default body would silently drop the inner
    // implementation's trace behind `Box<dyn Localizer>`.
    fn localize_explained(&self, frame: &LeafFrame, k: usize) -> Result<Explained> {
        (**self).localize_explained(frame, k)
    }
    // Same: the default body would bypass the inner cancellation support.
    fn localize_explained_with_cancel(
        &self,
        frame: &LeafFrame,
        k: usize,
        cancel: &dyn Fn() -> bool,
    ) -> Result<Explained> {
        (**self).localize_explained_with_cancel(frame, k, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl Localizer for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn localize(&self, frame: &LeafFrame, _k: usize) -> Result<Vec<ScoredCombination>> {
            Ok(vec![ScoredCombination {
                combination: Combination::root(frame.schema()),
                score: 1.0,
            }])
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Localizer> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
    }

    #[test]
    fn default_explained_has_no_trace() {
        let schema = mdkpi::Schema::builder()
            .attribute("a", ["a1"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push_labelled(&[mdkpi::ElementId(0)], 1.0, 1.0, true);
        let frame = builder.build();
        let explained = Dummy.localize_explained(&frame, 1).unwrap();
        assert!(explained.trace.is_none());
        assert_eq!(explained.results, Dummy.localize(&frame, 1).unwrap());
    }

    #[test]
    fn boxed_localizer_is_a_localizer() {
        fn takes_localizer<L: Localizer>(l: &L) -> &'static str {
            l.name()
        }
        let boxed: Box<dyn Localizer> = Box::new(Dummy);
        assert_eq!(takes_localizer(&boxed), "dummy");
    }
}
