use mdkpi::{Combination, LeafFrame};

use crate::Result;

/// One localization answer: a candidate root anomaly pattern with the
/// method's own ranking score (higher = more likely root cause; scales are
/// method-specific and not comparable across methods).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCombination {
    /// The candidate root anomaly pattern.
    pub combination: Combination,
    /// Method-specific ranking score (descending order in results).
    pub score: f64,
}

impl std::fmt::Display for ScoredCombination {
    /// Renders like `"(L1, *, *, Site1)  [score 0.707]"`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}  [score {:.3}]", self.combination, self.score)
    }
}

/// A multi-dimensional-KPI anomaly localizer: RAPMiner or any of the
/// paper's baselines.
///
/// Implementations receive the most-fine-grained leaf table (actual value
/// `v`, forecast `f`, and — where the method consumes detection results —
/// anomaly labels) and return their top-`k` root-cause candidates ranked
/// best-first. This mirrors the paper's evaluation protocol, which feeds
/// the same per-timestamp table to every method.
///
/// The trait is object-safe so evaluation harnesses can hold
/// `Vec<Box<dyn Localizer>>`, and requires `Send + Sync` so harnesses can
/// fan cases out across worker threads.
pub trait Localizer: Send + Sync {
    /// Short stable method name for reports (`"rapminer"`, `"squeeze"`, …).
    fn name(&self) -> &'static str;

    /// Localize the top-`k` root anomaly patterns of one frame, ranked
    /// best-first. Fewer than `k` results may be returned.
    ///
    /// # Errors
    ///
    /// Implementations that consume anomaly labels return
    /// [`crate::Error::UnlabelledFrame`] on unlabelled input.
    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>>;
}

impl<L: Localizer + ?Sized> Localizer for Box<L> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        (**self).localize(frame, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl Localizer for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn localize(&self, frame: &LeafFrame, _k: usize) -> Result<Vec<ScoredCombination>> {
            Ok(vec![ScoredCombination {
                combination: Combination::root(frame.schema()),
                score: 1.0,
            }])
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Localizer> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
    }

    #[test]
    fn boxed_localizer_is_a_localizer() {
        fn takes_localizer<L: Localizer>(l: &L) -> &'static str {
            l.name()
        }
        let boxed: Box<dyn Localizer> = Box::new(Dummy);
        assert_eq!(takes_localizer(&boxed), "dummy");
    }
}
