use std::fmt;

/// Errors produced by the localization baselines.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The method consumes per-leaf anomaly labels (RAPMiner, iDice,
    /// FP-growth) but the frame carries none.
    UnlabelledFrame {
        /// The localizer that needed labels.
        method: &'static str,
    },
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// The localizer being configured.
        method: &'static str,
        /// The offending parameter.
        parameter: &'static str,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// Error bubbled up from the RAPMiner core.
    RapMiner(rapminer::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnlabelledFrame { method } => {
                write!(f, "{method} requires a labelled frame; run detection first")
            }
            Error::InvalidParameter {
                method,
                parameter,
                requirement,
            } => write!(f, "{method}: `{parameter}` must be {requirement}"),
            Error::RapMiner(e) => write!(f, "rapminer: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::RapMiner(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rapminer::Error> for Error {
    fn from(e: rapminer::Error) -> Self {
        Error::RapMiner(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error as _;
        let e = Error::from(rapminer::Error::UnlabelledFrame);
        assert!(e.source().is_some());
    }
}
