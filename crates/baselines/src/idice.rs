use mdkpi::{aggregate_labels, CuboidLattice, LeafFrame, LeafIndex};

use crate::localizer::{Localizer, ScoredCombination};
use crate::{Error, Result};

/// **iDice** (Lin et al., ICSE 2016), adapted from emerging-issue reports
/// to KPI localization.
///
/// iDice mines *effective combinations* with three pruning/scoring stages:
///
/// 1. **Impact-based pruning** — a combination must cover at least an
///    `impact_threshold` fraction of the total issue volume (here: of the
///    anomalous leaves) to matter;
/// 2. **Change detection** — the combination's covered volume must have
///    changed significantly (here: the relative deviation of its aggregate
///    `v` against `f` must exceed `change_threshold`);
/// 3. **Isolation power** — the information gain of splitting the dataset
///    into covered-vs-uncovered with respect to the anomaly labels;
///    high-IP combinations isolate the issue crisply.
///
/// The search is a BFS over the combination lattice (like RAPMiner's), with
/// accepted combinations pruning their descendants. As the paper observes,
/// iDice's fixed impact/change gates make it brittle when there are many
/// simultaneous root causes — visible in its poor Fig. 8 scores.
#[derive(Debug, Clone, PartialEq)]
pub struct IDice {
    impact_threshold: f64,
    change_threshold: f64,
    min_isolation_power: f64,
}

impl Default for IDice {
    fn default() -> Self {
        IDice {
            impact_threshold: 0.05,
            change_threshold: 0.1,
            min_isolation_power: 0.01,
        }
    }
}

impl IDice {
    /// Create with explicit thresholds.
    ///
    /// # Errors
    ///
    /// Rejects an impact threshold outside `(0, 1]`, a negative change
    /// threshold, or a negative isolation-power floor.
    pub fn new(
        impact_threshold: f64,
        change_threshold: f64,
        min_isolation_power: f64,
    ) -> Result<Self> {
        if !(impact_threshold > 0.0 && impact_threshold <= 1.0) {
            return Err(Error::InvalidParameter {
                method: "idice",
                parameter: "impact_threshold",
                requirement: "in (0, 1]",
            });
        }
        if change_threshold < 0.0 {
            return Err(Error::InvalidParameter {
                method: "idice",
                parameter: "change_threshold",
                requirement: "non-negative",
            });
        }
        if min_isolation_power < 0.0 {
            return Err(Error::InvalidParameter {
                method: "idice",
                parameter: "min_isolation_power",
                requirement: "non-negative",
            });
        }
        Ok(IDice {
            impact_threshold,
            change_threshold,
            min_isolation_power,
        })
    }
}

/// Binary entropy with the 0·log 0 = 0 convention.
fn entropy(p: f64) -> f64 {
    let term = |q: f64| if q <= 0.0 { 0.0 } else { -q * q.log2() };
    term(p) + term(1.0 - p)
}

/// Information gain of the covered/uncovered split over the anomaly labels.
fn isolation_power(n: usize, total_anom: usize, covered: usize, covered_anom: usize) -> f64 {
    if n == 0 || covered == 0 || covered == n {
        return 0.0;
    }
    let base = entropy(total_anom as f64 / n as f64);
    let in_h = entropy(covered_anom as f64 / covered as f64);
    let out_n = n - covered;
    let out_anom = total_anom - covered_anom;
    let out_h = entropy(out_anom as f64 / out_n as f64);
    let split = (covered as f64 / n as f64) * in_h + (out_n as f64 / n as f64) * out_h;
    (base - split).max(0.0)
}

impl Localizer for IDice {
    fn name(&self) -> &'static str {
        "idice"
    }

    fn localize(&self, frame: &LeafFrame, k: usize) -> Result<Vec<ScoredCombination>> {
        if frame.labels().is_none() {
            return Err(Error::UnlabelledFrame { method: "idice" });
        }
        let index = LeafIndex::new(frame);
        let n = frame.num_rows();
        let total_anom = frame.num_anomalous();
        if total_anom == 0 || n == 0 {
            return Ok(Vec::new());
        }
        let lattice = CuboidLattice::full(frame.schema());
        let mut accepted: Vec<ScoredCombination> = Vec::new();

        for layer in 1..=lattice.num_layers() {
            for &cuboid in lattice.layer(layer) {
                for (ac, support, anom_support) in aggregate_labels(frame, cuboid) {
                    if accepted.iter().any(|a| a.combination.generalizes(&ac)) {
                        continue;
                    }
                    // 1. impact: fraction of the issue volume covered
                    let impact = anom_support as f64 / total_anom as f64;
                    if impact < self.impact_threshold {
                        continue;
                    }
                    // 2. change detection on the aggregate KPI
                    let (v, f) = index.sums(frame, &ac);
                    let change = (f - v).abs() / f.abs().max(1e-9);
                    if change < self.change_threshold {
                        continue;
                    }
                    // 3. isolation power
                    let ip = isolation_power(n, total_anom, support, anom_support);
                    if ip <= self.min_isolation_power {
                        continue;
                    }
                    accepted.push(ScoredCombination {
                        combination: ac,
                        score: ip,
                    });
                }
            }
        }

        accepted.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("ip is finite")
                .then_with(|| a.combination.cmp(&b.combination))
        });
        accepted.truncate(k);
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdkpi::{ElementId, Schema};

    fn planted_frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..3u32 {
            for b in 0..2u32 {
                let anomalous = a == 0;
                let f = 100.0;
                let v = if anomalous { 30.0 } else { 100.0 };
                builder.push_labelled(&[ElementId(a), ElementId(b)], v, f, anomalous);
            }
        }
        builder.build()
    }

    #[test]
    fn recovers_clean_single_rap() {
        let out = IDice::default().localize(&planted_frame(), 3).unwrap();
        assert!(!out.is_empty());
        assert_eq!(out[0].combination.to_string(), "(a1, *)");
    }

    #[test]
    fn isolation_power_peaks_on_perfect_split() {
        // perfect isolation: covered = anomalous exactly
        let perfect = isolation_power(10, 5, 5, 5);
        assert!((perfect - 1.0).abs() < 1e-9);
        // useless split: anomaly rate identical inside and outside
        let useless = isolation_power(10, 5, 4, 2);
        assert!(useless.abs() < 1e-9);
        // degenerate covers score zero
        assert_eq!(isolation_power(10, 5, 0, 0), 0.0);
        assert_eq!(isolation_power(10, 5, 10, 5), 0.0);
    }

    #[test]
    fn unlabelled_frame_errors() {
        let schema = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push(&[ElementId(0)], 1.0, 1.0);
        let frame = builder.build();
        assert!(matches!(
            IDice::default().localize(&frame, 1),
            Err(Error::UnlabelledFrame { .. })
        ));
    }

    #[test]
    fn impact_gate_drops_small_combinations() {
        // one anomalous leaf among many: a 50% impact threshold rejects it
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2", "a3", "a4"])
            .attribute("b", ["b1", "b2", "b3", "b4"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        for a in 0..4u32 {
            for b in 0..4u32 {
                // two separate anomalies, each 50% of issue volume
                let anomalous = (a, b) == (0, 0) || (a, b) == (3, 3);
                let v = if anomalous { 10.0 } else { 100.0 };
                builder.push_labelled(&[ElementId(a), ElementId(b)], v, 100.0, anomalous);
            }
        }
        let frame = builder.build();
        let strict = IDice::new(0.6, 0.0, 0.0).unwrap();
        // each anomaly covers only half the issue volume -> both rejected
        assert!(strict.localize(&frame, 10).unwrap().is_empty());
        // change threshold 0.5 also rejects the diluted 1-D ancestors
        // (their aggregate change is ~0.22) but keeps the two true leaves
        // (change 0.9)
        let tolerant = IDice::new(0.3, 0.5, 0.0).unwrap();
        let out = tolerant.localize(&frame, 10).unwrap();
        assert_eq!(out.len(), 2, "got {out:?}");
        assert!(out.iter().all(|c| c.combination.is_leaf()));
    }

    #[test]
    fn all_normal_returns_empty() {
        let mut frame = planted_frame();
        frame.set_labels(vec![false; frame.num_rows()]).unwrap();
        assert!(IDice::default().localize(&frame, 3).unwrap().is_empty());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(IDice::new(0.0, 0.1, 0.0).is_err());
        assert!(IDice::new(0.1, -0.1, 0.0).is_err());
        assert!(IDice::new(0.1, 0.1, -1.0).is_err());
    }

    #[test]
    fn descendants_of_accepted_combinations_are_pruned() {
        let out = IDice::default().localize(&planted_frame(), 10).unwrap();
        for a in &out {
            for b in &out {
                if a.combination != b.combination {
                    assert!(!a.combination.is_ancestor_of(&b.combination));
                }
            }
        }
    }
}
