//! Property-based tests for forecaster and detector invariants.

use proptest::prelude::*;
use timeseries::{
    deviation, mae, rmse, DeviationThreshold, Ewma, Forecaster, HoltWinters, MovingAverage,
    PointDetector, SeasonalNaive, SigmaDetector, TimeSeries,
};

fn history() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..200)
}

proptest! {
    /// Every forecaster returns exactly the requested horizon and only
    /// finite values.
    #[test]
    fn forecasts_are_finite_and_sized(hist in history(), horizon in 0usize..20) {
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MovingAverage::new(5)),
            Box::new(Ewma::new(0.3)),
            Box::new(SeasonalNaive::new(7)),
            Box::new(HoltWinters::new(0.4, 0.2, 0.3, 7)),
        ];
        for f in &forecasters {
            let fc = f.forecast(&hist, horizon);
            prop_assert_eq!(fc.len(), horizon);
            prop_assert!(fc.iter().all(|v| v.is_finite()));
        }
    }

    /// Forecasting a constant series predicts (close to) that constant.
    #[test]
    fn constant_series_forecast_is_constant(c in -1e3f64..1e3, n in 20usize..100) {
        let hist = vec![c; n];
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MovingAverage::new(5)),
            Box::new(Ewma::new(0.3)),
            Box::new(SeasonalNaive::new(7)),
            Box::new(HoltWinters::new(0.4, 0.2, 0.3, 7)),
        ];
        for f in &forecasters {
            let got = f.forecast_next(&hist);
            prop_assert!((got - c).abs() < 1e-6 + 1e-9 * c.abs(),
                "forecast {got} differs from constant {c}");
        }
    }

    /// Eq. 4 deviation is zero iff v == f (for positive forecasts) and has
    /// the documented sign.
    #[test]
    fn deviation_sign(v in 0.0f64..1e6, f in 0.1f64..1e6) {
        let d = deviation(v, f);
        prop_assert!(d.is_finite());
        if v < f { prop_assert!(d > 0.0); }
        if v > f { prop_assert!(d < 0.0); }
        prop_assert!(deviation(f, f).abs() < 1e-6);
    }

    /// A deviation-threshold detector with threshold t fires exactly when
    /// |Dev| > t.
    #[test]
    fn threshold_detector_consistent(v in 0.0f64..1e6, f in 0.1f64..1e6, t in 0.0f64..2.0) {
        let det = DeviationThreshold::new(t);
        prop_assert_eq!(det.is_anomalous(v, f), deviation(v, f).abs() > t);
    }

    /// A sigma detector never fires on the residuals it was fitted to when
    /// k is large enough (Chebyshev-style sanity).
    #[test]
    fn sigma_detector_tolerates_training_data(
        residuals in prop::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let det = SigmaDetector::fit(&residuals, 20.0);
        // every training residual is within 20 sigma of the mean unless the
        // sample std collapsed to the floor
        if det.std() > 1e-6 {
            for &r in &residuals {
                prop_assert!(!det.is_anomalous(r, 0.0));
            }
        }
    }

    /// rmse >= mae always (Cauchy-Schwarz), both zero on identical slices.
    #[test]
    fn rmse_dominates_mae(a in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        prop_assert!(rmse(&a, &b) + 1e-9 >= mae(&a, &b));
        prop_assert!(mae(&a, &a) == 0.0);
    }

    /// TimeSeries statistics stay finite and ordered.
    #[test]
    fn series_stats_are_sane(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let ts = TimeSeries::new(values.clone()).expect("finite");
        let (min, max) = (ts.min().unwrap(), ts.max().unwrap());
        prop_assert!(min <= ts.mean() && ts.mean() <= max);
        prop_assert!(ts.std() >= 0.0);
        prop_assert_eq!(ts.len(), values.len());
    }
}
