/// Mean absolute error between an actual and forecast slice.
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use timeseries::mae;
/// assert_eq!(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
/// ```
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error between an actual and forecast slice.
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let mse = actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).powi(2))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// Mean absolute percentage error, skipping points where the actual value is
/// (near) zero; returns 0.0 when every point is skipped or input is empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, f) in actual.iter().zip(forecast) {
        if a.abs() > 1e-9 {
            sum += ((a - f) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero() {
        let xs = [1.0, 5.0, -2.0];
        assert_eq!(mae(&xs, &xs), 0.0);
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert_eq!(mape(&xs, &xs), 0.0);
    }

    #[test]
    fn known_values() {
        let a = [10.0, 20.0];
        let f = [8.0, 24.0];
        assert_eq!(mae(&a, &f), 3.0);
        assert!((rmse(&a, &f) - (10.0f64).sqrt()).abs() < 1e-12);
        assert!((mape(&a, &f) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let f = [0.0, 0.0, 0.0, 8.0];
        assert!(rmse(&a, &f) > mae(&a, &f));
    }

    #[test]
    fn mape_skips_zero_actuals() {
        assert_eq!(mape(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        let m = mape(&[0.0, 10.0], &[99.0, 11.0]);
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
