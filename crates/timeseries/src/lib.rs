//! # timeseries — forecasting & detection substrate
//!
//! The RAPMiner paper (§III-A, §V-A) assumes an upstream component that
//! produces, for every most-fine-grained attribute combination, a forecast
//! value `f` next to the actual value `v`, and an anomaly-detection step that
//! turns `(v, f)` into a boolean label. The paper cites existing forecasting
//! work and does not re-implement it; this crate provides that substrate so
//! the reproduction runs end-to-end:
//!
//! * [`TimeSeries`] — an equally spaced univariate series;
//! * [`Forecaster`] implementations — [`MovingAverage`], [`Ewma`],
//!   [`SeasonalNaive`], [`HoltWinters`] (additive);
//! * [`PointDetector`] implementations — [`DeviationThreshold`] (the paper's
//!   Eq. 4 relative deviation) and [`SigmaDetector`] (residual n-sigma);
//! * [`Cusum`] — two-sided changepoint detection for slow-burn shifts a
//!   per-point threshold misses;
//! * forecast-accuracy metrics ([`mae`], [`rmse`], [`mape`]).
//!
//! # Example: forecast then detect
//!
//! ```
//! use timeseries::{TimeSeries, Forecaster, MovingAverage, DeviationThreshold, PointDetector};
//!
//! let history = TimeSeries::from(vec![10.0, 11.0, 9.0, 10.0, 10.5, 9.5]);
//! let forecast = MovingAverage::new(3).forecast(history.values(), 1)[0];
//! let actual = 25.0; // a spike
//! let detector = DeviationThreshold::new(0.5);
//! assert!(detector.is_anomalous(actual, forecast));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cusum;
mod detect;
mod forecast;
mod metrics;
mod series;

pub use cusum::{Cusum, Shift};
pub use detect::{deviation, DeviationThreshold, PointDetector, SigmaDetector};
pub use forecast::{Ewma, Forecaster, HoltWinters, MovingAverage, SeasonalNaive};
pub use metrics::{mae, mape, rmse};
pub use series::TimeSeries;
