/// The paper's Eq. 4 relative deviation between forecast and actual value:
/// `Dev = (f − v) / (f + ε)` with a tiny `ε` guarding division by zero.
///
/// Positive deviation means the actual value dropped below the forecast
/// (the usual failure signature for traffic KPIs); negative means it rose
/// above.
///
/// ```
/// use timeseries::deviation;
/// assert!((deviation(5.0, 10.0) - 0.5).abs() < 1e-9);
/// assert!(deviation(10.0, 10.0).abs() < 1e-9);
/// assert!(deviation(1.0, 0.0) < 0.0); // guarded, not NaN
/// ```
pub fn deviation(v: f64, f: f64) -> f64 {
    const EPS: f64 = 1e-9;
    (f - v) / (f + EPS)
}

/// A stateless anomaly decision over one `(v, f)` pair.
///
/// This is the per-leaf detection step of the paper's pipeline: the
/// localization algorithms consume only its boolean output (RAPMiner's
/// Algorithm 1 input is `[[a1, b1, c1, d1, anomalous], …]`).
pub trait PointDetector {
    /// Whether the `(actual, forecast)` pair is anomalous.
    fn is_anomalous(&self, v: f64, f: f64) -> bool;

    /// Label a whole slice of `(v, f)` pairs.
    fn label(&self, vs: &[f64], fs: &[f64]) -> Vec<bool> {
        vs.iter()
            .zip(fs)
            .map(|(&v, &f)| self.is_anomalous(v, f))
            .collect()
    }
}

/// Deviation-threshold detector: anomalous when `|Dev| > threshold`
/// (Eq. 4).
///
/// RAPMD injects anomalous leaves with `Dev ∈ [0.1, 0.9]` and normal leaves
/// with `Dev ∈ [−0.02, 0.09]`, so any threshold in `(0.09, 0.1)` separates
/// them exactly; real deployments use a calibrated threshold.
///
/// # Example
///
/// ```
/// use timeseries::{DeviationThreshold, PointDetector};
/// let d = DeviationThreshold::new(0.095);
/// assert!(d.is_anomalous(5.0, 10.0));   // Dev = 0.5
/// assert!(!d.is_anomalous(9.5, 10.0));  // Dev = 0.05
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationThreshold {
    threshold: f64,
}

impl DeviationThreshold {
    /// Create with the absolute-deviation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a non-negative finite number, got {threshold}"
        );
        DeviationThreshold { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl PointDetector for DeviationThreshold {
    fn is_anomalous(&self, v: f64, f: f64) -> bool {
        deviation(v, f).abs() > self.threshold
    }
}

/// Residual n-sigma detector: anomalous when `|v − f|` deviates from the
/// fitted residual distribution by more than `k` standard deviations.
///
/// Fit it on residuals from a normal period, then apply it to the alarmed
/// timestamp.
///
/// # Example
///
/// ```
/// use timeseries::{SigmaDetector, PointDetector};
/// // residuals from normal operation: small, zero-mean
/// let residuals: Vec<f64> = vec![0.1, -0.2, 0.05, 0.15, -0.1, 0.0, 0.2, -0.15];
/// let d = SigmaDetector::fit(&residuals, 3.0);
/// assert!(d.is_anomalous(15.0, 10.0)); // residual 5 >> 3 sigma
/// assert!(!d.is_anomalous(10.05, 10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaDetector {
    mean: f64,
    std: f64,
    k: f64,
}

impl SigmaDetector {
    /// Fit on residuals (`v − f`) observed during normal operation.
    ///
    /// A degenerate (constant) residual history yields a tiny floor standard
    /// deviation, so the detector still fires on any real deviation.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive and finite.
    pub fn fit(residuals: &[f64], k: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "k must be positive, got {k}");
        let n = residuals.len().max(1) as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        SigmaDetector { mean, std, k }
    }

    /// The fitted residual mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The fitted residual standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl PointDetector for SigmaDetector {
    fn is_anomalous(&self, v: f64, f: f64) -> bool {
        ((v - f) - self.mean).abs() > self.k * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_matches_eq4() {
        // f = 10, v = 8 -> Dev = 0.2
        assert!((deviation(8.0, 10.0) - 0.2).abs() < 1e-9);
        // overshoot gives negative Dev
        assert!(deviation(12.0, 10.0) < 0.0);
        // zero forecast does not blow up
        assert!(deviation(3.0, 0.0).is_finite());
    }

    #[test]
    fn deviation_threshold_splits_rapmd_ranges() {
        // RAPMD: anomalous Dev in [0.1, 0.9], normal Dev in [-0.02, 0.09].
        let d = DeviationThreshold::new(0.095);
        for dev in [0.1, 0.3, 0.5, 0.9] {
            let f = 100.0;
            let v = f - dev * f;
            assert!(d.is_anomalous(v, f), "Dev {dev} must be anomalous");
        }
        for dev in [-0.02, 0.0, 0.05, 0.09] {
            let f = 100.0;
            let v = f - dev * f;
            assert!(!d.is_anomalous(v, f), "Dev {dev} must be normal");
        }
    }

    #[test]
    fn label_maps_pairs() {
        let d = DeviationThreshold::new(0.5);
        let labels = d.label(&[1.0, 10.0], &[10.0, 10.0]);
        assert_eq!(labels, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn threshold_rejects_negative() {
        DeviationThreshold::new(-0.1);
    }

    #[test]
    fn sigma_detector_fires_beyond_k_sigma() {
        let residuals = [1.0, -1.0, 1.0, -1.0]; // mean 0, std 1
        let d = SigmaDetector::fit(&residuals, 2.0);
        assert!((d.std() - 1.0).abs() < 1e-9);
        assert!(d.is_anomalous(12.5, 10.0)); // residual 2.5 > 2
        assert!(!d.is_anomalous(11.5, 10.0)); // residual 1.5 < 2
    }

    #[test]
    fn sigma_detector_handles_degenerate_fit() {
        let d = SigmaDetector::fit(&[], 3.0);
        assert!(d.is_anomalous(1.0, 0.0));
        let d = SigmaDetector::fit(&[0.0, 0.0, 0.0], 3.0);
        assert!(d.is_anomalous(10.0, 0.0));
        assert!(!d.is_anomalous(0.0, 0.0));
    }

    #[test]
    fn detectors_are_object_safe() {
        let ds: Vec<Box<dyn PointDetector>> = vec![
            Box::new(DeviationThreshold::new(0.2)),
            Box::new(SigmaDetector::fit(&[0.0, 0.1], 3.0)),
        ];
        for d in &ds {
            let _ = d.is_anomalous(1.0, 1.0);
        }
    }
}
