use std::fmt;

/// An equally spaced univariate time series.
///
/// A thin, validated wrapper over `Vec<f64>` with the statistics the
/// forecasters and detectors need. Values may be any finite float; NaN and
/// infinities are rejected at construction so downstream math stays total.
///
/// # Example
///
/// ```
/// use timeseries::TimeSeries;
///
/// let ts = TimeSeries::from(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts.mean(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create a series, validating that every value is finite.
    ///
    /// # Errors
    ///
    /// Returns the offending index if a value is NaN or infinite.
    pub fn new(values: Vec<f64>) -> Result<Self, usize> {
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(i);
        }
        Ok(TimeSeries { values })
    }

    /// An empty series.
    pub fn empty() -> Self {
        TimeSeries { values: Vec::new() }
    }

    /// The underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a point.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "time series values must be finite");
        self.values.push(value);
    }

    /// Arithmetic mean (0.0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation (0.0 for fewer than two points).
    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The last `n` values (fewer when the series is shorter).
    pub fn tail(&self, n: usize) -> &[f64] {
        let start = self.values.len().saturating_sub(n);
        &self.values[start..]
    }
}

impl From<Vec<f64>> for TimeSeries {
    /// Convert, panicking on non-finite values (prefer
    /// [`TimeSeries::new`] for untrusted input).
    ///
    /// # Panics
    ///
    /// Panics if a value is NaN or infinite.
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values).expect("time series values must be finite")
    }
}

impl FromIterator<f64> for TimeSeries {
    /// Collect, panicking on non-finite values.
    ///
    /// # Panics
    ///
    /// Panics if a value is NaN or infinite.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries::from(iter.into_iter().collect::<Vec<f64>>())
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries(len={}, mean={:.3})", self.len(), self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let ts = TimeSeries::from(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(ts.mean(), 5.0);
        assert!((ts.std() - 2.0).abs() < 1e-12);
        assert_eq!(ts.min(), Some(2.0));
        assert_eq!(ts.max(), Some(9.0));
    }

    #[test]
    fn empty_series_is_safe() {
        let ts = TimeSeries::empty();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.std(), 0.0);
        assert_eq!(ts.min(), None);
        assert!(ts.tail(5).is_empty());
    }

    #[test]
    fn new_rejects_non_finite() {
        assert_eq!(TimeSeries::new(vec![1.0, f64::NAN]), Err(1));
        assert_eq!(TimeSeries::new(vec![f64::INFINITY]), Err(0));
        assert!(TimeSeries::new(vec![1.0, -1.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut ts = TimeSeries::empty();
        ts.push(f64::NAN);
    }

    #[test]
    fn tail_returns_suffix() {
        let ts = TimeSeries::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(ts.tail(2), &[2.0, 3.0]);
        assert_eq!(ts.tail(10), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut ts: TimeSeries = [1.0, 2.0].into_iter().collect();
        ts.extend([3.0]);
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
    }
}
