/// Two-sided CUSUM changepoint detector over forecast residuals.
///
/// The deviation-threshold detector reacts to a single large point; CUSUM
/// accumulates *small persistent* shifts — the slow-burn failure mode
/// (partial cache degradation, gradual link saturation) that per-point
/// thresholds miss. Used as an alternative alarm rule in front of
/// localization.
///
/// Standard parametrization: with per-point residual scale `sigma`, drift
/// `k·sigma` is subtracted from each excursion and an alarm fires when the
/// cumulative sum exceeds `h·sigma`.
///
/// # Example
///
/// ```
/// use timeseries::Cusum;
///
/// let mut cusum = Cusum::new(1.0, 0.5, 5.0);
/// // small persistent positive shift of ~1 sigma per point
/// let mut fired = false;
/// for _ in 0..12 {
///     fired |= cusum.update(1.0).is_some();
/// }
/// assert!(fired, "persistent 1-sigma shift must alarm within 12 points");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cusum {
    sigma: f64,
    k: f64,
    h: f64,
    pos: f64,
    neg: f64,
}

/// The direction of a detected shift, returned by [`Cusum::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// The monitored value drifted up.
    Up,
    /// The monitored value drifted down.
    Down,
}

impl Cusum {
    /// Create with residual scale `sigma`, drift allowance `k` (in sigmas,
    /// typically 0.5) and decision threshold `h` (in sigmas, typically
    /// 4–5).
    ///
    /// # Panics
    ///
    /// Panics unless all three parameters are positive finite numbers.
    pub fn new(sigma: f64, k: f64, h: f64) -> Self {
        for (name, v) in [("sigma", sigma), ("k", k), ("h", h)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        Cusum {
            sigma,
            k,
            h,
            pos: 0.0,
            neg: 0.0,
        }
    }

    /// Fit the residual scale from a normal period and use the standard
    /// `k = 0.5`, `h = 5` decision rule.
    pub fn fit(residuals: &[f64]) -> Self {
        let n = residuals.len().max(1) as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        Cusum::new(var.sqrt().max(1e-9), 0.5, 5.0)
    }

    /// Feed one residual (`actual − forecast`). Returns the shift direction
    /// when the cumulative statistic crosses the decision threshold; the
    /// statistic resets after each alarm.
    pub fn update(&mut self, residual: f64) -> Option<Shift> {
        let z = residual / self.sigma;
        self.pos = (self.pos + z - self.k).max(0.0);
        self.neg = (self.neg - z - self.k).max(0.0);
        if self.pos > self.h {
            self.reset();
            Some(Shift::Up)
        } else if self.neg > self.h {
            self.reset();
            Some(Shift::Down)
        } else {
            None
        }
    }

    /// Clear the accumulated statistics (e.g. after remediation).
    pub fn reset(&mut self) {
        self.pos = 0.0;
        self.neg = 0.0;
    }

    /// The current positive and negative statistics, in sigmas.
    pub fn statistics(&self) -> (f64, f64) {
        (self.pos, self.neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_noise_never_alarms() {
        let mut c = Cusum::new(1.0, 0.5, 5.0);
        // alternating ±0.4 sigma noise: each step is below the drift
        for i in 0..1000 {
            let r = if i % 2 == 0 { 0.4 } else { -0.4 };
            assert_eq!(c.update(r), None, "false alarm at {i}");
        }
    }

    #[test]
    fn persistent_shift_alarms_with_direction() {
        let mut c = Cusum::new(2.0, 0.5, 5.0);
        let mut shift = None;
        for _ in 0..30 {
            if let Some(s) = c.update(2.0) {
                shift = Some(s);
                break;
            }
        }
        assert_eq!(shift, Some(Shift::Up));
        // downward shift symmetric
        let mut c = Cusum::new(2.0, 0.5, 5.0);
        let mut shift = None;
        for _ in 0..30 {
            if let Some(s) = c.update(-2.0) {
                shift = Some(s);
                break;
            }
        }
        assert_eq!(shift, Some(Shift::Down));
    }

    #[test]
    fn subthreshold_shift_beats_point_detector() {
        // a 0.8-sigma persistent drop: any per-point 3-sigma rule is blind,
        // CUSUM accumulates and fires
        let mut c = Cusum::new(1.0, 0.5, 5.0);
        let mut fired_at = None;
        for i in 0..100 {
            if c.update(-0.8).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("cusum must fire on a persistent shift");
        assert!(at < 30, "took {at} points");
    }

    #[test]
    fn statistic_resets_after_alarm() {
        let mut c = Cusum::new(1.0, 0.5, 2.0);
        while c.update(2.0).is_none() {}
        assert_eq!(c.statistics(), (0.0, 0.0));
    }

    #[test]
    fn fit_estimates_sigma_from_residuals() {
        let residuals = [1.0, -1.0, 1.0, -1.0]; // sigma 1
        let mut c = Cusum::fit(&residuals);
        // a 10-sigma spike stream fires quickly
        let mut fired = false;
        for _ in 0..3 {
            fired |= c.update(10.0).is_some();
        }
        assert!(fired);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn bad_parameters_rejected() {
        Cusum::new(0.0, 0.5, 5.0);
    }
}
