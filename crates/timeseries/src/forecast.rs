/// A point forecaster over an equally spaced history.
///
/// Implementations are deterministic pure functions of the history; they
/// never mutate shared state, so one forecaster instance can serve many
/// series (one per leaf attribute combination) concurrently.
pub trait Forecaster {
    /// Forecast the next `horizon` values from `history`.
    ///
    /// Implementations must return exactly `horizon` values and must handle
    /// short (including empty) histories gracefully, typically falling back
    /// to the last value or zero.
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64>;

    /// Convenience: the single next value.
    fn forecast_next(&self, history: &[f64]) -> f64 {
        self.forecast(history, 1)[0]
    }
}

/// Simple moving-average forecaster: the mean of the last `window` points.
///
/// # Example
///
/// ```
/// use timeseries::{Forecaster, MovingAverage};
/// let f = MovingAverage::new(2);
/// assert_eq!(f.forecast_next(&[1.0, 3.0, 5.0]), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// Create with the averaging window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage { window }
    }
}

impl Forecaster for MovingAverage {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let start = history.len().saturating_sub(self.window);
        let tail = &history[start..];
        let level = if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        vec![level; horizon]
    }
}

/// Exponentially weighted moving-average forecaster.
///
/// `level ← α·x + (1−α)·level`; the forecast is the final level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// Create with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha }
    }
}

impl Forecaster for Ewma {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let mut level = match history.first() {
            None => return vec![0.0; horizon],
            Some(&x) => x,
        };
        for &x in &history[1..] {
            level = self.alpha * x + (1.0 - self.alpha) * level;
        }
        vec![level; horizon]
    }
}

/// Seasonal-naive forecaster: repeat the value observed one season ago.
///
/// With period `p`, the forecast for `t + h` is the history value at
/// `t + h − p·ceil(h/p)`. Short histories fall back to the last value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Create with the season length in points (e.g. 1440 for daily
    /// seasonality at minute granularity).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive { period }
    }
}

impl Forecaster for SeasonalNaive {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() {
            return vec![0.0; horizon];
        }
        (0..horizon)
            .map(|h| {
                if history.len() >= self.period {
                    // same phase as (t + h), one season back
                    history[history.len() - self.period + (h % self.period)]
                } else {
                    *history.last().expect("non-empty")
                }
            })
            .collect()
    }
}

/// Additive Holt-Winters (triple exponential smoothing) forecaster.
///
/// Maintains level, trend and additive seasonal components. Falls back to
/// [`Ewma`]-like behaviour when the history is shorter than two full
/// seasons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
}

impl HoltWinters {
    /// Create with smoothing factors for level (`alpha`), trend (`beta`) and
    /// seasonality (`gamma`), plus the season length.
    ///
    /// # Panics
    ///
    /// Panics unless all factors are in `(0, 1]` and `period > 0`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(v > 0.0 && v <= 1.0, "{name} must be in (0, 1], got {v}");
        }
        assert!(period > 0, "period must be positive");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
        }
    }
}

impl Forecaster for HoltWinters {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let p = self.period;
        if history.len() < 2 * p {
            // Not enough data to estimate seasonality; degrade to EWMA.
            return Ewma::new(self.alpha).forecast(history, horizon);
        }
        // Initial level/trend/seasonals from the first two seasons.
        let season1_mean: f64 = history[..p].iter().sum::<f64>() / p as f64;
        let season2_mean: f64 = history[p..2 * p].iter().sum::<f64>() / p as f64;
        let mut level = season1_mean;
        let mut trend = (season2_mean - season1_mean) / p as f64;
        // Detrended seasonal initialisation: subtract the in-season trend so
        // a trending-but-unseasonal series starts with (near-)zero seasonals.
        let mid = (p as f64 - 1.0) / 2.0;
        let mut seasonal: Vec<f64> = (0..p)
            .map(|i| history[i] - (season1_mean + (i as f64 - mid) * trend))
            .collect();

        for (t, &x) in history.iter().enumerate() {
            let s = seasonal[t % p];
            let prev_level = level;
            level = self.alpha * (x - s) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[t % p] = self.gamma * (x - level) + (1.0 - self.gamma) * s;
        }

        (1..=horizon)
            .map(|h| level + h as f64 * trend + seasonal[(history.len() + h - 1) % p])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_uses_window() {
        let f = MovingAverage::new(3);
        assert_eq!(f.forecast_next(&[1.0, 2.0, 3.0, 4.0, 5.0]), 4.0);
        // shorter history than window: use what exists
        assert_eq!(f.forecast_next(&[10.0]), 10.0);
        assert_eq!(f.forecast_next(&[]), 0.0);
        assert_eq!(f.forecast(&[1.0], 3), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn moving_average_rejects_zero_window() {
        MovingAverage::new(0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let f = Ewma::new(0.5);
        let hist = vec![10.0; 50];
        assert!((f.forecast_next(&hist) - 10.0).abs() < 1e-9);
        // alpha = 1 tracks the last value exactly
        let f = Ewma::new(1.0);
        assert_eq!(f.forecast_next(&[1.0, 2.0, 99.0]), 99.0);
        assert_eq!(Ewma::new(0.3).forecast(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let f = SeasonalNaive::new(3);
        let hist = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        assert_eq!(f.forecast(&hist, 3), vec![10.0, 20.0, 30.0]);
        // wrap past one season
        assert_eq!(f.forecast(&hist, 4)[3], 10.0);
        // short history: last value
        assert_eq!(f.forecast(&[5.0], 2), vec![5.0, 5.0]);
        assert_eq!(f.forecast(&[], 1), vec![0.0]);
    }

    #[test]
    fn holt_winters_learns_seasonal_pattern() {
        // Perfectly periodic series: forecast must recover the pattern.
        let period = 4;
        let pattern = [10.0, 20.0, 30.0, 20.0];
        let hist: Vec<f64> = (0..40).map(|t| pattern[t % period]).collect();
        let f = HoltWinters::new(0.5, 0.1, 0.5, period);
        let fc = f.forecast(&hist, 4);
        for (h, got) in fc.iter().enumerate() {
            let want = pattern[(hist.len() + h) % period];
            assert!(
                (got - want).abs() < 1.5,
                "h={h}: forecast {got} too far from {want}"
            );
        }
    }

    #[test]
    fn holt_winters_tracks_trend() {
        // Linear series: multi-step forecast should extrapolate the slope.
        let hist: Vec<f64> = (0..60).map(|t| t as f64).collect();
        let f = HoltWinters::new(0.8, 0.8, 0.1, 5);
        let fc = f.forecast(&hist, 10);
        // Compare points one full season apart so the (spurious) seasonal
        // component cancels: their gap is exactly period × trend.
        let slope = (fc[5] - fc[0]) / 5.0;
        assert!((slope - 1.0).abs() < 0.3, "slope {slope} too far from 1");
        assert!(
            (fc[0] - 60.0).abs() < 8.0,
            "first forecast {} too far from 60",
            fc[0]
        );
    }

    #[test]
    fn holt_winters_degrades_on_short_history() {
        let f = HoltWinters::new(0.5, 0.5, 0.5, 10);
        let hist = vec![4.0, 4.0, 4.0];
        assert!((f.forecast_next(&hist) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn forecasts_return_exact_horizon() {
        let hist: Vec<f64> = (0..30).map(|t| (t as f64).sin()).collect();
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MovingAverage::new(5)),
            Box::new(Ewma::new(0.2)),
            Box::new(SeasonalNaive::new(7)),
            Box::new(HoltWinters::new(0.3, 0.2, 0.3, 7)),
        ];
        for f in &forecasters {
            for h in [0usize, 1, 5, 13] {
                assert_eq!(f.forecast(&hist, h).len(), h);
            }
        }
    }
}
